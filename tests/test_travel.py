"""The travel-booking example (Appendix A): structure, simulation, and the
lite policy verification (the full verification is exercised by the
benchmark harness, where it gets a large budget)."""

import pytest

from repro.analysis.counting import navigation_depth_h
from repro.database.fkgraph import SchemaClass
from repro.examples.travel import (
    STATUS,
    discount_policy_property,
    discount_policy_property_lite,
    travel_booking,
    travel_database,
    travel_lite,
)
from repro.has.restrictions import validate_has
from repro.hltl.formulas import validate_property
from repro.verifier import VerifierConfig, verify


class TestStructure:
    def test_hierarchy_matches_figure_1(self):
        has = travel_booking()
        assert has.root.name == "ManageTrips"
        children = {t.name for t in has.root.children}
        assert children == {"AddHotel", "AddFlight", "BookInitialTrip", "Cancel"}
        add_hotel = has.task("AddHotel")
        assert {t.name for t in add_hotel.children} == {"AlsoBookHotel"}
        assert has.depth == 3

    def test_schema_is_acyclic(self):
        has = travel_booking()
        assert has.schema_class is SchemaClass.ACYCLIC

    def test_trips_artifact_relation(self):
        has = travel_booking()
        root = has.task("ManageTrips")
        assert root.has_set
        assert len(root.set_variables) == 2  # (flight_id, hotel_id)

    def test_both_variants_validate(self):
        for fixed in (False, True):
            validate_has(travel_booking(fixed=fixed))

    def test_property_wellformed(self):
        has = travel_booking()
        validate_property(discount_policy_property(has), has)

    def test_navigation_depth_finite(self):
        has = travel_booking()
        assert navigation_depth_h(has) > 0

    def test_statuses_distinct(self):
        values = list(STATUS.values())
        assert len(set(values)) == len(values)
        assert STATUS["Unpaid"] == 0  # the paper fixes this constant


class TestDatabase:
    def test_instance_valid(self):
        db = travel_database()
        db.validate()
        assert db.size("FLIGHTS") == 2
        assert db.size("HOTELS") == 2


class TestLiteVerification:
    def test_buggy_policy_violated(self):
        has = travel_lite(fixed=False)
        prop = discount_policy_property_lite(has)
        result = verify(has, prop, VerifierConfig(km_budget=100000))
        assert not result.holds
        assert result.witness  # a symbolic counterexample is produced
        assert result.witness_kind in ("lasso", "blocking")

    def test_fixed_policy_holds(self):
        has = travel_lite(fixed=True)
        prop = discount_policy_property_lite(has)
        result = verify(has, prop, VerifierConfig(km_budget=100000))
        assert result.holds

    def test_witness_mentions_concurrency(self):
        """The counterexample opens Cancel while the hotel is missing."""
        has = travel_lite(fixed=False)
        prop = discount_policy_property_lite(has)
        result = verify(has, prop, VerifierConfig(km_budget=100000))
        services = " ".join(step.service for step in result.witness)
        assert "Cancel" in services


@pytest.mark.slow
class TestFullVerification:
    def test_full_buggy_policy_violated(self):
        has = travel_booking(fixed=False)
        prop = discount_policy_property(has)
        result = verify(
            has,
            prop,
            VerifierConfig(
                km_budget=1000000, max_summaries=100000, time_limit_seconds=900
            ),
        )
        assert not result.holds
