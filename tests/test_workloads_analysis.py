"""Workload generators and the analytic counting module (Tables 1–2 /
Figure 4 drivers)."""

import pytest

from repro.analysis.counting import (
    cell_count_bound,
    navigation_depth_h,
    navigation_set_size,
    path_count_F,
    set_navigation_warnings,
    ts_type_bound,
)
from repro.database.fkgraph import SchemaClass
from repro.has.restrictions import validate_has
from repro.verifier import VerifierConfig, verify
from repro.workloads import (
    acyclic_chain_schema,
    cyclic_schema,
    linear_cycle_schema,
    table1_workload,
    table2_workload,
)

ALL_CLASSES = (
    SchemaClass.ACYCLIC,
    SchemaClass.LINEARLY_CYCLIC,
    SchemaClass.CYCLIC,
)


class TestWorkloadGenerators:
    @pytest.mark.parametrize("schema_class", ALL_CLASSES)
    @pytest.mark.parametrize("with_sets", (False, True))
    def test_table1_wellformed(self, schema_class, with_sets):
        spec = table1_workload(schema_class, depth=2, with_sets=with_sets)
        validate_has(spec.has)
        assert spec.has.schema_class is schema_class
        assert spec.has.uses_artifact_relations == with_sets
        assert spec.has.depth == 2

    @pytest.mark.parametrize("schema_class", ALL_CLASSES)
    def test_table2_wellformed(self, schema_class):
        spec = table2_workload(schema_class, depth=2)
        validate_has(spec.has)
        assert spec.uses_arithmetic

    @pytest.mark.parametrize("schema_class", ALL_CLASSES)
    def test_safety_verdicts(self, schema_class):
        spec = table1_workload(schema_class, depth=2)
        result = verify(spec.has, spec.prop, VerifierConfig(km_budget=30000))
        assert result.holds == spec.expected_holds is True

    def test_violated_variant(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True)
        result = verify(spec.has, spec.prop, VerifierConfig(km_budget=30000))
        assert not result.holds

    def test_depth_scales(self):
        for depth in (1, 2, 3):
            spec = table1_workload(SchemaClass.ACYCLIC, depth=depth)
            assert spec.has.depth == depth

    def test_arithmetic_workload_verdicts(self):
        spec = table2_workload(SchemaClass.ACYCLIC, depth=2)
        result = verify(spec.has, spec.prop, VerifierConfig(km_budget=30000))
        assert result.holds


class TestCounting:
    def test_F_ordering_across_classes(self):
        """Figure 4's message: F(n) is constant-bounded / linear /
        exponential for the three classes."""
        n = 6
        f_acyclic = path_count_F(acyclic_chain_schema(3), n)
        f_linear = path_count_F(linear_cycle_schema(3), n)
        f_cyclic = path_count_F(cyclic_schema(3), n)
        assert f_acyclic <= f_linear < f_cyclic

    def test_navigation_set_size_ordering(self):
        length = 5
        sizes = [
            navigation_set_size(acyclic_chain_schema(3), length),
            navigation_set_size(linear_cycle_schema(3), length),
            navigation_set_size(cyclic_schema(3), length),
        ]
        assert sizes[0] <= sizes[1] < sizes[2]

    def test_h_reflects_hierarchy(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=3)
        root_h = navigation_depth_h(spec.has)
        leaf_h = navigation_depth_h(spec.has, "L2")
        assert root_h >= leaf_h

    def test_ts_type_bound_positive(self):
        schema = acyclic_chain_schema(3)
        assert ts_type_bound(schema, s=2, k=1) > 0

    def test_cell_bound_monotone(self):
        assert cell_count_bound(4, 1, 3) > cell_count_bound(2, 1, 3)

    def test_set_navigation_warnings_on_clean_system(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2, with_sets=True)
        warnings = set_navigation_warnings(spec.has)
        # workload stores navigate from the cursor being inserted: flagged
        assert isinstance(warnings, list)

    def test_travel_lite_is_exact(self):
        from repro.examples.travel import travel_lite

        assert set_navigation_warnings(travel_lite()) == []
