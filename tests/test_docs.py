"""Documentation that executes: doc examples cannot rot.

Extracts fenced code blocks from the README and ``docs/tutorial.md``
and runs them in the quick lane:

* ``python`` blocks are executed in one shared namespace per document
  (tutorial steps build on each other), in a temp working directory;
* ``sh``/``console`` blocks follow the transcript convention — lines
  starting with ``$ `` are commands (only ``python -m repro …`` ones are
  executed), the lines after them are expected output.  A ``$ echo $?``
  line asserts the previous command's exit code, and expected-output
  lines that begin with a verdict keyword (``HOLDS``/``VIOLATED``/
  ``property``) must appear in the actual output.

Blocks in other languages (``jsonc`` schemas, bare ``sh`` install
snippets without ``$`` prompts) are display-only and are skipped.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

DOCS = [REPO / "README.md", REPO / "docs" / "tutorial.md"]

_FENCE = re.compile(r"^```(\w*)\s*$")


@dataclass
class Block:
    lang: str
    text: str
    line: int  # 1-based line of the opening fence


def extract_blocks(path: Path) -> list[Block]:
    blocks: list[Block] = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE.match(lines[i])
        if match:
            lang = match.group(1)
            start = i + 1
            j = start
            while j < len(lines) and not lines[j].startswith("```"):
                j += 1
            blocks.append(Block(lang, "\n".join(lines[start:j]), i + 1))
            i = j + 1
        else:
            i += 1
    return blocks


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO))


@pytest.mark.parametrize("doc", DOCS, ids=_doc_id)
def test_python_blocks_execute(doc, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    blocks = [b for b in extract_blocks(doc) if b.lang == "python"]
    assert blocks, f"{doc.name}: expected runnable python blocks"
    namespace: dict = {}
    for block in blocks:
        code = compile(block.text, f"{doc.name}:{block.line}", "exec")
        exec(code, namespace)  # noqa: S102 — executing our own docs is the point


def _run(command: str, cwd: Path) -> subprocess.CompletedProcess:
    argv = shlex.split(command)
    assert argv[0] == "python"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, *argv[1:]],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("doc", DOCS, ids=_doc_id)
def test_console_blocks_execute(doc, tmp_path):
    ran = 0
    last: subprocess.CompletedProcess | None = None
    for block in extract_blocks(doc):
        if block.lang not in ("sh", "console", "shell", "bash"):
            continue
        lines = block.text.splitlines()
        for index, line in enumerate(lines):
            if not line.startswith("$ "):
                continue  # expected output, handled with its command
            command = line[2:].strip()
            if command.startswith("echo $?"):
                assert last is not None, f"{doc.name}:{block.line}: $? before a command"
                expected = lines[index + 1].strip()
                assert str(last.returncode) == expected, (
                    f"{doc.name}:{block.line}: `{command}` documents exit "
                    f"{expected}, got {last.returncode}\n{last.stdout}{last.stderr}"
                )
                continue
            if not command.startswith("python -m repro"):
                continue  # non-repro commands (pip, …) are display-only
            last = _run(command, tmp_path)
            ran += 1
            # verdict keywords in the documented transcript must appear
            expected_output = []
            for follow in lines[index + 1 :]:
                if follow.startswith("$ "):
                    break
                expected_output.append(follow)
            for follow in expected_output:
                keyword = follow.split(maxsplit=1)[0] if follow.split() else ""
                if keyword in ("HOLDS", "VIOLATED", "BUDGET", "property"):
                    assert keyword in last.stdout, (
                        f"{doc.name}:{block.line}: `{command}` output lost "
                        f"{keyword!r}:\n{last.stdout}{last.stderr}"
                    )
    if doc.name == "tutorial.md":
        assert ran >= 3, f"{doc.name}: the tutorial transcript must actually run"
