"""LTL: NNF, reference semantics, automaton construction (both
acceptances), and randomized cross-checks automaton vs semantics."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ltl.automaton import build_automaton
from repro.ltl.formulas import (
    Always,
    AndF,
    Eventually,
    FalseF,
    Next,
    NotF,
    OrF,
    Prop,
    Release,
    TrueF,
    Until,
    holds_finite,
    holds_infinite_lasso,
    nnf,
    propositions,
)

p, q = Prop("p"), Prop("q")


class TestNNF:
    def test_negated_until_becomes_release(self):
        formula = nnf(NotF(Until(p, q)))
        assert isinstance(formula, Release)

    def test_negated_next(self):
        formula = nnf(NotF(Next(p)))
        assert isinstance(formula, Next)
        assert isinstance(formula.body, NotF)

    def test_double_negation(self):
        assert nnf(NotF(NotF(p))) == p

    def test_de_morgan(self):
        formula = nnf(NotF(AndF(p, q)))
        assert isinstance(formula, OrF)


class TestFiniteSemantics:
    def test_strong_next_at_end(self):
        # X p is false at the last position
        assert not holds_finite(Next(p), [{"p": True}])
        assert holds_finite(Next(p), [{}, {"p": True}])

    def test_until(self):
        word = [{"p": True}, {"p": True}, {"q": True}]
        assert holds_finite(Until(p, q), word)
        assert not holds_finite(Until(p, q), [{"p": True}, {}])

    def test_always_eventually(self):
        word = [{"p": True}] * 3
        assert holds_finite(Always(p), word)
        assert holds_finite(Eventually(p), [{}, {}, {"p": True}])
        assert not holds_finite(Eventually(p), [{}, {}])

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError):
            holds_finite(p, [])


class TestLassoSemantics:
    def test_gf_on_loop(self):
        assert holds_infinite_lasso(Always(Eventually(p)), [], [{"p": True}, {}])
        assert not holds_infinite_lasso(Always(Eventually(p)), [{"p": True}], [{}])

    def test_fg(self):
        formula = Eventually(Always(p))
        assert holds_infinite_lasso(formula, [{}], [{"p": True}])
        assert not holds_infinite_lasso(formula, [{"p": True}], [{}, {"p": True}])

    def test_release(self):
        # q stays until p releases it
        formula = Release(p, q)
        assert holds_infinite_lasso(formula, [{"q": True, "p": True}], [{}])
        assert not holds_infinite_lasso(formula, [{"q": True}], [{}])


class TestAutomaton:
    def test_states_exist(self):
        auto = build_automaton(Until(p, q))
        assert auto.initial
        assert auto.states

    def test_finite_acceptance_matches(self):
        auto = build_automaton(Eventually(p))
        assert auto.accepts_finite([{}, {"p": True}])
        assert not auto.accepts_finite([{}, {}])

    def test_lasso_acceptance_matches(self):
        auto = build_automaton(Always(Eventually(p)))
        assert auto.accepts_lasso([], [{"p": True}, {}])
        assert not auto.accepts_lasso([], [{}])

    def test_safety_formula_all_states_buchi(self):
        auto = build_automaton(Always(p))
        assert auto.buchi_accepting == auto.states


FORMULAS = [
    p,
    NotF(p),
    AndF(p, q),
    OrF(p, NotF(q)),
    Next(p),
    Until(p, q),
    Release(p, q),
    Always(p),
    Eventually(q),
    Always(OrF(NotF(p), Eventually(q))),
    Until(p, Until(q, p)),
    AndF(Always(Eventually(p)), Eventually(Always(q))),
    Next(Until(NotF(p), q)),
]


@st.composite
def letters(draw):
    return {"p": draw(st.booleans()), "q": draw(st.booleans())}


class TestCrossValidation:
    @given(
        formula=st.sampled_from(FORMULAS),
        word=st.lists(letters(), min_size=1, max_size=6),
    )
    @settings(max_examples=200, deadline=None)
    def test_finite_agreement(self, formula, word):
        auto = build_automaton(formula)
        assert auto.accepts_finite(word) == holds_finite(formula, word)

    @given(
        formula=st.sampled_from(FORMULAS),
        prefix=st.lists(letters(), max_size=3),
        loop=st.lists(letters(), min_size=1, max_size=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_lasso_agreement(self, formula, prefix, loop):
        auto = build_automaton(formula)
        assert auto.accepts_lasso(prefix, loop) == holds_infinite_lasso(
            formula, prefix, loop
        )

    @given(
        formula=st.sampled_from(FORMULAS),
        word=st.lists(letters(), min_size=1, max_size=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_negation_complement_finite(self, formula, word):
        assert holds_finite(NotF(formula), word) != holds_finite(formula, word)


class TestPropositions:
    def test_collects_payloads(self):
        assert propositions(AndF(p, Until(q, p))) == frozenset({"p", "q"})
