"""Verifier engine behaviors: budgets, time limits, witnesses, rejection
of unsupported property fragments, reuse across properties."""

from fractions import Fraction

import pytest

from repro.database.schema import DatabaseSchema, Relation, numeric
from repro.errors import BudgetExceeded, SpecificationError
from repro.has import HAS, InternalService, Task
from repro.hltl.formulas import HLTLProperty, HLTLSpec, SetAtom, cond
from repro.logic.conditions import And, Eq, TRUE
from repro.logic.terms import Const, id_var, num_var
from repro.ltl.formulas import Always, Eventually
from repro.verifier import Verifier, VerifierConfig, verify

DB = DatabaseSchema((Relation("ITEMS", (numeric("price"),)),))


def counter_system():
    """x cycles through 0 → 1 → 2 → 0 …: several distinct states."""
    x = num_var("x")
    services = tuple(
        InternalService(f"to{v}", post=Eq(x, Const(Fraction(v))))
        for v in range(3)
    )
    return HAS(DB, Task(name="T1", variables=(x,), services=services)), x


class TestBudgets:
    def test_km_budget_raises(self):
        has, x = counter_system()
        prop = HLTLProperty(HLTLSpec("T1", Always(cond(TRUE))))
        with pytest.raises(BudgetExceeded):
            verify(has, prop, VerifierConfig(km_budget=1))

    def test_time_limit_raises(self):
        has, x = counter_system()
        prop = HLTLProperty(HLTLSpec("T1", Always(cond(TRUE))))
        with pytest.raises(BudgetExceeded):
            verify(
                has,
                prop,
                VerifierConfig(km_budget=10_000_000, time_limit_seconds=0.0),
            )

    def test_budget_never_returns_wrong_verdict(self):
        """Either the right answer or an exception — never a guess."""
        has, x = counter_system()
        prop = HLTLProperty(
            HLTLSpec("T1", Always(cond(Eq(x, Const(Fraction(0))))))
        )
        for budget in (2, 5, 20, 1000):
            try:
                result = verify(has, prop, VerifierConfig(km_budget=budget))
            except BudgetExceeded:
                continue
            assert not result.holds  # x reaches 1


class TestWitnesses:
    def test_witness_services_are_real(self):
        has, x = counter_system()
        prop = HLTLProperty(
            HLTLSpec("T1", Always(cond(Eq(x, Const(Fraction(0))))))
        )
        result = verify(has, prop)
        assert not result.holds
        names = {step.service for step in result.witness if step.task == "T1"}
        # every step — the lasso cycle included — is a real service; the
        # old "(cycle)" sentinel is gone in favour of result.loop_start
        assert names <= {f"T1.to{v}" for v in range(3)}
        if result.witness_kind == "lasso":
            assert result.loop_start is not None
            assert 0 <= result.loop_start < len(result.witness)

    def test_explain_formats(self):
        has, x = counter_system()
        prop = HLTLProperty(HLTLSpec("T1", Eventually(cond(TRUE))), name="p")
        result = verify(has, prop)
        text = result.explain()
        assert "p" in text and ("HOLDS" in text or "VIOLATED" in text)


class TestRejections:
    def test_global_variables_rejected(self):
        has, x = counter_system()
        g = num_var("g")
        prop = HLTLProperty(
            HLTLSpec("T1", Always(cond(Eq(x, g)))), global_variables=(g,)
        )
        with pytest.raises(SpecificationError, match="global"):
            verify(has, prop)

    def test_set_atoms_rejected(self):
        s = id_var("s")
        root = Task(
            name="T1",
            variables=(s,),
            set_variables=(s,),
            services=(InternalService("noop"),),
        )
        has = HAS(DB, root)
        g = id_var("g")
        prop = HLTLProperty(
            HLTLSpec("T1", Always(cond(SetAtom("T1", (g,))))),
            global_variables=(g,),
        )
        with pytest.raises(SpecificationError):
            verify(has, prop)


class TestReuse:
    def test_verifier_reusable_across_properties(self):
        has, x = counter_system()
        verifier = Verifier(has)
        r1 = verifier.verify(
            HLTLProperty(HLTLSpec("T1", Always(cond(TRUE))), name="p1")
        )
        r2 = verifier.verify(
            HLTLProperty(
                HLTLSpec("T1", Always(cond(Eq(x, Const(Fraction(9)))))),
                name="p2",
            )
        )
        assert r1.holds and not r2.holds
