"""FO conditions: sorts, evaluation, null semantics, NNF, abstract eval."""

from fractions import Fraction

import pytest

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.database.instance import Identifier
from repro.errors import ConditionError
from repro.logic.conditions import (
    And,
    ArithAtom,
    Eq,
    Exists,
    FALSE,
    Implies,
    Not,
    Or,
    RelationAtom,
    TRUE,
    nnf_condition,
)
from repro.logic.terms import Const, NULL, id_var, num_var

f = id_var("f")
h = id_var("h")
p = num_var("p")
q = num_var("q")


class TestSorts:
    def test_mixed_equality_rejected(self):
        with pytest.raises(ConditionError):
            Eq(f, p)

    def test_null_only_with_id(self):
        Eq(f, NULL)  # fine
        with pytest.raises(ConditionError):
            Eq(p, NULL)

    def test_arith_atom_rejects_id_unknowns(self):
        with pytest.raises(ConditionError):
            ArithAtom(compare(linvar(f), Rel.EQ, linconst(0)))

    def test_relation_atom_typecheck(self, travel_schema):
        good = RelationAtom("FLIGHTS", (f, p, h))
        good.typecheck(travel_schema)
        bad = RelationAtom("FLIGHTS", (f, h, p))  # numeric and id swapped
        with pytest.raises(ConditionError):
            bad.typecheck(travel_schema)


class TestEvaluation:
    def test_equality(self, travel_db):
        f1 = Identifier("FLIGHTS", "f1")
        assert Eq(f, f).evaluate(travel_db, {f: f1})
        assert Eq(f, NULL).evaluate(travel_db, {f: None})
        assert not Eq(f, NULL).evaluate(travel_db, {f: f1})

    def test_relation_atom(self, travel_db):
        f1 = Identifier("FLIGHTS", "f1")
        h1 = Identifier("HOTELS", "h1")
        atom = RelationAtom("FLIGHTS", (f, p, h))
        assert atom.evaluate(travel_db, {f: f1, p: Fraction(400), h: h1})
        assert not atom.evaluate(travel_db, {f: f1, p: Fraction(999), h: h1})

    def test_relation_atom_null_is_false(self, travel_db):
        atom = RelationAtom("FLIGHTS", (f, p, h))
        h1 = Identifier("HOTELS", "h1")
        assert not atom.evaluate(travel_db, {f: None, p: Fraction(400), h: h1})
        f1 = Identifier("FLIGHTS", "f1")
        assert not atom.evaluate(travel_db, {f: f1, p: Fraction(400), h: None})

    def test_relation_atom_wrong_domain_id(self, travel_db):
        atom = RelationAtom("FLIGHTS", (f, p, h))
        h1 = Identifier("HOTELS", "h1")
        assert not atom.evaluate(travel_db, {f: h1, p: Fraction(200), h: h1})

    def test_arith(self, travel_db):
        atom = ArithAtom(compare(linvar(p) + linvar(q), Rel.LE, linconst(10)))
        assert atom.evaluate(travel_db, {p: 4, q: 6})
        assert not atom.evaluate(travel_db, {p: 4, q: 7})

    def test_boolean_structure(self, travel_db):
        cond = Implies(Eq(f, NULL), Eq(p, Const.of(0)))
        assert cond.evaluate(travel_db, {f: None, p: Fraction(0)})
        assert not cond.evaluate(travel_db, {f: None, p: Fraction(1)})
        f1 = Identifier("FLIGHTS", "f1")
        assert cond.evaluate(travel_db, {f: f1, p: Fraction(5)})

    def test_unbound_variable_raises(self, travel_db):
        with pytest.raises(ConditionError):
            Eq(f, h).evaluate(travel_db, {f: None})

    def test_exists(self, travel_db):
        # there is a flight whose compatible hotel is h1
        c = id_var("c")
        pr = num_var("pr")
        cond = Exists((c, pr), RelationAtom("FLIGHTS", (c, pr, h)))
        h1 = Identifier("HOTELS", "h1")
        h_missing = Identifier("HOTELS", "nope")
        assert cond.evaluate(travel_db, {h: h1})
        assert not cond.evaluate(travel_db, {h: h_missing})


class TestAbstract:
    def test_atoms_collection(self):
        cond = And(Eq(f, NULL), Or(Eq(f, h), Not(Eq(f, NULL))))
        assert len(cond.atoms()) == 2

    def test_evaluate_abstract(self):
        a1, a2 = Eq(f, NULL), Eq(f, h)
        cond = Implies(a1, a2)
        assert cond.evaluate_abstract({a1: False, a2: False})
        assert not cond.evaluate_abstract({a1: True, a2: False})

    def test_satisfying_assignments(self):
        a1, a2 = Eq(f, NULL), Eq(f, h)
        cond = And(a1, Not(a2))
        sats = list(cond.satisfying_atom_assignments())
        assert sats == [{a1: True, a2: False}]

    def test_rename(self):
        g = id_var("g")
        cond = And(Eq(f, NULL), Eq(f, h))
        renamed = cond.rename({f: g})
        assert g in renamed.variables()
        assert f not in renamed.variables()


class TestNNF:
    def test_pushes_negation(self):
        cond = Not(And(Eq(f, NULL), Eq(f, h)))
        normal = nnf_condition(cond)
        assert isinstance(normal, Or)
        assert all(isinstance(part, Not) for part in normal.parts)

    def test_double_negation(self):
        cond = Not(Not(Eq(f, NULL)))
        assert nnf_condition(cond) == Eq(f, NULL)

    def test_true_false(self):
        assert nnf_condition(Not(TRUE)) is FALSE
        assert nnf_condition(Not(FALSE)) is TRUE

    def test_negated_exists_rejected(self):
        cond = Not(Exists((h,), Eq(f, h)))
        with pytest.raises(ConditionError):
            nnf_condition(cond)

    def test_pure_equality_detection(self):
        pure = ArithAtom(compare(linvar(p) - linvar(q), Rel.EQ, linconst(0)))
        assert pure.is_pure_equality
        rich = ArithAtom(compare(linvar(p) + linvar(q), Rel.EQ, linconst(0)))
        assert not rich.is_pure_equality
        ineq = ArithAtom(compare(linvar(p), Rel.LE, linconst(0)))
        assert not ineq.is_pure_equality
