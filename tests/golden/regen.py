#!/usr/bin/env python
"""Regenerate the golden export files from the synthetic trace fixture
in ``tests/test_obs_analysis.py``:

    PYTHONPATH=src python tests/golden/regen.py

Only run this after an *intentional* change to the export formats, and
review the diff — the goldens pin the exporters' exact bytes.
"""

from __future__ import annotations

import sys
from pathlib import Path

HERE = Path(__file__).parent
sys.path.insert(0, str(HERE.parent))

from test_obs_analysis import _synthetic_serial_events  # noqa: E402

from repro.obs.export import export_trace  # noqa: E402


def main() -> None:
    events = _synthetic_serial_events()
    for fmt in ("chrome", "speedscope"):
        out = HERE / f"trace_serial.{fmt}.json"
        export_trace(events, fmt, out)
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
