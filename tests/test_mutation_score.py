"""Mutation score of the regression artifacts.

``repro.fuzz.mutations`` ships named verifier bugs; the differential
oracle's live catches are tested in ``tests/test_fuzz.py``.  This module
measures the complementary guarantee: the *checked-in* artifacts — the
replay corpus (``tests/corpus``) and the parametric scenario families
(``repro.workloads.families``) — kill every shipped mutation through
plain expectation pinning, with no differential oracle in the loop.

That matters for ``drop_blocking`` specifically: the bounded reference
checker searches lassos only, so the live oracle is blind to a dropped
blocking violation (pinned in ``tests/test_fuzz.py``).  The corpus
still kills it, because corpus entries record the expected symbolic
verdict and a blocking-violated entry flips to ``holds`` under the
mutation.  The families do *not* kill it — every family violation is
lasso-shaped — and that gap is pinned here explicitly so it stays
visible if the families ever grow a blocking-violated member.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz import load_corpus_entry, replay_corpus_entry
from repro.fuzz.mutations import inject, mutation_names
from repro.service.pool import execute_job
from repro.service.suites import build_suite

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("scenario-*.json"))


def _expected(path: Path) -> dict:
    return json.loads(path.read_text())["expected"]


def _corpus_killed(paths, mutation: str) -> bool:
    """True when at least one entry stops replaying cleanly under the
    injected bug (early exit: this is a kill check, not a census)."""
    with inject(mutation):
        for path in paths:
            entry = load_corpus_entry(path)
            outcome, notes = replay_corpus_entry(entry)
            if notes or outcome.discrepancy is not None:
                return True
    return False


def _family_survivors(mutation: str, quick: bool = True) -> list[str]:
    """Family jobs whose verdict still matches its pinned expectation
    under the injected bug (all of them ⇒ the families miss the bug)."""
    jobs = build_suite("families", quick=quick)
    killed = []
    with inject(mutation):
        for job in jobs:
            outcome = execute_job(job)
            if outcome.status != job.expected_status:
                killed.append(job.name)
    return [job.name for job in jobs if job.name not in killed]


def test_every_shipped_mutation_is_exercised_here():
    assert set(mutation_names()) == {
        "drop_blocking",
        "drop_lasso",
        "spurious_violation",
    }, "new mutation shipped: add a kill (or pinned-miss) test for it here"


def test_drop_lasso_killed_by_corpus_and_families():
    violated = [p for p in CORPUS if _expected(p)["symbolic"] == "violated"]
    assert _corpus_killed(violated[:3], "drop_lasso")
    jobs = build_suite("families", quick=True)
    assert len(_family_survivors("drop_lasso")) < len(jobs)


def test_spurious_violation_killed_by_corpus_and_families():
    holding = [p for p in CORPUS if _expected(p)["symbolic"] == "holds"]
    assert _corpus_killed(holding[:3], "spurious_violation")
    jobs = build_suite("families", quick=True)
    assert len(_family_survivors("spurious_violation")) < len(jobs)


def test_drop_blocking_killed_by_corpus():
    # Blocking-violated entries are the ones whose bounded verdict is
    # not independently "violated" (the lasso-only bounded checker never
    # confirms a blocking run); only those can flip under the mutation.
    candidates = [
        p
        for p in CORPUS
        if _expected(p)["symbolic"] == "violated"
        and _expected(p)["bounded"] != "violated"
    ]
    assert candidates, "corpus lost its blocking-violated entries"
    assert _corpus_killed(candidates, "drop_blocking"), (
        "the corpus no longer kills drop_blocking: it needs at least one "
        "blocking-violated entry (symbolic=violated, bounded≠violated) — "
        "the live differential oracle is blind to this bug, so the corpus "
        "is the only artifact pinning it"
    )


def test_drop_blocking_families_blind_spot_is_pinned():
    """Every family violation is lasso-shaped, so the families alone
    miss ``drop_blocking`` entirely.  If this starts failing, a family
    grew a blocking-violated member: update this pin to a kill assertion
    and the module docstring's blind-spot note."""
    jobs = build_suite("families", quick=False)
    survivors = _family_survivors("drop_blocking", quick=False)
    assert len(survivors) == len(jobs), (
        "families now kill drop_blocking — promote this pin to a kill test"
    )


@pytest.mark.parametrize("mutation", sorted(mutation_names()))
def test_mutation_score_is_total(mutation):
    """Every shipped mutation is killed by the combined artifact set."""
    if mutation == "drop_blocking":
        candidates = [
            p
            for p in CORPUS
            if _expected(p)["symbolic"] == "violated"
            and _expected(p)["bounded"] != "violated"
        ]
        assert _corpus_killed(candidates, mutation)
        return
    target = "violated" if mutation == "drop_lasso" else "holds"
    paths = [p for p in CORPUS if _expected(p)["symbolic"] == target]
    killed = _corpus_killed(paths[:3], mutation) or bool(
        len(_family_survivors(mutation)) < len(build_suite("families", quick=True))
    )
    assert killed
