"""The observability stack: tracer, phase timers, heartbeat, report —
and the contract that makes them safe to leave on: **instrumentation is
observationally invisible**.  Verdicts, witnesses, KM node counts, job
hashes, and semantic outcome bytes must be byte-identical with tracing
on or off (A/B-tested here), and the trace itself — minus its timing
fields — must be deterministic across PYTHONHASHSEED values (pinned by
a subprocess test, same scheme as ``tests/test_perf.py``)."""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.examples.travel import discount_policy_property_lite, travel_lite
from repro.obs import trace
from repro.obs.progress import Heartbeat
from repro.obs.report import load_events, render, scrub_event, summarize
from repro.perf.counters import PerfCounters
from repro.perf.phases import PhaseTimers
from repro.service.jobs import JobOutcome, VerificationJob
from repro.service.runner import run_batch
from repro.verifier.config import VerifierConfig
from repro.verifier.engine import Verifier
from repro.verifier.result import VerificationStats

GALLERY = (
    Path(__file__).parent.parent
    / "src"
    / "repro"
    / "workloads"
    / "gallery"
)


@pytest.fixture(autouse=True)
def _tracer_off():
    """Every test starts and ends with the tracer inactive."""
    trace.stop()
    yield
    trace.stop()


# ======================================================================
# the tracer itself
# ======================================================================
class TestTracer:
    def test_off_by_default(self):
        assert not trace.enabled()
        trace.event("noise", x=1)  # must be a silent no-op

    def test_events_and_spans_to_sink(self):
        sink = io.StringIO()
        trace.start(sink)
        assert trace.enabled()
        trace.event("ping", n=7)
        with trace.span("work", what="test") as extra:
            extra["result"] = "ok"
        trace.stop()
        assert not trace.enabled()
        records = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [r["ev"] for r in records] == ["ping", "span"]
        assert records[0]["n"] == 7
        assert records[0]["t"] >= 0
        assert records[1]["name"] == "work"
        assert records[1]["what"] == "test"
        assert records[1]["result"] == "ok"
        assert records[1]["dur"] >= 0

    def test_span_records_error_and_reraises(self):
        sink = io.StringIO()
        trace.start(sink)
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("no")
        trace.stop()
        (record,) = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert record["name"] == "boom"
        assert record["error"] == "ValueError"

    def test_span_noop_when_disabled(self):
        with trace.span("quiet") as extra:
            extra["anything"] = 1  # accepted, discarded

    def test_file_sink_owned_and_closed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.start(path)
        trace.event("one")
        trace.stop()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["ev"] for r in records] == ["one"]

    def test_listener_receives_records_and_errors_are_swallowed(self):
        seen = []

        def bad_listener(record):
            raise RuntimeError("listener bug")

        trace.add_listener(bad_listener)
        trace.add_listener(seen.append)
        try:
            trace.start(None)  # listener-only trace
            trace.event("hello", k=1)
            trace.stop()
        finally:
            trace.remove_listener(bad_listener)
            trace.remove_listener(seen.append)
        assert len(seen) == 1 and seen[0]["ev"] == "hello"

    def test_fork_guard_pid(self, monkeypatch):
        trace.start(io.StringIO())
        assert trace.enabled()
        monkeypatch.setattr(
            "repro.obs.trace._STATE.pid", 999_999_999, raising=True
        )
        assert not trace.enabled()  # a "forked child" must stay silent


# ======================================================================
# sampled phase timers
# ======================================================================
class TestPhaseTimers:
    def test_basic_accounting(self):
        timers = PhaseTimers()
        token = timers.begin("fm")
        timers.end("fm", token)
        snap = timers.snapshot()
        assert snap["fm"]["calls"] == 1
        assert snap["fm"]["timed"] == 1
        assert snap["fm"]["seconds"] >= 0

    def test_nested_activations_count_once(self):
        timers = PhaseTimers()
        outer = timers.begin("expand")
        inner = timers.begin("expand")
        assert inner is None  # nested: not counted, not timed
        timers.end("expand", inner)
        timers.end("expand", outer)
        snap = timers.snapshot()
        assert snap["expand"]["calls"] == 1
        assert snap["expand"]["timed"] == 1

    def test_sampling_schedule(self):
        from repro.perf.phases import _SAMPLE_EVERY, _SAMPLE_FULL

        timers = PhaseTimers()
        n = _SAMPLE_FULL + _SAMPLE_EVERY * 10
        for _ in range(n):
            timers.end("canon", timers.begin("canon"))
        snap = timers.snapshot()
        assert snap["canon"]["calls"] == n
        # full-rate region + every Nth thereafter
        expected_timed = _SAMPLE_FULL + sum(
            1
            for call in range(_SAMPLE_FULL + 1, n + 1)
            if call % _SAMPLE_EVERY == 0
        )
        assert snap["canon"]["timed"] == expected_timed

    def test_estimate_scales_sampled_time(self):
        delta = {"fm": {"calls": 100, "timed": 10, "seconds": 1.0}}
        assert PhaseTimers.estimate(delta) == {"fm": 10.0}
        # fully-timed phases pass through unscaled
        delta = {"fm": {"calls": 10, "timed": 10, "seconds": 1.0}}
        assert PhaseTimers.estimate(delta) == {"fm": 1.0}

    def test_since_reports_deltas_only(self):
        timers = PhaseTimers()
        timers.add("fm", 1.0)
        baseline = timers.snapshot()
        timers.add("fm", 0.5)
        timers.add("canon", 0.25)
        delta = timers.since(baseline)
        assert set(delta) == {"fm", "canon"}
        assert delta["fm"]["calls"] == 1
        assert delta["fm"]["seconds"] == pytest.approx(0.5)


# ======================================================================
# scrubbing + report
# ======================================================================
class TestReport:
    def test_scrub_strips_timing_recursively(self):
        record = {
            "ev": "job_finish",
            "t": 1.5,
            "dur": 0.2,
            "wall_seconds": 0.2,
            "total_seconds": 0.21,
            "phases": {"fm": {"seconds": 0.1}},
            "rates": {"fm_sat": 0.5},
            "counters": {"fm_sat_hits": 3, "nested": {"x_seconds": 1}},
            "km_nodes": 42,
        }
        assert scrub_event(record) == {
            "ev": "job_finish",
            "counters": {"fm_sat_hits": 3, "nested": {}},
            "km_nodes": 42,
        }

    def test_load_events_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events(path)
        path.write_text('{"no_ev_key": 1}\n')
        with pytest.raises(ValueError, match="not a trace record"):
            load_events(path)

    def test_summarize_and_breakdown_sum_to_wall(self):
        events = [
            {
                "ev": "job_finish",
                "name": "j1",
                "status": "holds",
                "km_nodes": 10,
                "total_seconds": 2.0,
                "phases": {
                    "fm": {"calls": 4, "timed": 4, "seconds": 0.5},
                    "expand": {"calls": 1, "timed": 1, "seconds": 1.5},
                },
                "counters": {"fm_sat_hits": 8, "fm_sat_misses": 2},
            },
            {
                "ev": "job_finish",
                "name": "j2",
                "status": "violated",
                "km_nodes": 20,
                "total_seconds": 1.0,
                "phases": {"fm": {"calls": 2, "timed": 2, "seconds": 0.25}},
                "counters": {"fm_sat_hits": 2, "fm_sat_misses": 3},
            },
        ]
        summary = summarize(events)
        assert len(summary.jobs) == 2
        assert summary.wall_seconds == pytest.approx(3.0)
        assert summary.counters == {"fm_sat_hits": 10, "fm_sat_misses": 5}
        rows = summary.phase_breakdown()
        assert sum(seconds for _l, seconds, _c in rows) == pytest.approx(
            summary.wall_seconds
        )
        by_label = {label: seconds for label, seconds, _c in rows}
        assert by_label["fm"] == pytest.approx(0.75)
        # expand exclusive of nested fm/canon: 1.5 - 0.75 - 0
        assert by_label["expand (excl. fm/canon)"] == pytest.approx(0.75)
        text = render(summary)
        assert "per-phase time breakdown" in text
        assert "fm_sat" in text

    def test_summarize_falls_back_to_verify_spans(self):
        events = [
            {
                "ev": "span",
                "name": "verify",
                "dur": 4.0,
                "phases": {"fm": {"calls": 1, "timed": 1, "seconds": 1.0}},
            }
        ]
        summary = summarize(events)
        assert summary.jobs == []
        assert summary.wall_seconds == pytest.approx(4.0)
        assert summary.phases["fm"]["seconds"] == pytest.approx(1.0)

    def test_rates_none_renders_na(self):
        rates = PerfCounters.rates({})
        assert all(rate is None for rate in rates.values())
        rates = PerfCounters.rates({"fm_sat_hits": 1, "fm_sat_misses": 1})
        assert rates["fm_sat"] == pytest.approx(0.5)
        assert rates["summary"] is None
        summary = summarize(
            [
                {
                    "ev": "job_finish",
                    "name": "j",
                    "total_seconds": 1.0,
                    "counters": {"fm_sat_hits": 0, "fm_sat_misses": 0},
                }
            ]
        )
        assert "n/a" in render(summary)


# ======================================================================
# heartbeat
# ======================================================================
class TestHeartbeat:
    def test_job_lines_and_throttled_progress(self):
        out = io.StringIO()
        beat = Heartbeat(stream=out, interval=1.0)
        beat({"ev": "job_start", "name": "jobA", "t": 0.0})
        beat({"ev": "km_progress", "t": 0.5, "label": "root", "nodes": 5})
        beat(
            {"ev": "km_progress", "t": 1.5, "label": "root", "nodes": 9,
             "frontier": 2}
        )
        beat(
            {"ev": "job_finish", "name": "jobA", "status": "holds",
             "km_nodes": 9, "wall_seconds": 1.6}
        )
        lines = out.getvalue().splitlines()
        assert lines[0] == "→ jobA"
        # t=0.5 throttled (within interval of job_start), t=1.5 printed
        assert len(lines) == 3
        assert "jobA · root" in lines[1] and "nodes=9" in lines[1]
        assert "frontier=2" in lines[1]
        assert lines[2] == "  jobA: holds km=9 1.6s"

    def test_parallel_jobs_keyed_not_mislabeled(self):
        """Under --workers N many jobs are in flight at once; finish
        lines must carry each job's own name (looked up by content key),
        a [k/N] suite counter, and a final suite summary."""
        out = io.StringIO()
        beat = Heartbeat(stream=out, interval=1.0)
        beat({"ev": "suite_start", "t": 0.0, "total": 3, "workers": 2})
        # submits are queued, not running: registered silently, no → line
        beat({"ev": "job_submit", "t": 0.01, "name": "a", "key": "ka"})
        beat({"ev": "job_submit", "t": 0.01, "name": "b", "key": "kb"})
        beat({"ev": "job_finish", "t": 0.5, "name": "b", "key": "kb",
              "status": "holds", "km_nodes": 5, "wall_seconds": 0.4})
        beat({"ev": "job_finish", "t": 0.6, "name": "a", "key": "ka",
              "status": "violated", "km_nodes": 7, "wall_seconds": 0.5})
        beat({"ev": "suite_done", "t": 0.7, "total": 3, "cache_hits": 1,
              "violations": 1, "budget_exceeded": 0, "errors": 0,
              "wall_seconds": 0.7})
        lines = out.getvalue().splitlines()
        assert lines[0] == "  b: holds km=5 0.4s  [1/3]"
        assert lines[1] == "  a: violated km=7 0.5s  [2/3]"
        assert lines[2] == (
            "suite done: 3 jobs · 1 cached · 1 violated"
            " · 0 over budget · 0 errors · 0.7s"
        )


# ======================================================================
# stats / outcome plumbing
# ======================================================================
class TestStatsPlumbing:
    def test_stats_to_dict_and_merge_phase_seconds(self):
        a = VerificationStats(
            km_nodes=1, fm_seconds=0.5, canon_seconds=0.25, expand_seconds=1.0
        )
        b = VerificationStats(
            km_nodes=2, fm_seconds=0.5, canon_seconds=0.25, expand_seconds=1.0
        )
        a.merge(b)
        assert a.fm_seconds == pytest.approx(1.0)
        assert a.canon_seconds == pytest.approx(0.5)
        assert a.expand_seconds == pytest.approx(2.0)
        d = a.to_dict()
        assert {
            "km_nodes", "summaries", "summary_hits", "condition_branches",
            "wall_seconds", "fm_seconds", "canon_seconds", "expand_seconds",
        } <= set(d)

    def test_outcome_roundtrip_keeps_metrics(self):
        outcome = JobOutcome(
            name="j", key="k", status="holds", holds=True,
            counters={"fm_sat_hits": 1}, phases={"fm": {"calls": 1}},
            stats={"km_nodes": 5}, total_seconds=1.25,
        )
        clone = JobOutcome.from_dict(outcome.to_dict())
        assert clone.counters == {"fm_sat_hits": 1}
        assert clone.phases == {"fm": {"calls": 1}}
        assert clone.stats == {"km_nodes": 5}
        assert clone.total_seconds == pytest.approx(1.25)

    def test_metrics_excluded_from_semantic_bytes(self):
        base = JobOutcome(name="j", key="k", status="holds", holds=True)
        loaded = JobOutcome(
            name="j", key="k", status="holds", holds=True,
            counters={"fm_sat_hits": 9}, phases={"fm": {"seconds": 1.0}},
            stats={"km_nodes": 5}, total_seconds=9.9,
        )
        assert base.semantic_bytes() == loaded.semantic_bytes()


def _lite_job(name="lite"):
    has = travel_lite(False)
    return VerificationJob(
        has=has,
        prop=discount_policy_property_lite(has),
        config=VerifierConfig(km_budget=60_000),
        name=name,
    )


class TestCrossProcessMetrics:
    @pytest.mark.slow
    def test_worker_counters_aggregate(self):
        """Under workers>1 the workers' COUNTERS die with their process;
        the deltas must ride back on each JobOutcome and aggregate."""
        report = run_batch([_lite_job()], workers=2)
        totals = report.merged_counters()
        # consultation totals, not misses: global caches may already be
        # warm when the whole suite runs in one process
        assert (
            totals.get("fm_sat_hits", 0) + totals.get("fm_sat_misses", 0) > 0
        )
        assert totals.get("store_key_misses", 0) > 0  # per-store, always cold
        rates = report.merged_rates()
        assert rates["fm_sat"] is not None and 0 <= rates["fm_sat"] <= 1
        phases = report.merged_phases()
        assert phases.get("expand", {}).get("calls", 0) >= 1
        assert "cache rates (all processes)" in report.format_report()

    def test_cache_hits_carry_no_metrics(self, tmp_path):
        from repro.service.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        job = _lite_job()
        run_batch([job], workers=1, cache=cache)
        warm = run_batch([job], workers=1, cache=cache)
        (outcome,) = warm.outcomes
        assert outcome.cache_hit
        assert outcome.counters is None and outcome.phases is None
        assert warm.merged_counters() == {}
        assert all(rate is None for rate in warm.merged_rates().values())


# ======================================================================
# the big contract: tracing is observationally invisible
# ======================================================================
def _semantic_outcome(job):
    from repro.service.pool import execute_job

    outcome = execute_job(job)
    return outcome.semantic_bytes(), outcome.key

def _gallery_job():
    from repro.dsl import load_document

    doc = load_document(GALLERY / "library_loans.has")
    return doc.jobs(default_config=VerifierConfig(km_budget=60_000))[0]


class TestTracedUntracedParity:
    @pytest.mark.parametrize(
        "make_job", [_lite_job, _gallery_job], ids=["travel-lite", "gallery"]
    )
    def test_byte_identical_outcomes(self, make_job):
        """Verdict, witness, KM counts, job hash, and semantic bytes are
        byte-identical with tracing on or off (the A/B contract)."""
        job_off = make_job()
        untraced, key_off = _semantic_outcome(job_off)

        sink = io.StringIO()
        trace.start(sink)
        try:
            job_on = make_job()
            traced, key_on = _semantic_outcome(job_on)
        finally:
            trace.stop()
        assert key_on == key_off  # content-addressed job key
        assert traced == untraced  # semantic outcome bytes
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert any(e["ev"] == "job_finish" for e in events)

    def test_verifier_result_parity(self):
        """Engine-level check, independent of the service layer."""

        def run():
            has = travel_lite(False)
            result = Verifier(has, VerifierConfig(km_budget=60_000)).verify(
                discount_policy_property_lite(has)
            )
            return (
                result.holds,
                result.witness_kind,
                [repr(s) for s in result.witness],
                result.stats.km_nodes,
                result.stats.summaries,
            )

        untraced = run()
        trace.start(io.StringIO())
        try:
            traced = run()
        finally:
            trace.stop()
        assert traced == untraced


_TRACE_SCRIPT = """\
import io, json, sys
from repro.examples.travel import travel_lite, discount_policy_property_lite
from repro.obs import trace
from repro.obs.report import scrub_event
from repro.service.jobs import VerificationJob
from repro.service.pool import execute_job
from repro.verifier.config import VerifierConfig

sink = io.StringIO()
trace.start(sink)
has = travel_lite(False)
job = VerificationJob(
    has=has,
    prop=discount_policy_property_lite(has),
    config=VerifierConfig(km_budget=60_000),
    name="lite",
)
execute_job(job)
trace.stop()
for line in sink.getvalue().splitlines():
    print(json.dumps(scrub_event(json.loads(line)), sort_keys=True))
"""


@pytest.mark.slow
def test_trace_content_is_hash_seed_independent():
    """The trace minus its timing fields (scrub_event) is byte-stable
    across PYTHONHASHSEED values: event order, span names, node counts,
    and per-job counters must not leak hash order."""
    outputs = set()
    for seed in ("0", "1", "4242"):
        result = subprocess.run(
            [sys.executable, "-c", _TRACE_SCRIPT],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).parent.parent),
            check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1, "hash-seed-dependent trace content"


# ======================================================================
# CLI: --trace/--progress flags and the report subcommand
# ======================================================================
class TestCli:
    def _main(self, argv, capsys):
        from repro.service.cli import main

        try:
            code = main(argv)
        except SystemExit as exc:
            code = exc.code
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_verify_trace_and_progress(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        code, _out, err = self._main(
            ["verify", "travel-lite-fixed", "--trace", str(out_path),
             "--progress"],
            capsys,
        )
        assert code == 0
        assert "→ " in err  # heartbeat on stderr
        assert f"trace written to {out_path}" in err
        events = load_events(out_path)
        assert any(e["ev"] == "job_finish" for e in events)

    def test_report_renders_breakdown(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        code, _out, _err = self._main(
            ["verify", "travel-lite-fixed", "--trace", str(out_path)], capsys
        )
        assert code == 0
        code, out, _err = self._main(["report", str(out_path)], capsys)
        assert code == 0
        assert "per-phase time breakdown" in out
        assert "total (wall)" in out
        code, out, _err = self._main(
            ["report", str(out_path), "--json"], capsys
        )
        assert code == 0
        data = json.loads(out)
        assert data["jobs"] == 1
        assert {"breakdown", "counters", "phases", "rates"} <= set(data)

    def test_report_bad_file_exits_2(self, tmp_path, capsys):
        code, _out, err = self._main(
            ["report", str(tmp_path / "missing.jsonl")], capsys
        )
        assert code == 2
        assert "cannot read trace" in err
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code, _out, err = self._main(["report", str(bad)], capsys)
        assert code == 2


# ======================================================================
# bench integration
# ======================================================================
class TestBenchSchema:
    def test_v1_baselines_still_load(self):
        from repro.perf.bench import load_record

        baselines = Path(__file__).parent.parent / "benchmarks" / "baselines"
        for path in sorted(baselines.glob("BENCH_*.json")):
            record = load_record(path)  # must not raise
            assert record["family"]

    def test_unknown_schema_rejected(self, tmp_path):
        from repro.perf.bench import load_record

        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError, match="expected one of"):
            load_record(path)

    @pytest.mark.slow
    def test_record_carries_phases_and_null_rates(self):
        from repro.perf.bench import BENCH_SCHEMA_VERSION, run_family

        record = run_family("travel-lite", reps=1)
        assert record["schema_version"] == BENCH_SCHEMA_VERSION == 2
        assert "raw" in record["phases"]
        assert record["phases"]["estimate_seconds"].get("expand", 0) > 0
        # every rate is a float in [0,1] or None — never a crash
        for rate in record["rates"].values():
            assert rate is None or 0.0 <= rate <= 1.0
