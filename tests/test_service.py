"""The batch verification service: jobs, cache, pool, runner, CLI."""

from __future__ import annotations

import json

import pytest

from repro.database.fkgraph import SchemaClass
from repro.errors import BudgetExceeded
from repro.service.cache import ResultCache
from repro.service.jobs import (
    JobOutcome,
    STATUS_BUDGET_EXCEEDED,
    STATUS_HOLDS,
    VerificationJob,
    job_from_spec,
)
from repro.service.pool import execute_job, run_jobs
from repro.service.runner import run_batch
from repro.service.suites import build_suite, suite_names
from repro.service.cli import main as cli_main
from repro.verifier import VerifierConfig
from repro.workloads import table1_workload

CONFIG = VerifierConfig(km_budget=30_000, time_limit_seconds=60)


def _quick_jobs():
    return build_suite("quick", config=CONFIG)


class TestJobs:
    def test_key_ignores_name_and_expectation(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2)
        a = job_from_spec(spec, CONFIG)
        b = VerificationJob(
            has=spec.has, prop=spec.prop, config=CONFIG, name="renamed",
            expected_holds=None,
        )
        assert a.key() == b.key()

    def test_key_depends_on_config(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2)
        a = job_from_spec(spec, VerifierConfig(km_budget=100))
        b = job_from_spec(spec, VerifierConfig(km_budget=200))
        assert a.key() != b.key()

    def test_payload_roundtrip_preserves_key(self):
        job = _quick_jobs()[0]
        clone = VerificationJob.from_payload(job.payload())
        assert clone.key() == job.key()
        assert clone.name == job.name

    def test_outcome_roundtrip(self):
        outcome = JobOutcome(
            name="n", key="k", status=STATUS_HOLDS, holds=True, km_nodes=7,
            summaries=2, wall_seconds=0.5, expected_holds=True,
        )
        clone = JobOutcome.from_dict(outcome.to_dict())
        assert clone == outcome
        assert clone.semantic_bytes() == outcome.semantic_bytes()

    def test_semantic_dict_excludes_timing_and_provenance(self):
        outcome = JobOutcome(name="n", key="k", status=STATUS_HOLDS, holds=True)
        semantic = outcome.semantic_dict()
        assert "wall_seconds" not in semantic
        assert "cache_hit" not in semantic


class TestExecution:
    def test_execute_job_matches_direct_verification(self):
        from repro.verifier import verify

        spec = table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True)
        job = job_from_spec(spec, CONFIG)
        outcome = execute_job(job)
        direct = verify(spec.has, spec.prop, CONFIG)
        assert outcome.holds == direct.holds is False
        assert outcome.witness_kind == direct.witness_kind
        assert outcome.km_nodes == direct.stats.km_nodes

    def test_budget_exceeded_is_captured_not_raised(self):
        spec = table1_workload(SchemaClass.CYCLIC, depth=2, with_sets=True)
        job = job_from_spec(spec, VerifierConfig(km_budget=3))
        outcome = execute_job(job)
        assert outcome.status == STATUS_BUDGET_EXCEEDED
        assert outcome.holds is None
        assert "budget" in outcome.error

    def test_malformed_payload_becomes_error_outcome(self):
        from repro.service.jobs import STATUS_ERROR
        from repro.service.pool import execute_payload

        outcome = JobOutcome.from_dict(
            execute_payload({"name": "broken", "key": "k", "has": {"t": "nope"}})
        )
        assert outcome.status == STATUS_ERROR
        assert outcome.name == "broken"
        assert outcome.key == "k"
        assert outcome.error

    def test_batch_survives_budget_exceeded_jobs(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2)
        good = job_from_spec(spec, CONFIG)
        bad = job_from_spec(
            table1_workload(SchemaClass.CYCLIC, depth=2, with_sets=True),
            VerifierConfig(km_budget=3),
        )
        report = run_batch([bad, good], workers=1)
        assert report.budget_exceeded == 1
        assert [o.status for o in report.outcomes][1] == STATUS_HOLDS


class TestParallelParity:
    def test_workers4_matches_workers1_byte_identical(self):
        jobs = _quick_jobs()
        serial = run_batch(jobs, workers=1)
        parallel = run_batch(jobs, workers=4)
        assert [o.name for o in parallel.outcomes] == [o.name for o in serial.outcomes]
        for a, b in zip(parallel.outcomes, serial.outcomes):
            assert a.semantic_bytes() == b.semantic_bytes()

    def test_run_jobs_order_is_input_order(self):
        jobs = _quick_jobs()
        outcomes = run_jobs(jobs, workers=4)
        assert [o.name for o in outcomes] == [j.name for j in jobs]


class TestCache:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        jobs = _quick_jobs()
        cache = ResultCache(tmp_path / "cache")
        first = run_batch(jobs, workers=1, cache=cache)
        assert first.cache_hits == 0
        second = run_batch(jobs, workers=1, cache=cache)
        assert second.cache_hits == len(jobs)
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.semantic_bytes() == b.semantic_bytes()

    def test_disk_cache_survives_new_instance(self, tmp_path):
        jobs = _quick_jobs()[:2]
        directory = tmp_path / "cache"
        run_batch(jobs, workers=1, cache=ResultCache(directory))
        fresh = ResultCache(directory)  # empty memory tier, warm disk tier
        report = run_batch(jobs, workers=1, cache=fresh)
        assert report.cache_hits == len(jobs)

    def test_memory_only_cache(self):
        jobs = _quick_jobs()[:2]
        cache = ResultCache()
        run_batch(jobs, workers=1, cache=cache)
        report = run_batch(jobs, workers=1, cache=cache)
        assert report.cache_hits == len(jobs)

    def test_duplicate_jobs_verified_once(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2)
        job = job_from_spec(spec, CONFIG)
        cache = ResultCache()
        report = run_batch([job, job, job], workers=1, cache=cache)
        assert report.total == 3
        assert report.cache_hits == 2  # first is live, rest deduped

    def test_non_verdict_outcomes_are_not_cached(self):
        bad = job_from_spec(
            table1_workload(SchemaClass.CYCLIC, depth=2, with_sets=True),
            VerifierConfig(km_budget=3),
        )
        cache = ResultCache()
        first = run_batch([bad], workers=1, cache=cache)
        assert first.budget_exceeded == 1
        second = run_batch([bad], workers=1, cache=cache)
        assert second.cache_hits == 0  # re-attempted, not served from cache

    def test_wrong_shape_cache_file_is_a_miss(self, tmp_path):
        jobs = _quick_jobs()[:1]
        directory = tmp_path / "cache"
        run_batch(jobs, workers=1, cache=ResultCache(directory))
        (victim,) = directory.glob("*/*.json")
        victim.write_text('["valid json", "wrong shape"]')
        report = run_batch(jobs, workers=1, cache=ResultCache(directory))
        assert report.cache_hits == 0
        assert report.outcomes[0].status == STATUS_HOLDS

    def test_cache_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _quick_jobs()[:1]
        run_batch(jobs, workers=1, cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestReport:
    def test_jsonl_export(self, tmp_path):
        jobs = _quick_jobs()
        report = run_batch(jobs, workers=1)
        out = tmp_path / "report.jsonl"
        report.to_jsonl(out)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == len(jobs) + 1  # jobs + aggregate
        assert lines[-1]["aggregate"] is True
        assert lines[-1]["total"] == len(jobs)
        assert {line["name"] for line in lines[:-1]} == {j.name for j in jobs}

    def test_expected_verdicts_hold(self):
        report = run_batch(_quick_jobs(), workers=1)
        assert report.errors == 0
        assert report.unexpected == []

    def test_merged_stats(self):
        report = run_batch(_quick_jobs(), workers=1)
        stats = report.merged_stats()
        assert stats.km_nodes == sum(o.km_nodes for o in report.outcomes)


class TestSuites:
    def test_suite_names(self):
        assert set(suite_names()) >= {"table1", "table2", "travel", "mixed", "quick"}

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            build_suite("nope")

    def test_table1_suite_shape(self):
        jobs = build_suite("table1", config=CONFIG)
        assert len(jobs) == 18
        assert len({j.key() for j in jobs}) == len(jobs)

    def test_quick_flag_trims(self):
        assert len(build_suite("table1", quick=True, config=CONFIG)) < 18


class TestCLI:
    def test_suite_command(self, tmp_path, capsys):
        jsonl = tmp_path / "out.jsonl"
        code = cli_main(
            [
                "suite",
                "quick",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--jsonl",
                str(jsonl),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out
        assert jsonl.exists()
        # repeated invocation: everything cached
        code = cli_main(
            ["suite", "quick", "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 cache hits" in out

    def test_verify_command(self, capsys):
        code = cli_main(["verify", "travel-lite-fixed", "--time-limit", "60"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_verify_violated_exit_code(self, capsys):
        code = cli_main(["verify", "travel-lite", "--time-limit", "60"])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_verify_json_output(self, capsys):
        code = cli_main(["verify", "travel-lite", "--time-limit", "60", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "violated"
        assert payload["witness_json"]["status"] in ("confirmed", "non_concretizable")

    def test_verify_job_file_roundtrip(self, tmp_path, capsys):
        dump = tmp_path / "job.json"
        code = cli_main(
            ["verify", "travel-lite-fixed", "--time-limit", "60",
             "--dump-job", str(dump)]
        )
        assert code == 0
        capsys.readouterr()
        code = cli_main(["verify", str(dump), "--time-limit", "60"])
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            cli_main(["verify", "no-such-example"])
