"""Shared fixtures: schemas, instances, and small systems used across tests."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.database.instance import DatabaseInstance
from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric


@pytest.fixture
def travel_schema() -> DatabaseSchema:
    return DatabaseSchema(
        (
            Relation(
                "FLIGHTS",
                (numeric("price"), foreign_key("comp_hotel_id", "HOTELS")),
            ),
            Relation("HOTELS", (numeric("unit_price"), numeric("discount_price"))),
        )
    )


@pytest.fixture
def travel_db(travel_schema) -> DatabaseInstance:
    db = DatabaseInstance(travel_schema)
    h1 = db.add("HOTELS", "h1", Fraction(200), Fraction(150))
    h2 = db.add("HOTELS", "h2", Fraction(120), Fraction(100))
    db.add("FLIGHTS", "f1", Fraction(400), h1)
    db.add("FLIGHTS", "f2", Fraction(550), h2)
    db.validate()
    return db


@pytest.fixture
def chain_schema() -> DatabaseSchema:
    return DatabaseSchema(
        (
            Relation("A", (numeric("x"), foreign_key("to_b", "B"))),
            Relation("B", (numeric("y"), foreign_key("to_c", "C"))),
            Relation("C", (numeric("z"),)),
        )
    )


@pytest.fixture
def cycle_schema() -> DatabaseSchema:
    return DatabaseSchema(
        (
            Relation("P", (foreign_key("next", "Q"),)),
            Relation("Q", (foreign_key("back", "P"),)),
        )
    )
