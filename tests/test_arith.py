"""Arithmetic substrate: linear expressions, Fourier–Motzkin, cells.

Includes hypothesis cross-checks of FM satisfiability against sampled
witnesses — FM claims SAT iff a rational witness exists.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.cells import Cell, SignCondition, count_cells, enumerate_cells
from repro.arith.constraints import Constraint, Rel, compare, eq, ge, gt, le, lt, ne
from repro.arith.fm import (
    eliminate,
    is_satisfiable,
    project,
    project_components,
    sample_solution,
)
from repro.arith.linexpr import LinExpr, const, var

x, y, z = var("x"), var("y"), var("z")


class TestLinExpr:
    def test_algebra(self):
        expr = 2 * x + y - 3
        assert expr.coefficient("x") == 2
        assert expr.coefficient("y") == 1
        assert expr.constant == -3

    def test_substitute(self):
        expr = x + 2 * y
        result = expr.substitute({"y": x + 1})
        assert result == 3 * x + 2

    def test_rename_merges(self):
        expr = x + y
        assert expr.rename({"y": "x"}) == 2 * x

    def test_evaluate(self):
        expr = x - 2 * y + 5
        assert expr.evaluate({"x": 1, "y": 3}) == 0

    def test_hash_equality(self):
        assert hash(x + y) == hash(y + x)
        assert x + y == y + x

    def test_zero_coefficients_dropped(self):
        assert (x - x).is_constant


class TestSatisfiability:
    def test_trivial(self):
        assert is_satisfiable([])
        assert is_satisfiable([le(x, 5)])

    def test_contradiction(self):
        assert not is_satisfiable([lt(x, y), lt(y, x)])

    def test_strict_cycle(self):
        assert not is_satisfiable([lt(x, x)])

    def test_equalities(self):
        assert is_satisfiable([eq(x + y, 10), eq(x - y, 0)])
        assert not is_satisfiable([eq(x, 1), eq(x, 2)])

    def test_ne_convexity(self):
        # x ≤ 0 ∧ x ≥ 0 forces x = 0, so x ≠ 0 is unsatisfiable
        assert not is_satisfiable([le(x, 0), ge(x, 0), ne(x, 0)])
        assert is_satisfiable([le(x, 1), ne(x, 0)])

    def test_many_nes_stay_fast(self):
        constraints = [ge(x, 0), le(x, 1)]
        constraints += [ne(x, Fraction(1, k)) for k in range(2, 40)]
        assert is_satisfiable(constraints)  # would be 2^38 by naive splitting

    def test_constant_contradiction(self):
        assert not is_satisfiable([Constraint(const(1), Rel.LE)])


class TestProjection:
    def test_projection_simple(self):
        systems = project([le(x, y), le(y, 5)], ["x"])
        assert len(systems) == 1
        (constraint,) = systems[0].constraints
        assert constraint.holds({"x": 5})
        assert not constraint.holds({"x": 6})

    def test_projection_preserves_solutions(self):
        systems = project([eq(x, y + z), ge(y, 1), ge(z, 1)], ["x"])
        assert any(s.holds({"x": Fraction(2)}) for s in systems)
        assert not any(s.holds({"x": Fraction(1)}) for s in systems)

    def test_eliminate_unsat(self):
        assert eliminate([lt(x, y), lt(y, x)], ["x", "y"]) == []

    def test_project_components_exact_for_live(self):
        kept, exact = project_components([le(x, y), ne(x, 3)], {"x", "y"})
        assert exact
        assert len(kept) == 2

    def test_project_components_drops_dead_component(self):
        kept, exact = project_components([le(z, 5), le(x, y)], {"x", "y"})
        assert exact
        assert all("z" not in c.unknowns for c in kept)

    def test_project_components_flags_dead_ne(self):
        # z is dead and x ≤ z ≤ x forces z = x: dropping z ≠ 0 may lose
        # information exactly when x = 0
        kept, exact = project_components(
            [le(x, z), le(z, x), ne(z, 0)], {"x"}
        )
        assert not exact


class TestSampling:
    def test_sample_satisfies(self):
        constraints = [eq(x + y, 10), ge(x, 4), ne(y, 0), lt(y, 3)]
        solution = sample_solution(constraints)
        assert solution is not None
        for constraint in constraints:
            assert constraint.holds(solution)

    def test_sample_none_when_unsat(self):
        assert sample_solution([lt(x, y), lt(y, x)]) is None


@st.composite
def small_constraints(draw):
    unknowns = ["x", "y", "z"]
    coeffs = {
        u: Fraction(draw(st.integers(min_value=-3, max_value=3)))
        for u in draw(st.sets(st.sampled_from(unknowns), min_size=1, max_size=3))
    }
    constant = Fraction(draw(st.integers(min_value=-5, max_value=5)))
    rel = draw(st.sampled_from([Rel.LE, Rel.LT, Rel.EQ, Rel.NE, Rel.GE, Rel.GT]))
    return Constraint(LinExpr(coeffs, constant), rel)


class TestFMProperties:
    @given(st.lists(small_constraints(), max_size=5))
    @settings(max_examples=120, deadline=None)
    def test_sat_iff_sample_exists(self, constraints):
        sat = is_satisfiable(constraints)
        sample = sample_solution(constraints)
        if sample is not None:
            full = {u: sample.get(u, Fraction(0)) for u in ("x", "y", "z")}
            assert all(c.holds(full) for c in constraints)
            assert sat
        else:
            assert not sat

    @given(st.lists(small_constraints(), max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_projection_soundness(self, constraints):
        """Any solution of the original projects into some projected system."""
        sample = sample_solution(constraints)
        if sample is None:
            return
        full = {u: sample.get(u, Fraction(0)) for u in ("x", "y", "z")}
        systems = project(constraints, ["x"])
        assert any(system.holds(full) for system in systems)


class TestCells:
    def test_three_lines_thirteen_cells(self):
        assert count_cells([x, y, x - y]) == 13

    def test_single_polynomial_three_cells(self):
        assert count_cells([x]) == 3

    def test_dependent_polynomials_prune(self):
        # x and 2x have correlated signs: cells where sign(x) ≠ sign(2x)
        # are empty
        assert count_cells([x, 2 * x]) == 3

    def test_cell_sampling_and_membership(self):
        for cell in enumerate_cells([x - 1, y]):
            point = cell.sample()
            assert point is not None
            full = {u: point.get(u, Fraction(0)) for u in ("x", "y")}
            assert cell.contains(full)

    def test_refinement(self):
        cells = list(enumerate_cells([x]))
        finer = list(enumerate_cells([x, x - 1]))
        for fine in finer:
            assert any(fine.refines(coarse) for coarse in cells)

    def test_projection_of_cell(self):
        cell = next(iter(enumerate_cells([x - y])))
        polys = cell.project_polynomials(["x"])
        assert isinstance(polys, list)

    def test_cell_count_within_bound(self):
        from repro.analysis.counting import cell_count_bound

        polys = [x, y, x - y, x + y - 1]
        measured = count_cells(polys)
        assert measured <= cell_count_bound(len(polys), 1, 2)
