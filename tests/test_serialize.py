"""Serialization round-trips (repro.service.serialize).

The batch service ships systems and properties across process boundaries
in canonical dict form, so ``from_dict(to_dict(x))`` must reconstruct an
object that is not just equal-looking but *verifies identically*.
"""

from __future__ import annotations

import pickle

import pytest

from repro.database.fkgraph import SchemaClass
from repro.examples.travel import (
    discount_policy_property_lite,
    travel_booking,
    travel_lite,
)
from repro.logic.conditions import And, Eq, Exists, Not, Or, RelationAtom, TRUE, FALSE
from repro.logic.terms import ANY, Const, NULL, id_var, num_var
from repro.service.serialize import (
    SerializationError,
    canonical_json,
    content_hash,
    from_dict,
    to_dict,
)
from repro.verifier import VerifierConfig, verify
from repro.workloads import table1_workload, table2_workload

ALL_CLASSES = (
    SchemaClass.ACYCLIC,
    SchemaClass.LINEARLY_CYCLIC,
    SchemaClass.CYCLIC,
)

CONFIG = VerifierConfig(km_budget=30_000, time_limit_seconds=60)


def _assert_roundtrip_verifies(has, prop):
    """from_dict(to_dict(·)) verifies identically to the original."""
    has2 = from_dict(to_dict(has))
    prop2 = from_dict(to_dict(prop))
    # canonical form is a fixpoint
    assert canonical_json(to_dict(has2)) == canonical_json(to_dict(has))
    assert canonical_json(to_dict(prop2)) == canonical_json(to_dict(prop))
    original = verify(has, prop, CONFIG)
    rebuilt = verify(has2, prop2, CONFIG)
    assert rebuilt.holds == original.holds
    assert rebuilt.witness_kind == original.witness_kind
    assert [repr(s) for s in rebuilt.witness] == [repr(s) for s in original.witness]


class TestWorkloadRoundTrips:
    @pytest.mark.parametrize("schema_class", ALL_CLASSES, ids=lambda c: c.value)
    @pytest.mark.parametrize("with_sets", (False, True), ids=("flat", "sets"))
    def test_table1(self, schema_class, with_sets):
        spec = table1_workload(schema_class, depth=2, with_sets=with_sets)
        _assert_roundtrip_verifies(spec.has, spec.prop)

    @pytest.mark.parametrize("schema_class", ALL_CLASSES, ids=lambda c: c.value)
    def test_table1_violated(self, schema_class):
        spec = table1_workload(schema_class, depth=2, violated=True)
        _assert_roundtrip_verifies(spec.has, spec.prop)

    @pytest.mark.parametrize("schema_class", ALL_CLASSES, ids=lambda c: c.value)
    def test_table2(self, schema_class):
        spec = table2_workload(schema_class, depth=2)
        _assert_roundtrip_verifies(spec.has, spec.prop)

    def test_table1_with_chain(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2, chain=2)
        _assert_roundtrip_verifies(spec.has, spec.prop)


class TestTravelRoundTrips:
    @pytest.mark.parametrize("fixed", (False, True), ids=("buggy", "fixed"))
    def test_travel_lite(self, fixed):
        has = travel_lite(fixed)
        _assert_roundtrip_verifies(has, discount_policy_property_lite(has))

    def test_travel_full_structure(self):
        """The six-task system round-trips structurally (verification of
        the full policy is beyond unit-test budgets)."""
        has = travel_booking(fixed=False)
        data = to_dict(has)
        has2 = from_dict(data)
        assert canonical_json(to_dict(has2)) == canonical_json(data)
        assert [t.name for t in has2.tasks()] == [t.name for t in has.tasks()]
        for task, task2 in zip(has.tasks(), has2.tasks()):
            assert task2.variables == task.variables
            assert task2.set_variables == task.set_variables
            assert len(task2.services) == len(task.services)
            assert dict(task2.opening.input_map) == dict(task.opening.input_map)
            assert dict(task2.closing.output_map) == dict(task.closing.output_map)


class TestConditionAndTermCoverage:
    def test_terms_and_booleans(self):
        x, y, p = id_var("x"), id_var("y"), num_var("p")
        condition = Or(
            And(Eq(x, y), Not(Eq(p, Const.of(3)))),
            Exists((id_var("q"),), RelationAtom("R", (x, p, id_var("q")))),
            TRUE,
            FALSE,
        )
        rebuilt = from_dict(to_dict(condition))
        assert canonical_json(to_dict(rebuilt)) == canonical_json(to_dict(condition))
        assert rebuilt == condition

    def test_wildcard_and_null(self):
        x = id_var("x")
        atom = RelationAtom("R", (x, ANY, NULL))
        assert from_dict(to_dict(atom)) == atom

    def test_config_roundtrip(self):
        config = VerifierConfig(km_budget=123, time_limit_seconds=4.5)
        rebuilt = from_dict(to_dict(config))
        assert rebuilt == config

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError):
            from_dict({"t": "flux_capacitor"})

    def test_unserializable_object_rejected(self):
        with pytest.raises(SerializationError):
            to_dict(object())


class TestHashing:
    def test_content_hash_is_structural(self):
        a = table1_workload(SchemaClass.ACYCLIC, depth=2)
        b = table1_workload(SchemaClass.ACYCLIC, depth=2)
        assert content_hash(a.has) == content_hash(b.has)

    def test_content_hash_separates(self):
        a = table1_workload(SchemaClass.ACYCLIC, depth=2)
        b = table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True)
        c = table1_workload(SchemaClass.CYCLIC, depth=2)
        assert content_hash(a.prop) != content_hash(b.prop)
        assert content_hash(a.has) != content_hash(c.has)


class TestPickleSafety:
    def test_has_pickles(self):
        """Frozen services carry MappingProxyType; __reduce__ makes whole
        systems picklable for process pools."""
        has = travel_booking(fixed=False)
        clone = pickle.loads(pickle.dumps(has))
        assert clone.name == has.name
        assert [t.name for t in clone.tasks()] == [t.name for t in has.tasks()]
        add_hotel = clone.task("AddHotel")
        assert dict(add_hotel.opening.input_map) == dict(
            has.task("AddHotel").opening.input_map
        )
