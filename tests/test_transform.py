"""Specification transforms: Lemma 30/31 and ∃ desugaring."""

import pytest

from repro.database.schema import DatabaseSchema, Relation, numeric
from repro.errors import SpecificationError
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.restrictions import validate_has
from repro.hltl.formulas import HLTLProperty, HLTLSpec, child, cond
from repro.logic.conditions import And, Eq, Exists, Not, Or, RelationAtom, TRUE
from repro.logic.terms import NULL, id_var, num_var
from repro.ltl.formulas import Always, Eventually
from repro.transform import (
    desugar_exists,
    eliminate_global_variables,
    separate_passed_and_returned,
)
from repro.verifier import VerifierConfig, verify

DB = DatabaseSchema((Relation("ITEMS", (numeric("price"),)),))


def _system_with_child():
    c_x = id_var("c_x")
    p_x = id_var("p_x")
    p_r = id_var("p_r")
    child_task = Task(
        name="C",
        variables=(c_x,),
        services=(InternalService("w", post=Not(Eq(c_x, NULL))),),
        opening=OpeningService(pre=TRUE, input_map={c_x: p_x}),
        closing=ClosingService(pre=Not(Eq(c_x, NULL)), output_map={p_r: c_x}),
    )
    root = Task(
        name="R",
        variables=(p_x, p_r),
        services=(InternalService("reset", post=Eq(p_r, NULL)),),
        children=(child_task,),
    )
    return HAS(DB, root)


class TestGlobalVariables:
    def test_eliminates_globals(self):
        has = _system_with_child()
        g = id_var("g")
        prop = HLTLProperty(
            HLTLSpec(
                "R",
                Always(cond(Not(Eq(id_var("p_r"), g))))
                | Eventually(child("C", cond(Eq(id_var("c_x"), g)))),
            ),
            global_variables=(g,),
        )
        new_has, new_prop = eliminate_global_variables(has, prop)
        assert not new_prop.global_variables
        validate_has(new_has)
        # every task gained one variable carrying g
        for task in new_has.tasks():
            assert any(v.name.endswith("__g_g") for v in task.variables)
        # the transformed property verifies without error
        verify(new_has, new_prop, VerifierConfig(km_budget=20000))

    def test_noop_without_globals(self):
        has = _system_with_child()
        prop = HLTLProperty(HLTLSpec("R", Always(cond(TRUE))))
        same_has, same_prop = eliminate_global_variables(has, prop)
        assert same_has is has and same_prop is prop


class TestSeparation:
    def test_separates_overlap(self):
        """When a parent variable is both passed and returned, Lemma 31(i)
        introduces a checked copy."""
        c_x = id_var("c_x")
        shared = id_var("shared")
        child_task = Task(
            name="C",
            variables=(c_x,),
            services=(InternalService("w", post=Not(Eq(c_x, NULL))),),
            opening=OpeningService(pre=TRUE, input_map={c_x: shared}),
            closing=ClosingService(pre=TRUE, output_map={shared: c_x}),
        )
        root = Task(name="R", variables=(shared,), children=(child_task,))
        has = HAS(DB, root)
        separated = separate_passed_and_returned(has)
        validate_has(separated)
        new_child = separated.task("C")
        passed = set(new_child.opening.input_map.values())
        returned = set(new_child.closing.output_map.keys())
        assert not passed & returned

    def test_noop_when_disjoint(self):
        has = _system_with_child()
        separated = separate_passed_and_returned(has)
        child_task = separated.task("C")
        assert set(child_task.opening.input_map.values()) == {id_var("p_x")}


class TestDesugarExists:
    def test_post_condition_hoisted(self):
        x = id_var("x")
        c = id_var("c")
        p = num_var("p")
        svc = InternalService(
            "pick", post=Exists((c, p), RelationAtom("ITEMS", (c, p)))
        )
        root = Task(name="R", variables=(x,), services=(svc,))
        has = HAS(DB, root)
        flat = desugar_exists(has)
        new_root = flat.root
        assert c in new_root.variables
        assert p in new_root.variables
        post = new_root.service("pick").post
        from repro.has.restrictions import _contains_exists

        assert not _contains_exists(post)
        validate_has(flat)

    def test_desugared_system_verifies_identically(self):
        x = id_var("x")
        c = id_var("c")
        p = num_var("p")
        svc = InternalService(
            "pick",
            post=Exists((c, p), And(RelationAtom("ITEMS", (c, p)), Eq(x, c))),
        )
        root = Task(name="R", variables=(x,), services=(svc,))
        has = HAS(DB, root)
        flat = desugar_exists(has)
        # property: x is always null or an ITEMS id — should hold in both
        prop1 = HLTLProperty(
            HLTLSpec(
                "R",
                Always(cond(Or(Eq(x, NULL), Exists((num_var("q"),), RelationAtom("ITEMS", (x, num_var("q"))))))),
            )
        )
        r1 = verify(has, prop1, VerifierConfig(km_budget=20000))
        r2 = verify(flat, prop1, VerifierConfig(km_budget=20000))
        assert r1.holds == r2.holds is True
