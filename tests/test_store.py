"""The symbolic constraint store: union-find, congruence, anchors, nulls,
numeric constraints, restriction, absorption, canonical keys."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.constraints import Rel
from repro.arith.linexpr import LinExpr
from repro.logic.terms import id_var, num_var
from repro.symbolic.nodes import NULL, Sort
from repro.symbolic.store import ConstraintStore, Inconsistent

x, y, z = id_var("x"), id_var("y"), id_var("z")
a, b = num_var("a"), num_var("b")


@pytest.fixture
def store(travel_schema):
    return ConstraintStore(travel_schema)


class TestEqualities:
    def test_unknown_by_default(self, store):
        assert store.equal(store.node_of(x), store.node_of(y)) is None

    def test_assert_eq(self, store):
        store.assert_eq(store.node_of(x), store.node_of(y))
        assert store.equal(store.node_of(x), store.node_of(y)) is True

    def test_assert_neq(self, store):
        store.assert_neq(store.node_of(x), store.node_of(y))
        assert store.equal(store.node_of(x), store.node_of(y)) is False

    def test_eq_after_neq_inconsistent(self, store):
        store.assert_neq(store.node_of(x), store.node_of(y))
        with pytest.raises(Inconsistent):
            store.assert_eq(store.node_of(x), store.node_of(y))

    def test_transitivity(self, store):
        store.assert_eq(store.node_of(x), store.node_of(y))
        store.assert_eq(store.node_of(y), store.node_of(z))
        assert store.equal(store.node_of(x), store.node_of(z)) is True

    def test_diseq_propagates_through_union(self, store):
        store.assert_neq(store.node_of(x), store.node_of(y))
        store.assert_eq(store.node_of(y), store.node_of(z))
        assert store.equal(store.node_of(x), store.node_of(z)) is False


class TestNullAndAnchors:
    def test_null_assertion(self, store):
        store.assert_null(store.node_of(x))
        assert store.null_status(store.node_of(x)) is True
        assert store.equal(store.node_of(x), NULL) is True

    def test_null_conflicts_with_anchor(self, store):
        store.assert_anchor(store.node_of(x), "FLIGHTS")
        with pytest.raises(Inconsistent):
            store.assert_null(store.node_of(x))

    def test_anchor_conflict(self, store):
        store.assert_anchor(store.node_of(x), "FLIGHTS")
        with pytest.raises(Inconsistent):
            store.assert_anchor(store.node_of(x), "HOTELS")

    def test_different_anchors_imply_disequality(self, store):
        store.assert_anchor(store.node_of(x), "FLIGHTS")
        store.assert_anchor(store.node_of(y), "HOTELS")
        assert store.equal(store.node_of(x), store.node_of(y)) is False

    def test_exclusion_of_all_anchors_inconsistent(self, store):
        store.assert_not_null(store.node_of(x))
        store.exclude_anchor(store.node_of(x), "FLIGHTS")
        with pytest.raises(Inconsistent):
            store.exclude_anchor(store.node_of(x), "HOTELS")

    def test_null_vs_non_null(self, store):
        store.assert_null(store.node_of(x))
        store.assert_not_null(store.node_of(y))
        assert store.equal(store.node_of(x), store.node_of(y)) is False


class TestNavigation:
    def test_navigation_requires_anchor(self, store):
        with pytest.raises(Inconsistent):
            store.nav(store.node_of(x), "price")

    def test_fk_navigation_anchors_target(self, store):
        store.assert_anchor(store.node_of(x), "FLIGHTS")
        hotel = store.nav(store.node_of(x), "comp_hotel_id")
        assert store.anchor_of(hotel) == "HOTELS"
        assert store.null_status(hotel) is False

    def test_congruence_on_union(self, store):
        """The FD chase: equal ids have equal attributes (Definition 15)."""
        store.assert_anchor(store.node_of(x), "FLIGHTS")
        store.assert_anchor(store.node_of(y), "FLIGHTS")
        px = store.nav(store.node_of(x), "comp_hotel_id")
        py = store.nav(store.node_of(y), "comp_hotel_id")
        store.assert_neq(px, py)
        with pytest.raises(Inconsistent):
            store.assert_eq(store.node_of(x), store.node_of(y))

    def test_numeric_congruence(self, store):
        store.assert_anchor(store.node_of(x), "HOTELS")
        store.assert_anchor(store.node_of(y), "HOTELS")
        ux = store.nav(store.node_of(x), "unit_price")
        uy = store.nav(store.node_of(y), "unit_price")
        store.add_linear(LinExpr({ux: 1}, -5), Rel.EQ)   # x.unit = 5
        store.add_linear(LinExpr({uy: 1}, -7), Rel.EQ)   # y.unit = 7
        assert store.is_consistent()
        store.assert_eq(store.node_of(x), store.node_of(y))
        assert not store.is_consistent()


class TestNumeric:
    def test_constraints_checked_lazily(self, store):
        na, nb = store.node_of(a), store.node_of(b)
        store.add_linear(LinExpr({na: 1, nb: -1}), Rel.LT)
        store.add_linear(LinExpr({na: -1, nb: 1}), Rel.LT)
        assert not store.is_consistent()

    def test_numeric_equal_query(self, store):
        na = store.node_of(a)
        store.add_linear(LinExpr({na: 1}, -3), Rel.EQ)
        assert store.equal(na, store.const(3)) is True
        assert store.equal(na, store.const(4)) is False

    def test_numeric_vs_id_never_equal(self, store):
        assert store.equal(store.node_of(a), store.node_of(x)) is False


class TestRebinding:
    def test_rebind_detaches(self, store):
        old = store.node_of(x)
        store.assert_null(old)
        store.rebind_fresh(x)
        assert store.null_status(store.node_of(x)) is None

    def test_pins_survive_rebinding(self, store):
        node = store.node_of(x)
        store.pin(("snap",), node)
        store.rebind_fresh(x)
        assert store.pinned(("snap",)) == store.find(node)
        store.unpin_prefix(("snap",))
        assert store.pinned(("snap",)) is None


class TestCanonicalKey:
    def test_isomorphic_stores_same_key(self, travel_schema):
        s1 = ConstraintStore(travel_schema)
        s2 = ConstraintStore(travel_schema)
        for s in (s1, s2):
            s.assert_anchor(s.node_of(x), "FLIGHTS")
            s.assert_eq(s.nav(s.node_of(x), "comp_hotel_id"), s.node_of(y))
        assert s1.canonical_key() == s2.canonical_key()

    def test_key_distinguishes_facts(self, travel_schema):
        s1 = ConstraintStore(travel_schema)
        s2 = ConstraintStore(travel_schema)
        s1.assert_eq(s1.node_of(x), s1.node_of(y))
        s2.assert_neq(s2.node_of(x), s2.node_of(y))
        assert s1.canonical_key() != s2.canonical_key()

    def test_key_ignores_serial_numbers(self, travel_schema):
        s1 = ConstraintStore(travel_schema)
        s1.fresh(Sort.ID)  # waste a serial
        s1.assert_null(s1.node_of(x))
        s2 = ConstraintStore(travel_schema)
        s2.assert_null(s2.node_of(x))
        assert s1.canonical_key() == s2.canonical_key()


class TestRestrictAbsorb:
    def test_restrict_keeps_input_facts(self, store):
        store.assert_anchor(store.node_of(x), "FLIGHTS")
        price = store.nav(store.node_of(x), "price")
        store.add_linear(LinExpr({price: 1}, -100), Rel.EQ)
        store.assert_null(store.node_of(y))
        restricted = store.restrict([x])
        node = restricted.node_of(x)
        assert restricted.anchor_of(node) == "FLIGHTS"
        new_price = restricted.nav(node, "price")
        assert restricted.equal(new_price, restricted.const(100)) is True
        # y's facts are gone
        assert restricted.null_status(restricted.node_of(y)) is None

    def test_restrict_projects_numeric_links(self, store):
        na, nb = store.node_of(a), store.node_of(b)
        store.add_linear(LinExpr({na: 1, nb: -1}), Rel.LE)  # a ≤ b
        store.add_linear(LinExpr({nb: 1}, -10), Rel.LE)     # b ≤ 10
        restricted = store.restrict([a])
        ra = restricted.node_of(a)
        # a ≤ 10 must survive the projection
        assert not restricted.copy().is_consistent() or True
        restricted.add_linear(LinExpr({ra: 1}, -11), Rel.GE)  # a ≥ 11
        assert not restricted.is_consistent()

    def test_absorb_transfers_structure(self, travel_schema):
        src = ConstraintStore(travel_schema)
        src.assert_anchor(src.node_of(x), "FLIGHTS")
        hotel = src.nav(src.node_of(x), "comp_hotel_id")
        src.assert_eq(hotel, src.node_of(y))
        dst = ConstraintStore(travel_schema)
        w = id_var("w")
        dst.absorb(src, {x: w})
        node = dst.node_of(w)
        assert dst.anchor_of(node) == "FLIGHTS"
        assert dst.anchor_of(dst.nav(node, "comp_hotel_id")) == "HOTELS"

    def test_absorb_into_existing_node(self, travel_schema):
        src = ConstraintStore(travel_schema)
        src.assert_null(src.node_of(x))
        dst = ConstraintStore(travel_schema)
        target = dst.node_of(y)
        dst.assert_not_null(target)
        with pytest.raises(Inconsistent):
            dst.absorb(src, {x: target})


@st.composite
def operations(draw):
    ops = []
    variables = [x, y, z]
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        kind = draw(st.sampled_from(["eq", "neq", "null", "notnull", "anchor"]))
        v1 = draw(st.sampled_from(variables))
        v2 = draw(st.sampled_from(variables))
        rel = draw(st.sampled_from(["FLIGHTS", "HOTELS"]))
        ops.append((kind, v1, v2, rel))
    return ops


class TestStoreProperties:
    @given(operations())
    @settings(max_examples=120, deadline=None)
    def test_equal_is_consistent_three_valued(self, ops):
        """After any op sequence, `equal` never contradicts itself and the
        canonical key is stable under copying."""
        from repro.database.schema import (
            DatabaseSchema,
            Relation,
            foreign_key,
            numeric,
        )

        schema = DatabaseSchema(
            (
                Relation("FLIGHTS", (numeric("price"), foreign_key("h", "HOTELS"))),
                Relation("HOTELS", (numeric("unit_price"),)),
            )
        )
        store = ConstraintStore(schema)
        try:
            for kind, v1, v2, rel in ops:
                if kind == "eq":
                    store.assert_eq(store.node_of(v1), store.node_of(v2))
                elif kind == "neq":
                    store.assert_neq(store.node_of(v1), store.node_of(v2))
                elif kind == "null":
                    store.assert_null(store.node_of(v1))
                elif kind == "notnull":
                    store.assert_not_null(store.node_of(v1))
                else:
                    store.assert_anchor(store.node_of(v1), rel)
        except Inconsistent:
            return
        assert store.is_consistent()
        for v1 in (x, y, z):
            for v2 in (x, y, z):
                verdict = store.equal(store.node_of(v1), store.node_of(v2))
                reverse = store.equal(store.node_of(v2), store.node_of(v1))
                assert verdict == reverse
                if v1 is v2:
                    assert verdict is True
        assert store.copy().canonical_key() == store.canonical_key()
