"""HAS model: tasks, services, hierarchy, and the static validator."""

import pytest

from repro.errors import RestrictionViolation, SpecificationError
from repro.has import (
    HAS,
    ClosingService,
    InternalService,
    OpeningService,
    Task,
    validate_has,
)
from repro.has.services import SetUpdate
from repro.logic.conditions import Eq, TRUE, Not
from repro.logic.terms import NULL, id_var, num_var


def leaf(name, variables, **kwargs):
    return Task(name=name, variables=variables, **kwargs)


class TestTaskSchema:
    def test_set_variables_must_be_id(self):
        x = num_var("x")
        with pytest.raises(SpecificationError):
            Task(name="T", variables=(x,), set_variables=(x,))

    def test_set_variables_must_be_task_variables(self):
        x, y = id_var("x"), id_var("y")
        with pytest.raises(SpecificationError):
            Task(name="T", variables=(x,), set_variables=(y,))

    def test_duplicate_services_rejected(self):
        x = id_var("x")
        s = InternalService("s")
        with pytest.raises(SpecificationError):
            Task(name="T", variables=(x,), services=(s, s))

    def test_depth(self):
        inner = leaf("C", (id_var("c"),))
        outer = Task(name="P", variables=(id_var("p"),), children=(inner,))
        assert outer.depth == 2
        assert inner.depth == 1

    def test_walk_and_lookup(self):
        inner = leaf("C", (id_var("c"),))
        outer = Task(name="P", variables=(id_var("p"),), children=(inner,))
        assert [t.name for t in outer.walk()] == ["P", "C"]
        assert outer.child("C") is inner
        with pytest.raises(SpecificationError):
            outer.child("X")


class TestServiceMaps:
    def test_fin_must_be_one_to_one(self):
        a, b = id_var("a"), id_var("b")
        parent_var = id_var("pv")
        with pytest.raises(SpecificationError):
            OpeningService(input_map={a: parent_var, b: parent_var})

    def test_fin_kind_mismatch(self):
        with pytest.raises(SpecificationError):
            OpeningService(input_map={id_var("a"): num_var("n")})

    def test_fout_kind_mismatch(self):
        with pytest.raises(SpecificationError):
            ClosingService(output_map={id_var("a"): num_var("n")})


class TestHAS(object):
    def _mini(self, travel_schema):
        c_var = id_var("c_x")
        child = Task(
            name="C",
            variables=(c_var,),
            opening=OpeningService(pre=TRUE, input_map={}),
            closing=ClosingService(pre=TRUE, output_map={}),
        )
        root = Task(
            name="R",
            variables=(id_var("r_x"),),
            services=(InternalService("s"),),
            children=(child,),
        )
        return HAS(travel_schema, root)

    def test_parent_lookup(self, travel_schema):
        has = self._mini(travel_schema)
        assert has.parent_of("C").name == "R"
        assert has.parent_of("R") is None

    def test_bottom_up_order(self, travel_schema):
        has = self._mini(travel_schema)
        assert [t.name for t in has.bottom_up()] == ["C", "R"]

    def test_duplicate_task_names_rejected(self, travel_schema):
        child = leaf("R", (id_var("x"),))
        root = Task(name="R", variables=(id_var("y"),), children=(child,))
        with pytest.raises(SpecificationError):
            HAS(travel_schema, root)

    def test_navigation_depth_increases_up_the_tree(self, chain_schema):
        # on a 3-chain F(δ) has room to grow, so h is strictly larger at
        # the parent; on saturated schemas it may only be equal
        has = self._mini(chain_schema)
        assert has.navigation_depth("R") > has.navigation_depth("C")

    def test_navigation_depth_monotone(self, travel_schema):
        has = self._mini(travel_schema)
        assert has.navigation_depth("R") >= has.navigation_depth("C")


class TestValidator:
    def test_variable_disjointness(self, travel_schema):
        shared = id_var("shared")
        child = Task(
            name="C",
            variables=(shared,),
            opening=OpeningService(),
            closing=ClosingService(),
        )
        root = Task(name="R", variables=(shared,), children=(child,))
        has = HAS(travel_schema, root)
        with pytest.raises(SpecificationError, match="disjoint"):
            validate_has(has)

    def test_scope_of_guards(self, travel_schema):
        foreign = id_var("foreign")
        child = Task(
            name="C",
            variables=(id_var("c_x"),),
            opening=OpeningService(pre=Eq(foreign, NULL)),
            closing=ClosingService(),
        )
        root = Task(name="R", variables=(id_var("r_x"),), children=(child,))
        has = HAS(travel_schema, root)
        with pytest.raises(SpecificationError, match="out-of-scope"):
            validate_has(has)

    def test_restriction_3(self, travel_schema):
        r_in = id_var("r_in")
        c_x = id_var("c_x")
        child = Task(
            name="C",
            variables=(c_x,),
            opening=OpeningService(pre=TRUE, input_map={c_x: r_in}),
            closing=ClosingService(pre=TRUE, output_map={r_in: c_x}),
        )
        root = Task(
            name="R",
            variables=(r_in,),
            opening=OpeningService(pre=TRUE, input_map={r_in: r_in}),
            children=(child,),
        )
        has = HAS(travel_schema, root)
        with pytest.raises(RestrictionViolation) as excinfo:
            validate_has(has)
        assert excinfo.value.restriction == 3

    def test_set_update_requires_set(self, travel_schema):
        root = Task(
            name="R",
            variables=(id_var("x"),),
            services=(InternalService("s", update=SetUpdate.INSERT),),
        )
        has = HAS(travel_schema, root)
        with pytest.raises(SpecificationError, match="artifact relation"):
            validate_has(has)

    def test_lemma31_strict_mode(self, travel_schema):
        passed = id_var("r_p")
        c_x = id_var("c_x")
        child = Task(
            name="C",
            variables=(c_x,),
            opening=OpeningService(pre=TRUE, input_map={c_x: passed}),
            closing=ClosingService(pre=TRUE, output_map={passed: c_x}),
        )
        root = Task(name="R", variables=(passed,), children=(child,))
        has = HAS(travel_schema, root)
        validate_has(has)  # fine without strictness
        with pytest.raises(SpecificationError, match="Lemma 31"):
            validate_has(has, require_simplified=True)

    def test_travel_examples_validate(self):
        from repro.examples.travel import travel_booking, travel_lite

        for fixed in (False, True):
            validate_has(travel_booking(fixed=fixed))
            validate_has(travel_lite(fixed=fixed))
