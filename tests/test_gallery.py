"""The shipped ``.has`` scenario gallery (``src/repro/workloads/gallery``).

Acceptance criteria for every gallery scenario:

* it parses and statically validates;
* its pretty-printed form is a parse fixed point;
* it loads to the same job content hash as its serialized-dict form;
* it verifies to the verdict its ``expect:`` documents (and every
  violated verdict carries a confirmed concrete witness).
"""

from __future__ import annotations

import pytest

from repro.dsl import load_directory, load_document, loads, render_document
from repro.service.cli import main as cli_main
from repro.service.jobs import (
    STATUS_BUDGET_EXCEEDED,
    STATUS_HOLDS,
    STATUS_VIOLATED,
    VerificationJob,
)
from repro.service.pool import execute_job
from repro.service.serialize import canonical_json, from_dict, to_dict
from repro.service.suites import build_suite, gallery_dir, suite_names
from repro.verifier.config import VerifierConfig

GALLERY = sorted(gallery_dir().glob("*.has"))

_EXPECT_TO_STATUS = {
    "holds": STATUS_HOLDS,
    "violated": STATUS_VIOLATED,
    "budget_exceeded": STATUS_BUDGET_EXCEEDED,
}


def test_gallery_exists_and_is_substantial():
    assert len(GALLERY) >= 8, "the gallery ships at least eight scenarios"


@pytest.mark.parametrize("path", GALLERY, ids=lambda p: p.stem)
class TestGalleryScenario:
    def test_parses_and_validates(self, path):
        doc = load_document(path)
        assert doc.properties, f"{path.name} declares no properties"
        for entry in doc.properties:
            assert entry.expect is not None, (
                f"{path.name}: gallery scenarios document their verdicts"
            )

    def test_pretty_print_is_parse_fixed_point(self, path):
        doc = load_document(path)
        text = render_document(doc)
        again = loads(text, source=f"{path.name}#reprinted")
        assert render_document(again) == text
        assert canonical_json(to_dict(again.system)) == canonical_json(
            to_dict(doc.system)
        )

    def test_same_job_hash_as_dict_form(self, path):
        doc = load_document(path)
        for job in doc.jobs():
            rebuilt = VerificationJob(
                has=from_dict(to_dict(job.has)),
                prop=from_dict(to_dict(job.prop)),
                config=from_dict(to_dict(job.config)),
            )
            assert rebuilt.key() == job.key()

    def test_verifies_to_documented_verdict(self, path):
        doc = load_document(path)
        config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
        for entry, job in zip(doc.properties, doc.jobs(config)):
            outcome = execute_job(job)
            expected = _EXPECT_TO_STATUS[entry.expect]
            assert outcome.status == expected, (
                f"{path.name}::{entry.prop.name}: documented {entry.expect}, "
                f"got {outcome.status} ({outcome.error})"
            )
            if outcome.status == STATUS_VIOLATED:
                assert outcome.witness_json is not None
                assert outcome.witness_json.get("status") == "confirmed", (
                    f"{path.name}::{entry.prop.name}: violated without a "
                    f"confirmed concrete witness"
                )


class TestGallerySuite:
    def test_registered_as_named_suite(self):
        assert "gallery" in suite_names()
        jobs = build_suite("gallery")
        docs = load_directory(gallery_dir())
        assert len(jobs) == sum(len(d.properties) for d in docs)
        assert len({job.key() for job in jobs}) == len(jobs)

    def test_quick_flag_is_identity_for_gallery(self):
        assert [j.key() for j in build_suite("gallery", quick=True)] == [
            j.key() for j in build_suite("gallery")
        ]

    def test_mixed_suite_includes_gallery(self):
        mixed = {job.key() for job in build_suite("mixed")}
        assert {job.key() for job in build_suite("gallery")} <= mixed

    def test_directory_path_suite(self):
        jobs = build_suite(str(gallery_dir()))
        assert [j.key() for j in jobs] == [j.key() for j in build_suite("gallery")]

    def test_single_file_suite(self):
        path = gallery_dir() / "ticketing_escalation.has"
        jobs = build_suite(str(path))
        assert len(jobs) == 2

    def test_budget_boxed_scenario_keeps_its_own_config(self):
        # the suite default must not undo the file's tight budget
        jobs = build_suite("gallery", config=VerifierConfig(km_budget=60_000))
        boxed = [j for j in jobs if j.name.startswith("payroll_budget")]
        assert boxed and boxed[0].config.km_budget == 40

    def test_budget_expectation_is_enforced_not_just_documented(self):
        # if the boxed scenario ever finishes within budget, the batch
        # must flag it UNEXPECTED — expect: budget_exceeded is a promise
        import dataclasses

        from repro.service.runner import run_batch

        job = next(
            j
            for j in build_suite("gallery")
            if j.name.startswith("payroll_budget")
        )
        assert job.expected_status == STATUS_BUDGET_EXCEEDED
        boxed_report = run_batch([job], cache=None)
        assert not boxed_report.unexpected
        unboxed = dataclasses.replace(
            job, config=dataclasses.replace(job.config, km_budget=60_000)
        )
        unboxed_report = run_batch([unboxed], cache=None)
        assert unboxed_report.outcomes[0].status == STATUS_HOLDS
        assert unboxed_report.unexpected, (
            "a budget-boxed scenario that finished within budget must be "
            "reported as UNEXPECTED"
        )

    def test_unknown_suite_name_still_raises(self):
        with pytest.raises(KeyError):
            build_suite("no-such-suite")
        with pytest.raises(KeyError):
            build_suite("no/such/dir.has")


class TestGalleryDocs:
    def test_docs_table_matches_the_gallery(self):
        """docs/dsl.md's gallery catalog is generated — any gallery
        change must rerun ``gallery_index.update_docs()``."""
        from repro.workloads.gallery_index import (
            BEGIN_MARKER,
            END_MARKER,
            docs_path,
            render_gallery_table,
        )

        text = docs_path().read_text()
        begin = text.index(BEGIN_MARKER) + len(BEGIN_MARKER)
        end = text.index(END_MARKER)
        checked_in = text[begin:end].strip("\n")
        assert checked_in == render_gallery_table(), (
            "docs/dsl.md gallery table drifted — regenerate with "
            "python -c 'from repro.workloads.gallery_index import "
            "update_docs; update_docs()'"
        )

    def test_promoted_scenarios_are_substantial(self):
        promoted = [p for p in GALLERY if p.stem.startswith("fuzzed_")]
        assert len(promoted) >= 50, (
            "the coverage-promoted survivor set shrank below the "
            "100+-scenario contract's margin"
        )


class TestGalleryCli:
    def test_suite_gallery_smoke(self, capsys, tmp_path):
        jsonl = tmp_path / "gallery.jsonl"
        code = cli_main(
            ["suite", "gallery", "--no-cache", "--jsonl", str(jsonl)]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 errors" in out
        assert jsonl.exists()

    def test_verify_has_file_exit_codes(self, capsys):
        holds = gallery_dir() / "loan_approval.has"
        assert cli_main(["verify", str(holds)]) == 0
        violated = gallery_dir() / "order_fulfillment.has"
        assert cli_main(["verify", str(violated)]) == 1
        boxed = gallery_dir() / "payroll_budget.has"
        assert cli_main(["verify", str(boxed)]) == 2
        capsys.readouterr()

    def test_verify_multi_property_file_needs_selector(self, capsys):
        path = gallery_dir() / "ticketing_escalation.has"
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["verify", str(path)])
        assert excinfo.value.code == 2
        assert "pick one with" in capsys.readouterr().err
        assert cli_main(["verify", f"{path}::picked_ticket_exists"]) == 0
        assert cli_main(["verify", f"{path}::severity_bounded"]) == 1
        capsys.readouterr()

    def test_verify_unknown_property_selector(self, capsys):
        path = gallery_dir() / "ticketing_escalation.has"
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["verify", f"{path}::nope"])
        assert excinfo.value.code == 2
        assert "no property 'nope'" in capsys.readouterr().err

    def test_verify_missing_file(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["verify", "does-not-exist.has"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_explain_gallery_violation_is_confirmed(self, capsys):
        path = gallery_dir() / "insurance_claim.has"
        code = cli_main(["explain", str(path)])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "confirmed" in out

    def test_suite_parse_error_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.has"
        bad.write_text("system oops {")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["suite", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "broken.has" in capsys.readouterr().err

    def test_propertyless_scenario_fails_suite_not_silently_green(
        self, tmp_path, capsys
    ):
        # a deleted property block must not turn a suite smoke green
        empty = tmp_path / "empty.has"
        empty.write_text(
            "system s { schema { relation R(a: num) } task T { vars x: id } }\n"
        )
        for target in (str(empty), str(tmp_path)):
            with pytest.raises(SystemExit) as excinfo:
                cli_main(["suite", target])
            assert excinfo.value.code == 2
            assert "declares no properties" in capsys.readouterr().err

    def test_json_job_file_with_has_in_name_routes_as_json(
        self, tmp_path, capsys
    ):
        # ".has" substring in a .json path must not hijack the target
        import json

        doc = load_document(gallery_dir() / "loan_approval.has")
        payload = doc.jobs()[0].payload()
        job_file = tmp_path / "my.has.json"
        job_file.write_text(json.dumps(payload))
        assert cli_main(["verify", str(job_file)]) == 0
        capsys.readouterr()
