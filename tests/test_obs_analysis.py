"""The analysis layer on top of the trace substrate: search-cost
attribution, standard-format exports (Chrome trace-event / speedscope),
and the cross-run history ledger.

The attribution contract mirrors the tracer's: always on, semantically
invisible (A/B-tested with the registry disabled), and — minus its
sampled-seconds fields — deterministic across runs and PYTHONHASHSEED
values.  The exporters are pure functions of the parsed event list, so
golden files in ``tests/golden/`` pin their exact output bytes.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.examples.travel import discount_policy_property_lite, travel_lite
from repro.obs import trace
from repro.obs.attribution import (
    ATTRIBUTION,
    UNATTRIBUTED,
    AttributionRegistry,
    merge_attribution,
)
from repro.obs.export import (
    MAIN_PID,
    WORKERS_PID,
    export_trace,
    to_chrome,
    to_speedscope,
)
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    LEDGER_NAME,
    append_history,
    load_history,
    render_trends,
    suite_fingerprint,
    trends,
)
from repro.obs.report import render, scrub_event, summarize
from repro.service.jobs import VerificationJob
from repro.verifier.config import VerifierConfig

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _tracer_off():
    """Every test starts and ends with the tracer inactive."""
    trace.stop()
    yield
    trace.stop()


def _tag(task, service):
    """A StepTag-shaped object (duck typing is the registry's contract)."""
    return SimpleNamespace(task=task, service=service)


def _lite_job(name="lite"):
    has = travel_lite(False)
    return VerificationJob(
        has=has,
        prop=discount_policy_property_lite(has),
        config=VerifierConfig(km_budget=60_000),
        name=name,
    )


# ======================================================================
# the attribution registry (unit)
# ======================================================================
class TestAttributionRegistry:
    def test_expansions_and_successors_by_key(self):
        reg = AttributionRegistry()
        reg.record_expansion(_tag("T", "T.svc"), depth=2)
        reg.record_expansion(_tag("T", "T.svc"), depth=4)
        reg.record_successor(_tag("T", "T.svc"))
        reg.record_expansion(None, depth=0)  # root node: no tag
        snap = reg.snapshot()
        assert set(snap) == {"'T.svc'", UNATTRIBUTED[1]}
        entry = snap["'T.svc'"]
        assert entry["task"] == "T"
        assert entry["expansions"] == 2
        assert entry["successors"] == 1
        assert entry["depth_sum"] == 6
        assert snap[UNATTRIBUTED[1]]["expansions"] == 1

    def test_foreign_tags_fall_into_unattributed(self):
        reg = AttributionRegistry()
        reg.record_expansion("opaque string tag", depth=1)
        reg.record_expansion(SimpleNamespace(task="T"), depth=1)  # no service
        assert set(reg.snapshot()) == {UNATTRIBUTED[1]}
        assert reg.snapshot()[UNATTRIBUTED[1]]["expansions"] == 2

    def test_snapshot_keys_sorted(self):
        reg = AttributionRegistry()
        for service in ("zz", "aa", "mm"):
            reg.record_expansion(_tag("T", service), depth=0)
        assert list(reg.snapshot()) == ["'aa'", "'mm'", "'zz'"]

    def test_phase_samples_credited_to_context(self):
        reg = AttributionRegistry()
        reg._on_phase_sample("fm", 0.5)  # no context: dropped
        reg.set_context("T", "T.svc")
        reg._on_phase_sample("fm", 0.25)
        reg._on_phase_sample("canon", 0.125)
        reg._on_phase_sample("expand", 9.0)  # only fm/canon are credited
        reg.clear_context()
        reg._on_phase_sample("fm", 0.5)  # context cleared: dropped
        (entry,) = reg.snapshot().values()
        assert entry["fm_sampled_seconds"] == pytest.approx(0.25)
        assert entry["fm_samples"] == 1
        assert entry["canon_sampled_seconds"] == pytest.approx(0.125)
        assert entry["canon_samples"] == 1

    def test_disabled_registry_records_nothing(self):
        reg = AttributionRegistry()
        reg.enabled = False
        reg.record_expansion(_tag("T", "s"), depth=1)
        reg.record_successor(_tag("T", "s"))
        reg.set_context("T", "s")
        reg._on_phase_sample("fm", 1.0)
        assert reg.snapshot() == {}

    def test_since_reports_deltas_and_drops_idle_rows(self):
        reg = AttributionRegistry()
        reg.record_expansion(_tag("A", "a"), depth=1)
        reg.record_expansion(_tag("B", "b"), depth=1)
        baseline = reg.snapshot()
        reg.record_expansion(_tag("B", "b"), depth=3)
        delta = reg.since(baseline)
        assert list(delta) == ["'b'"]  # 'a' saw no activity in the window
        assert delta["'b'"]["expansions"] == 1
        assert delta["'b'"]["depth_sum"] == 3
        assert delta["'b'"]["task"] == "B"

    def test_merge_attribution_accumulates(self):
        into: dict = {}
        delta = {
            "'s'": {
                "task": "T", "expansions": 2, "successors": 3,
                "depth_sum": 4, "fm_sampled_seconds": 0.5, "fm_samples": 1,
                "canon_sampled_seconds": 0.0, "canon_samples": 0,
            }
        }
        merge_attribution(into, delta)
        merge_attribution(into, delta)
        assert into["'s'"]["expansions"] == 4
        assert into["'s'"]["fm_sampled_seconds"] == pytest.approx(1.0)
        assert into["'s'"]["task"] == "T"
        merge_attribution(into, "not a dict")  # defensive: ignored
        merge_attribution(into, {"'s'": "not a dict"})
        assert into["'s'"]["expansions"] == 4

    def test_scrub_drops_sampled_seconds_keeps_counts(self):
        record = {
            "ev": "job_finish",
            "attribution": {
                "'s'": {
                    "task": "T", "expansions": 5, "successors": 7,
                    "depth_sum": 9, "fm_sampled_seconds": 0.1,
                    "fm_samples": 2, "canon_sampled_seconds": 0.2,
                    "canon_samples": 1,
                }
            },
        }
        scrubbed = scrub_event(record)
        entry = scrubbed["attribution"]["'s'"]
        assert "fm_sampled_seconds" not in entry
        assert "canon_sampled_seconds" not in entry
        assert entry["expansions"] == 5 and entry["depth_sum"] == 9


# ======================================================================
# attribution end to end: the ≥95% bar and the invisibility A/B
# ======================================================================
def _semantic_outcome(job):
    from repro.service.pool import execute_job

    outcome = execute_job(job)
    return outcome.semantic_bytes(), outcome.key


def _gallery_job():
    from repro.dsl import load_document

    gallery = (
        Path(__file__).parent.parent
        / "src" / "repro" / "workloads" / "gallery"
    )
    doc = load_document(gallery / "library_loans.has")
    return doc.jobs(default_config=VerifierConfig(km_budget=60_000))[0]


def _traced_job_finish(make_job):
    # start cold: node serials restart per store, so global cache entries
    # left by earlier tests can collide and legitimately short-circuit
    # parts of the exploration, shrinking the expansion counts this
    # helper measures (same cold-start rule as repro.perf.bench)
    from repro.arith import fm
    from repro.symbolic import store as symbolic_store

    fm.clear_caches()
    symbolic_store.clear_canonical_caches()
    sink = io.StringIO()
    trace.start(sink)
    try:
        _semantic_outcome(make_job())
    finally:
        trace.stop()
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    return next(e for e in events if e["ev"] == "job_finish")


class TestAttributionEndToEnd:
    def test_travel_lite_attribution_share(self):
        """The acceptance bar: ≥95% of expansions attributed to named
        (task, service) pairs; the remainder are exploration roots."""
        attribution = _traced_job_finish(_lite_job)["attribution"]
        total = sum(e["expansions"] for e in attribution.values())
        unattributed = attribution.get(UNATTRIBUTED[1], {}).get("expansions", 0)
        assert total > 0
        assert (total - unattributed) / total >= 0.95
        for label, entry in attribution.items():
            if label != UNATTRIBUTED[1]:
                assert entry["task"], f"attributed row {label} names no task"

    def test_attribution_counts_deterministic_across_runs(self):
        """Expansion/successor/depth counts never depend on timing; only
        the sampled-seconds channels carry wall-clock noise (and the
        sampling schedule's in-process position)."""

        def counts(finish):
            return {
                label: (e["task"], e["expansions"], e["successors"],
                        e["depth_sum"])
                for label, e in finish["attribution"].items()
            }

        first = counts(_traced_job_finish(_lite_job))
        second = counts(_traced_job_finish(_lite_job))
        assert first == second and first

    @pytest.mark.parametrize(
        "make_job", [_lite_job, _gallery_job], ids=["travel-lite", "gallery"]
    )
    def test_disabled_registry_parity(self, make_job):
        """The A/B contract for the new instrumentation: verdict, witness,
        KM counts, job hash, and semantic bytes are byte-identical with
        the attribution registry on or off."""
        enabled, key_on = _semantic_outcome(make_job())
        ATTRIBUTION.enabled = False
        try:
            disabled, key_off = _semantic_outcome(make_job())
        finally:
            ATTRIBUTION.enabled = True
        assert key_off == key_on
        assert disabled == enabled

    def test_report_renders_hotspot_table(self):
        finish = _traced_job_finish(_lite_job)
        summary = summarize([finish])
        text = render(summary)
        assert "search hotspots (by construct):" in text
        assert "attributed" in text and "(task, service) pairs" in text


_ATTR_SCRIPT = """\
import io, json
from repro.examples.travel import travel_lite, discount_policy_property_lite
from repro.obs import trace
from repro.obs.report import scrub_event
from repro.service.jobs import VerificationJob
from repro.service.pool import execute_job
from repro.verifier.config import VerifierConfig

sink = io.StringIO()
trace.start(sink)
has = travel_lite(False)
job = VerificationJob(
    has=has,
    prop=discount_policy_property_lite(has),
    config=VerifierConfig(km_budget=60_000),
    name="lite",
)
execute_job(job)
trace.stop()
for line in sink.getvalue().splitlines():
    record = json.loads(line)
    if record.get("ev") == "job_finish":
        print(json.dumps(scrub_event(record)["attribution"], sort_keys=True))
"""


@pytest.mark.slow
def test_attribution_is_hash_seed_independent():
    """The scrubbed attribution table (labels, counts, depths, sample
    counts — everything but raw seconds) is byte-stable across
    PYTHONHASHSEED values."""
    outputs = set()
    for seed in ("0", "1", "4242"):
        result = subprocess.run(
            [sys.executable, "-c", _ATTR_SCRIPT],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).parent.parent),
            check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1, "hash-seed-dependent attribution table"


# ======================================================================
# exports: synthetic traces with fixed timestamps
# ======================================================================
def _synthetic_serial_events():
    """A two-job serial suite with nested spans and fixed times — the
    golden-file fixture (regenerate with ``tests/golden/regen.py``)."""
    return [
        {"ev": "suite_start", "t": 0.0, "total": 2, "workers": 1},
        {"ev": "job_start", "t": 0.05, "name": "alpha", "key": "k-alpha"},
        {"ev": "span", "t": 0.1, "dur": 0.2, "name": "explore",
         "what": "root search", "km_nodes": 1000},
        {"ev": "km_progress", "t": 0.3, "label": "root search",
         "nodes": 1000, "frontier": 40},
        {"ev": "span", "t": 0.06, "dur": 0.4, "name": "verify",
         "property": "p1",
         "phases": {"expand": {"calls": 10, "timed": 10, "seconds": 0.3},
                    "fm": {"calls": 100, "timed": 20, "seconds": 0.04}}},
        {"ev": "job_finish", "t": 0.5, "name": "alpha", "key": "k-alpha",
         "status": "holds", "km_nodes": 1000, "wall_seconds": 0.45,
         "total_seconds": 0.45,
         "phases": {"expand": {"calls": 10, "timed": 10, "seconds": 0.3},
                    "fm": {"calls": 100, "timed": 20, "seconds": 0.04}},
         "attribution": {"'T.s'": {"task": "T", "expansions": 990,
                                   "successors": 1200, "depth_sum": 5000,
                                   "fm_sampled_seconds": 0.01,
                                   "fm_samples": 20,
                                   "canon_sampled_seconds": 0.0,
                                   "canon_samples": 0}}},
        {"ev": "job_start", "t": 0.55, "name": "beta", "key": "k-beta"},
        {"ev": "job_finish", "t": 0.9, "name": "beta", "key": "k-beta",
         "status": "violated", "km_nodes": 300, "wall_seconds": 0.35,
         "total_seconds": 0.35},
        {"ev": "suite_done", "t": 0.95, "total": 2, "cache_hits": 0,
         "violations": 1, "budget_exceeded": 0, "errors": 0,
         "wall_seconds": 0.9},
    ]


def _synthetic_parallel_events():
    """A two-worker suite: job starts never reach the parent's trace, so
    lanes are reconstructed from submit/finish intervals."""
    return [
        {"ev": "suite_start", "t": 0.0, "total": 2, "workers": 2},
        {"ev": "job_submit", "t": 0.01, "name": "alpha", "key": "k-alpha"},
        {"ev": "job_submit", "t": 0.02, "name": "beta", "key": "k-beta"},
        {"ev": "job_finish", "t": 0.61, "name": "alpha", "key": "k-alpha",
         "status": "holds", "km_nodes": 10, "wall_seconds": 0.58,
         "total_seconds": 0.58},
        {"ev": "job_finish", "t": 0.66, "name": "beta", "key": "k-beta",
         "status": "holds", "km_nodes": 12, "wall_seconds": 0.62,
         "total_seconds": 0.62},
        {"ev": "suite_done", "t": 0.7, "total": 2, "cache_hits": 0,
         "violations": 0, "budget_exceeded": 0, "errors": 0,
         "wall_seconds": 0.7},
    ]


class TestChromeExport:
    def test_structure_and_monotonic_timestamps(self):
        document = to_chrome(_synthetic_serial_events())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        timed = [e for e in events if e["ph"] != "M"]
        # metadata first, then the timed events in timestamp order
        assert events[: len(meta)] == meta
        assert all(isinstance(e["ts"], int) for e in timed)
        assert [e["ts"] for e in timed] == sorted(e["ts"] for e in timed)
        names = {e["name"] for e in timed if e["ph"] == "X"}
        assert {"verify", "explore", "alpha", "beta"} <= names
        assert all(e["pid"] == MAIN_PID for e in timed)  # serial: one track
        spans = {e["name"]: e for e in timed if e["ph"] == "X"}
        assert isinstance(spans["verify"]["dur"], int)
        # instants carry scope "t" and their record fields under args
        instants = {e["name"]: e for e in timed if e["ph"] == "i"}
        assert {"suite_start", "km_progress", "suite_done"} <= set(instants)
        assert instants["km_progress"]["s"] == "t"
        assert instants["km_progress"]["args"]["nodes"] == 1000

    def test_lossless_args(self):
        """Every field the mapping doesn't consume rides along in args."""
        document = to_chrome(_synthetic_serial_events())
        alpha = next(
            e for e in document["traceEvents"]
            if e.get("cat") == "job" and e["name"] == "alpha"
        )
        assert alpha["args"]["status"] == "holds"
        assert alpha["args"]["km_nodes"] == 1000
        assert alpha["args"]["attribution"]["'T.s'"]["expansions"] == 990

    def test_worker_lane_mapping(self):
        document = to_chrome(_synthetic_parallel_events())
        events = document["traceEvents"]
        jobs = [e for e in events if e.get("cat") == "job"]
        assert all(e["pid"] == WORKERS_PID for e in jobs)
        # the intervals overlap, so the two jobs land on distinct lanes
        assert {e["tid"] for e in jobs} == {1, 2}
        lanes = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == WORKERS_PID
        }
        assert lanes == {1: "worker lane 1", 2: "worker lane 2"}
        process = next(
            e for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
            and e["pid"] == WORKERS_PID
        )
        assert process["args"]["name"] == "repro workers"
        # reconstructed starts: finish.t - total_seconds, clamped to submit
        alpha = next(e for e in jobs if e["name"] == "alpha")
        assert alpha["ts"] == 30_000  # max(0.61 - 0.58, 0.01) = 0.03 s
        assert alpha["dur"] == 580_000

    def test_golden_file(self, tmp_path):
        out = tmp_path / "trace.chrome.json"
        export_trace(_synthetic_serial_events(), "chrome", out)
        golden = GOLDEN / "trace_serial.chrome.json"
        assert out.read_text() == golden.read_text()


class TestSpeedscopeExport:
    def test_profiles_structure(self):
        document = to_speedscope(_synthetic_serial_events())
        assert document["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        frames = [f["name"] for f in document["shared"]["frames"]]
        assert "verify: p1" in frames
        assert "explore: root search" in frames
        assert "phase: expand" in frames and "phase: fm" in frames
        evented, sampled = document["profiles"]
        assert evented["type"] == "evented"
        assert sampled["type"] == "sampled"
        # open/close balance and monotonically non-decreasing times
        opens = [e for e in evented["events"] if e["type"] == "O"]
        closes = [e for e in evented["events"] if e["type"] == "C"]
        assert len(opens) == len(closes) == 2
        ats = [e["at"] for e in evented["events"]]
        assert ats == sorted(ats)
        assert evented["endValue"] >= max(ats)
        # sampled weights are the estimated per-phase seconds:
        # fm is sampled 20/100, so 0.04 s scales to 0.2 s
        weight_of = {
            document["shared"]["frames"][s[0]]["name"]: w
            for s, w in zip(sampled["samples"], sampled["weights"])
        }
        assert weight_of["phase: expand"] == pytest.approx(0.3)
        assert weight_of["phase: fm"] == pytest.approx(0.2)

    def test_nesting_is_well_formed(self):
        """explore (0.1–0.3) nests inside verify (0.06–0.46): the close
        events must unwind the stack in order."""
        document = to_speedscope(_synthetic_serial_events())
        evented = document["profiles"][0]
        frames = document["shared"]["frames"]
        sequence = [
            (e["type"], frames[e["frame"]]["name"]) for e in evented["events"]
        ]
        assert sequence == [
            ("O", "verify: p1"),
            ("O", "explore: root search"),
            ("C", "explore: root search"),
            ("C", "verify: p1"),
        ]

    def test_golden_file(self, tmp_path):
        out = tmp_path / "trace.speedscope.json"
        export_trace(_synthetic_serial_events(), "speedscope", out)
        golden = GOLDEN / "trace_serial.speedscope.json"
        assert out.read_text() == golden.read_text()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown export format"):
            export_trace([], "perf", tmp_path / "x")


# ======================================================================
# the history ledger
# ======================================================================
def _ledger_record(wall, km, key="k1", counters=None, label=""):
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "suite": suite_fingerprint([key]),
        "label": label,
        "jobs": [{"name": "j", "key": key, "status": "holds",
                  "km_nodes": km, "wall_seconds": wall,
                  "total_seconds": wall}],
        "wall_seconds": wall,
        "events": 10,
        "counters": counters or {},
        "phases": {},
        "attribution": {},
        "recorded_unix": 0,
    }


class TestHistoryLedger:
    def test_fingerprint_order_and_name_independent(self):
        assert suite_fingerprint(["a", "b"]) == suite_fingerprint(["b", "a"])
        assert suite_fingerprint(["a"]) != suite_fingerprint(["a", "b"])

    def test_append_load_roundtrip(self, tmp_path):
        events = _synthetic_serial_events()
        record = append_history(events, tmp_path / "ledger", label="r1")
        append_history(events, tmp_path / "ledger", label="r2")
        assert (tmp_path / "ledger" / LEDGER_NAME).exists()
        records = load_history(tmp_path / "ledger")
        assert [r["label"] for r in records] == ["r1", "r2"]
        assert records[0]["suite"] == record["suite"]
        assert [j["name"] for j in records[0]["jobs"]] == ["alpha", "beta"]
        assert records[0]["jobs"][0]["km_nodes"] == 1000

    def test_load_missing_dir_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nowhere") == []

    def test_load_rejects_corrupt_and_skips_newer_schema(self, tmp_path):
        ledger_dir = tmp_path / "ledger"
        ledger_dir.mkdir()
        ledger = ledger_dir / LEDGER_NAME
        newer = dict(
            _ledger_record(1.0, 5),
            schema_version=HISTORY_SCHEMA_VERSION + 1,
        )
        ledger.write_text(
            json.dumps(_ledger_record(1.0, 5)) + "\n"
            + json.dumps(newer) + "\n"
        )
        assert len(load_history(ledger_dir)) == 1  # newer major skipped
        ledger.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=f"{LEDGER_NAME}:1"):
            load_history(ledger_dir)  # line 1: no schema_version

    def test_no_drift_on_stable_ledger(self):
        records = [_ledger_record(1.0, 100) for _ in range(3)]
        analysis = trends(records)
        assert analysis["runs"] == 3
        assert analysis["flags"] == []
        (job,) = analysis["jobs"]
        assert job["wall_change"] == pytest.approx(0.0)
        assert "no drift against the ledger median" in render_trends(records)

    def test_wall_drift_flagged_beyond_25_percent(self):
        records = [_ledger_record(1.0, 100) for _ in range(3)]
        records.append(_ledger_record(1.5, 100))
        analysis = trends(records)
        (job,) = analysis["jobs"]
        assert job["wall_drift"] and job["wall_change"] == pytest.approx(0.5)
        assert any("wall +50%" in flag for flag in analysis["flags"])
        assert "WALL DRIFT" in render_trends(records)
        # ±20% is noise, not drift
        records[-1] = _ledger_record(1.2, 100)
        assert trends(records)["flags"] == []

    def test_km_drift_on_identical_inputs_flagged(self):
        records = [_ledger_record(1.0, 100), _ledger_record(1.0, 101)]
        analysis = trends(records)
        assert analysis["jobs"][0]["km_drift"]
        assert any("deterministic" in flag for flag in analysis["flags"])
        assert "KM DRIFT" in render_trends(records)

    def test_changed_key_exempts_from_drift(self):
        records = [
            _ledger_record(1.0, 100, key="k1"),
            _ledger_record(9.0, 999, key="k2"),  # new content: all bets off
        ]
        analysis = trends(records)
        assert analysis["jobs"][0].get("content_changed")
        assert analysis["flags"] == []
        assert "(content changed)" in render_trends(records)

    def test_hit_rate_drop_flagged(self):
        warm = {"fm_sat_hits": 9, "fm_sat_misses": 1}
        cold = {"fm_sat_hits": 5, "fm_sat_misses": 5}
        records = [
            _ledger_record(1.0, 100, counters=warm),
            _ledger_record(1.0, 100, counters=warm),
            _ledger_record(1.0, 100, counters=cold),
        ]
        analysis = trends(records)
        assert any("fm_sat" in flag for flag in analysis["flags"])
        assert "cache hit-rate drift" in render_trends(records)
        # a rate *rise* is not drift
        records[-1] = _ledger_record(
            1.0, 100, counters={"fm_sat_hits": 10, "fm_sat_misses": 0}
        )
        assert trends(records)["flags"] == []

    def test_empty_ledger_renders_no_runs(self):
        assert trends([])["runs"] == 0
        assert render_trends([]) == "history: no runs recorded"


# ======================================================================
# CLI: the new report flags end to end
# ======================================================================
class TestCliAnalysis:
    def _main(self, argv, capsys):
        from repro.service.cli import main

        try:
            code = main(argv)
        except SystemExit as exc:
            code = exc.code
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def _trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code, _out, _err = self._main(
            ["verify", "travel-lite-fixed", "--trace", str(path)], capsys
        )
        assert code == 0
        return path

    def test_report_shows_hotspots(self, tmp_path, capsys):
        trace_path = self._trace(tmp_path, capsys)
        code, out, _err = self._main(["report", str(trace_path)], capsys)
        assert code == 0
        assert "search hotspots (by construct):" in out
        code, out, _err = self._main(
            ["report", str(trace_path), "--json"], capsys
        )
        assert code == 0
        data = json.loads(out)
        total = sum(
            e["expansions"] for e in data["attribution"].values()
        )
        assert total > 0

    def test_export_and_history_roundtrip(self, tmp_path, capsys):
        trace_path = self._trace(tmp_path, capsys)
        chrome = tmp_path / "trace.chrome.json"
        ledger = tmp_path / "ledger"
        code, out, _err = self._main(
            ["report", str(trace_path), "--export", "chrome",
             "--out", str(chrome), "--append-history", str(ledger),
             "--label", "r1"],
            capsys,
        )
        assert code == 0
        assert f"chrome export written to {chrome}" in out
        assert "history record appended" in out
        document = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in document["traceEvents"])
        speedscope = tmp_path / "trace.speedscope.json"
        code, out, _err = self._main(
            ["report", str(trace_path), "--export", "speedscope",
             "--out", str(speedscope), "--append-history", str(ledger),
             "--label", "r2"],
            capsys,
        )
        assert code == 0
        assert json.loads(speedscope.read_text())["profiles"]
        # same trace appended twice: identical walls, so zero drift
        code, out, _err = self._main(["report", "--history", str(ledger)], capsys)
        assert code == 0
        assert "2 runs recorded" in out
        assert "no drift against the ledger median" in out
        code, out, _err = self._main(
            ["report", str(trace_path), "--history", str(ledger), "--json"],
            capsys,
        )
        assert code == 0
        assert json.loads(out)["history"]["runs"] == 2

    def test_flag_validation(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        trace_path.write_text('{"ev": "suite_start", "t": 0.0}\n')
        cases = [
            (["report"], "pass a trace file"),
            (["report", "--export", "chrome", "--history", "h"],
             "--export needs a trace file"),
            (["report", str(trace_path), "--export", "chrome"],
             "--export needs --out"),
            (["report", str(trace_path), "--out", "x.json"],
             "--out only makes sense with --export"),
            (["report", "--history", "h", "--append-history", "h2"],
             "--append-history needs a trace file"),
        ]
        for argv, message in cases:
            code, _out, err = self._main(argv, capsys)
            assert code == 2, argv
            assert message in err, argv

    def test_unwritable_trace_exits_2(self, tmp_path, capsys):
        target = tmp_path / "no_such_dir" / "t.jsonl"
        code, _out, err = self._main(
            ["verify", "travel-lite-fixed", "--trace", str(target)], capsys
        )
        assert code == 2
        assert "cannot write trace" in err

    def test_export_write_failure_exits_2(self, tmp_path, capsys):
        trace_path = self._trace(tmp_path, capsys)
        code, _out, err = self._main(
            ["report", str(trace_path), "--export", "chrome",
             "--out", str(tmp_path / "no_such_dir" / "out.json")],
            capsys,
        )
        assert code == 2
        assert "cannot write export" in err
