"""The semantic-coverage registry (``repro.fuzz.coverage``) and the
coverage-guided campaign built on it.

Four contracts:

* **registry semantics** — ``hit`` records globally and into every
  active collection unit, units nest, disabling drops records;
* **closed inventory** — a campaign never emits a feature name outside
  :data:`repro.fuzz.coverage.FEATURES` (which keeps the inventory and
  docs/testing.md's copy of it honest);
* **guided beats uniform** — at a pinned seed and budget, the
  coverage-guided campaign reaches strictly more features than the
  uniform baseline, deterministically;
* **observational invisibility** — verdicts, witnesses, and node counts
  are byte-identical with the registry enabled or disabled, and the
  campaign coverage map is byte-stable across ``PYTHONHASHSEED``
  values (subprocess-pinned).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.arith import fm
from repro.fuzz.coverage import COVERAGE, FEATURES, CoverageRegistry
from repro.fuzz.harness import run_campaign, write_coverage_map
from repro.service.pool import execute_job
from repro.service.suites import build_suite, gallery_dir
from repro.symbolic import store as symbolic_store

#: Pinned guided-vs-uniform comparison point: small enough for CI,
#: large enough that guidance demonstrably pays (35 vs 32 features).
_SEED, _COUNT = 1, 12


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_hit_records_globally_and_into_units(self):
        reg = CoverageRegistry()
        reg.hit("a")
        with reg.unit() as unit:
            reg.hit("b")
            assert unit.features() == ("b",)
        assert reg.snapshot() == ("a", "b")
        assert "a" in reg and len(reg) == 2

    def test_units_nest_and_detach(self):
        reg = CoverageRegistry()
        with reg.unit() as outer:
            reg.hit("x")
            with reg.unit() as inner:
                reg.hit("y")
            reg.hit("z")
        assert outer.features() == ("x", "y", "z")
        assert inner.features() == ("y",)
        reg.hit("after")
        assert "after" not in outer.features()

    def test_disabled_hits_are_dropped(self):
        reg = CoverageRegistry()
        reg.enabled = False
        with reg.unit() as unit:
            reg.hit("a")
        assert reg.snapshot() == () and unit.features() == ()

    def test_reset_clears_global_but_units_keep_their_view(self):
        reg = CoverageRegistry()
        with reg.unit() as unit:
            reg.hit("a")
            reg.reset()
            assert reg.snapshot() == ()
            assert unit.features() == ("a",)


# ----------------------------------------------------------------------
# campaign coverage
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def uniform_campaign():
    return run_campaign(seed=_SEED, count=_COUNT, guided=False)


@pytest.fixture(scope="module")
def guided_campaign():
    return run_campaign(seed=_SEED, count=_COUNT, guided=True)


class TestCampaignCoverage:
    def test_emitted_features_stay_inside_the_inventory(self, guided_campaign):
        assert set(guided_campaign.coverage) <= set(FEATURES)
        for outcome in guided_campaign.outcomes:
            assert set(outcome.coverage) <= set(FEATURES), outcome.scenario.name
            assert list(outcome.coverage) == sorted(outcome.coverage)

    def test_guided_reaches_strictly_more_features(
        self, uniform_campaign, guided_campaign
    ):
        assert len(guided_campaign.coverage) > len(uniform_campaign.coverage), (
            f"guided {len(guided_campaign.coverage)} vs uniform "
            f"{len(uniform_campaign.coverage)} features at seed={_SEED}, "
            f"count={_COUNT} — guidance must pay for itself"
        )
        assert guided_campaign.guided and not uniform_campaign.guided

    def test_guided_campaign_is_deterministic(self, guided_campaign):
        again = run_campaign(seed=_SEED, count=_COUNT, guided=True)
        assert again.coverage == guided_campaign.coverage
        assert [o.scenario.name for o in again.outcomes] == [
            o.scenario.name for o in guided_campaign.outcomes
        ]
        assert [o.novelty for o in again.outcomes] == [
            o.novelty for o in guided_campaign.outcomes
        ]

    def test_coverage_map_shape_and_stability(self, guided_campaign, tmp_path):
        data = guided_campaign.coverage_map()
        assert data["t"] == "fuzz_coverage_map"
        assert data["seed"] == _SEED and data["count"] == _COUNT
        assert data["guided"] is True
        assert data["features"] == sorted(data["features"])
        assert data["feature_count"] == len(data["features"])
        assert set(data["scenarios"]) == {
            o.scenario.name for o in guided_campaign.outcomes
        }
        first = write_coverage_map(tmp_path / "a.json", guided_campaign)
        second = write_coverage_map(tmp_path / "b.json", guided_campaign)
        assert first.read_bytes() == second.read_bytes()
        assert json.loads(first.read_text()) == data


# ----------------------------------------------------------------------
# observational invisibility (A/B parity)
# ----------------------------------------------------------------------
_VOLATILE = ("wall_seconds", "total_seconds", "counters", "phases", "attribution")


def _scrubbed(outcome) -> dict:
    data = outcome.to_dict()
    for key in _VOLATILE:
        data.pop(key, None)
    if data.get("stats"):
        data["stats"] = {
            k: v for k, v in data["stats"].items() if not k.endswith("_seconds")
        }
    return data


def _run_ab_job(job, enabled: bool) -> dict:
    # module-global memo caches would let the first run subsidize the
    # second; clear them so both runs do identical work
    fm.clear_caches()
    symbolic_store.clear_canonical_caches()
    was = COVERAGE.enabled
    COVERAGE.enabled = enabled
    try:
        return _scrubbed(execute_job(job))
    finally:
        COVERAGE.enabled = was


class TestObservationalInvisibility:
    def test_verdicts_witnesses_and_counts_are_identical(self):
        jobs = build_suite("quick")
        jobs += build_suite(str(gallery_dir() / "insurance_claim.has"))
        for job in jobs:
            disabled = _run_ab_job(job, enabled=False)
            enabled = _run_ab_job(job, enabled=True)
            assert json.dumps(disabled, sort_keys=True) == json.dumps(
                enabled, sort_keys=True
            ), f"{job.name}: outcome differs with coverage enabled"


# ----------------------------------------------------------------------
# PYTHONHASHSEED byte-stability
# ----------------------------------------------------------------------
_SUBPROCESS_SCRIPT = """\
import sys
from repro.fuzz.harness import run_campaign, write_coverage_map
campaign = run_campaign(seed={seed}, count={count}, guided=True)
path = write_coverage_map(sys.argv[1], campaign)
sys.stdout.write(path.read_text())
"""


def _coverage_map_bytes(tmp_path: Path, hashseed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(Path(repro.__file__).parent.parent)
    out = tmp_path / f"map-{hashseed}.json"
    script = _SUBPROCESS_SCRIPT.format(seed=_SEED, count=_COUNT)
    result = subprocess.run(
        [sys.executable, "-c", script, str(out)],
        env=env,
        capture_output=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr.decode()
    return out.read_bytes()


def test_coverage_map_is_byte_stable_across_hash_seeds(tmp_path):
    maps = {
        seed: _coverage_map_bytes(tmp_path, seed) for seed in ("0", "42")
    }
    assert maps["0"] == maps["42"], (
        "campaign coverage map depends on PYTHONHASHSEED — a set/dict "
        "iteration order leaked into coverage or scheduling"
    )
