"""The periodic Retrieve construction of Appendix C.1.2 (Figure 3)."""

import pytest

from repro.symbolic.retrieve import (
    LifeCycle,
    RetrieveFunction,
    build_retrieve,
    lemma51_bound,
    life_cycles,
    max_timespan,
)
from repro.symbolic.symbolic_run import (
    PeriodicSymbolicRun,
    SymbolicStep,
    segments_of,
)


def step(label="t", internal=True, ins=False, ret=False, ib=False):
    return SymbolicStep(label, internal, ins, ret, ib)


def simple_periodic(n_extra=0):
    """Prefix: open + insert; loop: insert, retrieve (same type)."""
    steps = [
        step("open", internal=False),
        step("a", ins=True),
    ]
    steps += [step("pad", internal=True)] * n_extra
    loop = [step("a", ins=True), step("a", ret=True)]
    loop_start = len(steps)
    steps = steps + loop + loop  # include one extra period for validation
    return PeriodicSymbolicRun(steps, loop_start, len(loop))


class TestPeriodicRuns:
    def test_unrolling(self):
        run = simple_periodic()
        assert run.step(2) == run.step(4) == run.step(6)
        run.validate_periodicity()

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSymbolicRun([step()], 0, 0)

    def test_segments(self):
        steps = [
            step("o", internal=False),
            step("a"),
            step("b", internal=False),
            step("c"),
        ]
        # internal services start new segments (Definition 17)
        assert [len(s) for s in segments_of(steps)] == [1, 2, 1]


class TestRetrieveConstruction:
    def test_matching_is_valid(self):
        run = simple_periodic()
        retrieve = build_retrieve(run, periods=6)
        retrieve.check()
        assert retrieve.mapping  # retrievals matched

    def test_gap_bounded_by_2t(self):
        """Lemma 50: Retrieve(j) ≥ j − 2t beyond the prefix."""
        run = simple_periodic(n_extra=3)
        retrieve = build_retrieve(run, periods=8)
        n, t = run.loop_start, run.period
        for retrieval, insertion in retrieve.mapping.items():
            if retrieval > n + t:
                assert retrieval - insertion <= 2 * t

    def test_type_respected(self):
        steps = [
            step("open", internal=False),
            step("a", ins=True),
            step("b", ins=True),
        ]
        loop = [step("b", ret=True), step("b", ins=True)]
        run = PeriodicSymbolicRun(steps + loop + loop, len(steps), len(loop))
        retrieve = build_retrieve(run, periods=4)
        materialized = run.unroll(retrieve.horizon)
        for retrieval, insertion in retrieve.mapping.items():
            assert materialized[insertion].ts_label == materialized[retrieval].ts_label

    def test_unmatchable_raises(self):
        steps = [step("open", internal=False), step("a", ret=True)]
        run = PeriodicSymbolicRun(steps + [step("x")] , 2, 1)
        with pytest.raises(ValueError):
            build_retrieve(run)


class TestLifeCycles:
    def test_timespans_bounded(self):
        run = simple_periodic()
        retrieve = build_retrieve(run, periods=8)
        cycles = life_cycles(run, retrieve)
        assert cycles
        bound = lemma51_bound(run, set_arity=1, child_count=1)
        assert max_timespan(cycles) <= bound

    def test_partition_is_disjoint(self):
        run = simple_periodic()
        retrieve = build_retrieve(run, periods=8)
        cycles = life_cycles(run, retrieve)
        seen: set[int] = set()
        for cycle in cycles:
            for index in cycle.indices:
                assert index not in seen
                seen.add(index)
