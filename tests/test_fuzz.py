"""The differential fuzzing subsystem (``repro.fuzz``).

Covers: generator determinism (in-process, and byte-identical across
processes and hash seeds — the PR 3 subprocess pattern extended to the
fuzzer), validity of everything generated, the bounded explicit-state
reference checker, the differential harness's agreement on healthy
seeds, the mutation smoke-test (a deliberately injected verifier bug
must be caught as a shrunk, replayable discrepancy), and the fuzz CLI's
exit-code contract (mirroring ``explain``'s).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz import (
    BoundedConfig,
    GenConfig,
    bounded_check,
    check_scenario,
    generate_scenario,
    load_report,
    replay_report,
    run_campaign,
)
from repro.fuzz.harness import shrink_scenario
from repro.fuzz.mutations import inject, mutation_names
from repro.fuzz.reference import (
    VERDICT_BOXED,
    VERDICT_CLEAN,
    VERDICT_UNSUPPORTED,
    VERDICT_VIOLATED,
)
from repro.has.restrictions import validate_has
from repro.hltl.formulas import HLTLProperty, HLTLSpec, child, validate_property
from repro.ltl.formulas import Always
from repro.service.cli import main as cli_main
from repro.service.jobs import VerificationJob
from repro.service.serialize import canonical_json, to_dict
from repro.hltl.formulas import cond
from repro.logic.conditions import TRUE


class TestGeneratorDeterminism:
    def test_same_seed_byte_identical_models(self):
        for index in range(8):
            first = generate_scenario(5, index)
            second = generate_scenario(5, index)
            assert canonical_json(to_dict(first.has)) == canonical_json(
                to_dict(second.has)
            )
            assert canonical_json(to_dict(first.prop)) == canonical_json(
                to_dict(second.prop)
            )
            assert VerificationJob(
                has=first.has, prop=first.prop, name=first.name
            ).key() == VerificationJob(
                has=second.has, prop=second.prop, name=second.name
            ).key()

    def test_indices_generate_distinct_scenarios(self):
        rendered = {
            canonical_json(to_dict(generate_scenario(0, i).has)) for i in range(10)
        }
        assert len(rendered) > 5

    def test_generated_scenarios_are_valid(self):
        for index in range(20):
            scenario = generate_scenario(11, index)
            validate_has(scenario.has)
            validate_property(scenario.prop, scenario.has)
            for db in scenario.databases:
                db.validate()

    def test_config_round_trips(self):
        config = GenConfig(max_depth=3, numeric_pool=(1, 2, 3))
        assert GenConfig.from_dict(config.to_dict()) == config

    def test_generation_is_hash_seed_independent(self):
        """Same seed ⇒ byte-identical serialized models and identical job
        content hash across processes and PYTHONHASHSEED values (the
        subprocess-determinism pattern of tests/test_perf.py, extended
        to the fuzzer's generator)."""
        script = (
            "import json\n"
            "from repro.fuzz import generate_scenario\n"
            "from repro.service.jobs import VerificationJob\n"
            "from repro.service.serialize import canonical_json, to_dict\n"
            "out = []\n"
            "for index in range(4):\n"
            "    s = generate_scenario(0, index)\n"
            "    job = VerificationJob(has=s.has, prop=s.prop, name=s.name)\n"
            "    out.append([canonical_json(to_dict(s.has)),\n"
            "                canonical_json(to_dict(s.prop)), job.key()])\n"
            "print(json.dumps(out))\n"
        )
        outputs = set()
        for seed in ("0", "1", "4242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                cwd=str(Path(__file__).parent.parent),
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, f"hash-seed-dependent generation: {outputs}"


class TestBoundedChecker:
    def test_confirms_a_known_violation(self):
        # fuzz-s0-i1 is symbolically violated with a concrete lasso in
        # range of the bounded search (pinned by the corpus campaign)
        scenario = generate_scenario(0, 1)
        result = bounded_check(scenario.has, scenario.prop, scenario.databases)
        assert result.verdict == VERDICT_VIOLATED
        violation = result.violation
        assert violation is not None
        assert violation.checks and all(violation.checks.values())
        assert 0 < violation.loop_start < len(violation.steps)

    def test_clean_on_a_holding_scenario(self):
        scenario = generate_scenario(0, 0)
        result = bounded_check(scenario.has, scenario.prop, scenario.databases)
        assert result.verdict == VERDICT_CLEAN
        assert result.violation is None

    def test_boxed_when_budget_exhausted(self):
        scenario = generate_scenario(0, 1)
        result = bounded_check(
            scenario.has,
            scenario.prop,
            scenario.databases,
            BoundedConfig(max_expansions=1),
        )
        assert result.verdict == VERDICT_BOXED

    def test_child_prop_properties_are_unsupported(self):
        scenario = None
        for index in range(40):
            candidate = generate_scenario(0, index)
            if candidate.has.root.children:
                scenario = candidate
                break
        assert scenario is not None
        target = scenario.has.root.children[0]
        prop = HLTLProperty(
            HLTLSpec(
                scenario.has.root.name,
                Always(child(target.name, cond(TRUE))),
            ),
            name="child-prop",
        )
        result = bounded_check(scenario.has, prop, scenario.databases)
        assert result.verdict == VERDICT_UNSUPPORTED


class TestDifferentialHarness:
    def test_healthy_campaign_has_no_discrepancies(self):
        campaign = run_campaign(0, 15, shrink=False)
        assert campaign.discrepancies == []
        statuses = {o.symbolic_status for o in campaign.outcomes}
        assert "holds" in statuses and "violated" in statuses
        # every violated verdict carried a confirmed concrete witness
        for outcome in campaign.outcomes:
            if outcome.symbolic_status == "violated":
                assert outcome.witness_status == "confirmed"

    def test_bounded_violations_only_on_symbolic_violations(self):
        campaign = run_campaign(1, 15, shrink=False)
        assert campaign.discrepancies == []
        for outcome in campaign.outcomes:
            if outcome.bounded and outcome.bounded.verdict == VERDICT_VIOLATED:
                assert outcome.symbolic_status == "violated"


class TestMutationSmoke:
    """A deliberately injected verifier bug must be caught as a
    discrepancy with a shrunk, replayable report — the oracle's own
    regression test (acceptance criterion of the fuzz subsystem)."""

    def test_known_mutations_exist(self):
        assert set(mutation_names()) >= {
            "drop_lasso",
            "drop_blocking",
            "spurious_violation",
        }

    def test_drop_lasso_is_caught_shrunk_and_replayable(self, tmp_path):
        with inject("drop_lasso"):
            campaign = run_campaign(3, 8, out_dir=tmp_path, shrink=True)
        kinds = {o.discrepancy.kind for o in campaign.discrepancies}
        assert "missed_violation" in kinds
        assert campaign.report_paths, "discrepancy reports must be written"
        report = load_report(campaign.report_paths[0])
        # the report embeds seed + GenConfig and the discrepancy evidence
        assert report["seed"] == 3
        assert GenConfig.from_dict(report["gen_config"]) == GenConfig()
        assert report["witness"] is not None
        assert report["witness"]["status"] == "confirmed"
        # shrunk scenario rides along and is no larger than the original
        assert "shrunk" in report
        assert len(canonical_json(report["shrunk"]["has"])) <= len(
            canonical_json(report["has"])
        )
        # replay: reproduces under the mutation, not without it
        with inject("drop_lasso"):
            reproduced, _outcome, notes = replay_report(report)
        assert reproduced and not notes
        reproduced_clean, _outcome, notes = replay_report(report)
        assert not reproduced_clean and not notes

    def test_spurious_violation_is_caught(self, tmp_path):
        with inject("spurious_violation"):
            campaign = run_campaign(0, 5, out_dir=tmp_path, shrink=False)
        kinds = {o.discrepancy.kind for o in campaign.discrepancies}
        assert "non_concretizable" in kinds

    def test_drop_blocking_is_the_documented_blind_spot(self):
        """The bounded checker searches lassos only, so a verifier that
        silently drops *blocking* violations is NOT caught today.  This
        test pins the gap: if a blocking-direction oracle is ever added,
        it will start failing and the mutation docs (and docs/testing.md)
        must be flipped to 'caught'."""
        scenario = generate_scenario(2, 1)
        healthy = check_scenario(scenario)
        assert healthy.symbolic_status == "violated"
        with inject("drop_blocking"):
            mutated = check_scenario(scenario)
        assert mutated.symbolic_status == "holds"
        assert mutated.discrepancy is None, (
            "a blocking-direction oracle now exists — update "
            "repro/fuzz/mutations.py and docs/testing.md to claim the catch"
        )

    def test_mutations_restore_the_verifier(self):
        scenario = generate_scenario(3, 4)
        with inject("drop_lasso"):
            mutated = check_scenario(scenario)
        assert mutated.symbolic_status == "holds"
        healthy = check_scenario(scenario)
        assert healthy.symbolic_status == "violated"
        assert healthy.witness_status == "confirmed"


class TestScenarioShrinking:
    def test_shrunk_scenario_still_reproduces(self):
        scenario = generate_scenario(3, 4)
        with inject("drop_lasso"):
            outcome = check_scenario(scenario)
            assert outcome.discrepancy is not None
            smaller, smaller_outcome = shrink_scenario(
                scenario, outcome.discrepancy.kind, max_attempts=20
            )
        if smaller_outcome is not None:
            assert smaller_outcome.discrepancy is not None
            assert smaller_outcome.discrepancy.kind == outcome.discrepancy.kind
            assert len(canonical_json(to_dict(smaller.has))) <= len(
                canonical_json(to_dict(scenario.has))
            )
            validate_has(smaller.has)
            validate_property(smaller.prop, smaller.has)


class TestFuzzCLI:
    """Exit-code contract, tested like ``explain``'s: 0 all-agree /
    not-reproduced, 1 discrepancy / reproduced, 2 usage error."""

    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        code = cli_main(
            ["fuzz", "--seed", "0", "--count", "3", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no discrepancies" in out

    def test_mutated_campaign_exits_one_and_writes_report(self, tmp_path, capsys):
        reports = tmp_path / "reports"
        code = cli_main(
            [
                "fuzz",
                "--seed",
                "3",
                "--count",
                "5",
                "--inject-bug",
                "drop_lasso",
                "--no-shrink",
                "--out",
                str(reports),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DISCREPANCY" in out
        report_files = list(reports.glob("discrepancy-*.json"))
        assert report_files

    def test_replay_exit_codes(self, tmp_path, capsys):
        reports = tmp_path / "reports"
        assert (
            cli_main(
                [
                    "fuzz",
                    "--seed",
                    "3",
                    "--count",
                    "5",
                    "--inject-bug",
                    "drop_lasso",
                    "--no-shrink",
                    "--out",
                    str(reports),
                ]
            )
            == 1
        )
        capsys.readouterr()
        report = str(next(reports.glob("discrepancy-*.json")))
        # the report embeds seed + GenConfig; --replay reproduces it
        # exactly under the same mutation…
        code = cli_main(["fuzz", "--replay", report, "--inject-bug", "drop_lasso"])
        assert code == 1
        assert "REPRODUCED" in capsys.readouterr().out
        # …and reports the fix once the mutation is gone
        code = cli_main(["fuzz", "--replay", report])
        assert code == 0
        assert "no longer reproduces" in capsys.readouterr().out

    def test_usage_errors_exit_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fuzz", "--inject-bug", "nonsense", "--count", "1"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fuzz", "--replay", str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"t": "something_else"}))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fuzz", "--replay", str(bogus)])
        assert excinfo.value.code == 2
        # truncated report (right tag, missing fields): usage error, not
        # a fake "reproduced" exit 1
        truncated = tmp_path / "truncated.json"
        truncated.write_text(json.dumps({"t": "fuzz_report"}))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fuzz", "--replay", str(truncated)])
        assert excinfo.value.code == 2
        # a mutated verifier must never write corpus ground truth
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                [
                    "fuzz",
                    "--count",
                    "1",
                    "--inject-bug",
                    "drop_lasso",
                    "--export-corpus",
                    str(tmp_path / "corpus"),
                ]
            )
        assert excinfo.value.code == 2

    def test_export_corpus_writes_entries(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = cli_main(
            [
                "fuzz",
                "--seed",
                "0",
                "--count",
                "2",
                "--out",
                str(tmp_path / "reports"),
                "--export-corpus",
                str(corpus),
            ]
        )
        capsys.readouterr()
        assert code == 0
        entries = sorted(corpus.glob("scenario-*.json"))
        assert len(entries) == 2
        data = json.loads(entries[0].read_text())
        assert data["t"] == "fuzz_corpus_entry"
        assert data["expected"]["symbolic"] in ("holds", "violated")
