"""The concrete simulator, and cross-validation against the verifier:
simulated trees always validate, and property verdicts agree with the
symbolic verifier on the lite travel example."""

import pytest

from repro.examples.travel import (
    discount_policy_property_lite,
    travel_database,
    travel_lite,
)
from repro.hltl.eval_tree import evaluate_on_tree
from repro.runtime.simulator import SimulationConfig, Simulator
from repro.runtime.tree import validate_run_tree
from repro.verifier import VerifierConfig, verify


@pytest.fixture(scope="module")
def db():
    return travel_database()


@pytest.mark.slow
class TestSimulatorSoundness:
    def test_simulated_trees_validate(self, db):
        has = travel_lite(fixed=False)
        sim = Simulator(has, db, SimulationConfig(max_steps=25, seed=7))
        for tree in sim.sample_trees(8):
            validate_run_tree(tree, db)

    def test_fixed_variant_trees_validate(self, db):
        has = travel_lite(fixed=True)
        sim = Simulator(has, db, SimulationConfig(max_steps=25, seed=3))
        for tree in sim.sample_trees(8):
            validate_run_tree(tree, db)

    def test_runs_make_progress(self, db):
        has = travel_lite(fixed=False)
        sim = Simulator(has, db, SimulationConfig(max_steps=30, seed=1))
        lengths = [len(tree.root.run.steps) for tree in sim.sample_trees(5)]
        assert max(lengths) > 1


@pytest.mark.slow
class TestCrossValidation:
    def test_buggy_violation_realized_concretely(self, db):
        """The verifier says the lite policy is violated; random simulation
        finds a concrete violating tree, confirming the counterexample is
        not spurious."""
        has = travel_lite(fixed=False)
        prop = discount_policy_property_lite(has)
        result = verify(has, prop, VerifierConfig(km_budget=100000))
        assert not result.holds

        sim = Simulator(has, db, SimulationConfig(max_steps=30, seed=0))
        found_violation = False
        for tree in sim.sample_trees(30):
            validate_run_tree(tree, db)
            if not evaluate_on_tree(prop, tree, db):
                found_violation = True
                break
        assert found_violation

    def test_fixed_variant_never_violates_concretely(self, db):
        """The verifier proves the fixed policy; no simulated tree may
        violate it."""
        has = travel_lite(fixed=True)
        prop = discount_policy_property_lite(has)
        result = verify(has, prop, VerifierConfig(km_budget=100000))
        assert result.holds

        sim = Simulator(has, db, SimulationConfig(max_steps=25, seed=0))
        for tree in sim.sample_trees(15):
            validate_run_tree(tree, db)
            assert evaluate_on_tree(prop, tree, db)
