"""Property-based soundness checks for the store's projection operations.

``restrict`` implements τ'|x̄_in (the symbolic transition's persistence
step) and ``absorb`` implements child-I/O fact transfer; together they are
the data-flow backbone of the verifier.  These tests check, over random
assertion sequences, that projection never *loses* facts about kept
variables and never *invents* facts about dropped ones.
"""

from hypothesis import given, settings, strategies as st

from repro.arith.constraints import Rel
from repro.arith.linexpr import LinExpr
from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.logic.terms import id_var, num_var
from repro.symbolic.nodes import Sort
from repro.symbolic.store import ConstraintStore, Inconsistent

SCHEMA = DatabaseSchema(
    (
        Relation("F", (numeric("price"), foreign_key("hotel", "H"))),
        Relation("H", (numeric("rate"),)),
    )
)

IDS = [id_var(n) for n in ("u", "v", "w")]
NUMS = [num_var(n) for n in ("a", "b")]


@st.composite
def op_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        kind = draw(
            st.sampled_from(
                ["eq", "neq", "null", "anchor", "nav_eq", "num_le", "num_eq"]
            )
        )
        ops.append(
            (
                kind,
                draw(st.sampled_from(IDS)),
                draw(st.sampled_from(IDS)),
                draw(st.sampled_from(NUMS)),
                draw(st.integers(min_value=-3, max_value=3)),
                draw(st.sampled_from(["F", "H"])),
            )
        )
    return ops


def apply_ops(store: ConstraintStore, ops) -> bool:
    """Returns False when the sequence was inconsistent (test skipped)."""
    try:
        for kind, x, y, n, k, rel in ops:
            if kind == "eq":
                store.assert_eq(store.node_of(x), store.node_of(y))
            elif kind == "neq":
                store.assert_neq(store.node_of(x), store.node_of(y))
            elif kind == "null":
                store.assert_null(store.node_of(x))
            elif kind == "anchor":
                store.assert_anchor(store.node_of(x), rel)
            elif kind == "nav_eq":
                store.assert_anchor(store.node_of(x), "F")
                price = store.nav(store.node_of(x), "price")
                store.assert_eq(price, store.node_of(n))
            elif kind == "num_le":
                store.add_linear(LinExpr({store.node_of(n): 1}, -k), Rel.LE)
            elif kind == "num_eq":
                store.add_linear(LinExpr({store.node_of(n): 1}, -k), Rel.EQ)
    except Inconsistent:
        return False
    return store.is_consistent()


class TestRestrictSoundness:
    @given(op_sequences())
    @settings(max_examples=120, deadline=None)
    def test_kept_id_facts_survive(self, ops):
        """Definite equal/unequal verdicts between kept ID variables are
        preserved by restrict (no fact loss on the projection)."""
        store = ConstraintStore(SCHEMA)
        if not apply_ops(store, ops):
            return
        keep = [IDS[0], IDS[1]]
        before = store.equal(store.node_of(keep[0]), store.node_of(keep[1]))
        null_before = [store.null_status(store.node_of(v)) for v in keep]
        anchor_before = [store.anchor_of(store.node_of(v)) for v in keep]
        restricted = store.restrict(keep)
        assert restricted.is_consistent()
        after = restricted.equal(
            restricted.node_of(keep[0]), restricted.node_of(keep[1])
        )
        if before is not None:
            assert after == before
        for variable, null_status, anchor in zip(keep, null_before, anchor_before):
            node = restricted.node_of(variable)
            if null_status is not None:
                assert restricted.null_status(node) == null_status
            if anchor is not None:
                assert restricted.anchor_of(node) == anchor

    @given(op_sequences())
    @settings(max_examples=120, deadline=None)
    def test_dropped_variables_are_fresh(self, ops):
        """After restrict, dropped variables carry no constraints."""
        store = ConstraintStore(SCHEMA)
        if not apply_ops(store, ops):
            return
        restricted = store.restrict([IDS[0]])
        dropped = restricted.node_of(IDS[2])
        assert restricted.null_status(dropped) is None
        assert restricted.anchor_of(dropped) is None
        assert restricted.equal(dropped, restricted.node_of(IDS[0])) is None

    @given(op_sequences())
    @settings(max_examples=100, deadline=None)
    def test_numeric_implications_survive(self, ops):
        """Definite numeric verdicts against constants are preserved for a
        kept numeric variable."""
        store = ConstraintStore(SCHEMA)
        if not apply_ops(store, ops):
            return
        target = NUMS[0]
        verdicts = {
            k: store.equal(store.node_of(target), store.const(k))
            for k in (-3, 0, 3)
        }
        restricted = store.restrict([target])
        assert restricted.is_consistent()
        if not restricted.approximate:
            for k, verdict in verdicts.items():
                if verdict is not None:
                    node = restricted.node_of(target)
                    assert restricted.equal(node, restricted.const(k)) == verdict


class TestAbsorbRoundTrip:
    @given(op_sequences())
    @settings(max_examples=100, deadline=None)
    def test_restrict_then_absorb_preserves_facts(self, ops):
        """restrict → absorb into a fresh store (the child-input path of the
        verifier) keeps every definite verdict about the transferred
        variables."""
        store = ConstraintStore(SCHEMA)
        if not apply_ops(store, ops):
            return
        keep = [IDS[0], IDS[1]]
        restricted = store.restrict(keep)
        target = ConstraintStore(SCHEMA)
        fresh_names = {keep[0]: id_var("c0"), keep[1]: id_var("c1")}
        try:
            target.absorb(restricted, fresh_names)
        except Inconsistent:
            raise AssertionError("absorbing a consistent store must not fail")
        assert target.is_consistent()
        before = restricted.equal(
            restricted.node_of(keep[0]), restricted.node_of(keep[1])
        )
        after = target.equal(
            target.node_of(fresh_names[keep[0]]),
            target.node_of(fresh_names[keep[1]]),
        )
        if before is not None:
            assert after == before
        for variable in keep:
            node = restricted.node_of(variable)
            mapped = target.node_of(fresh_names[variable])
            if restricted.null_status(node) is not None:
                assert target.null_status(mapped) == restricted.null_status(node)
            if restricted.anchor_of(node) is not None:
                assert target.anchor_of(mapped) == restricted.anchor_of(node)

    @given(op_sequences())
    @settings(max_examples=80, deadline=None)
    def test_canonical_key_invariant_under_roundtrip(self, ops):
        """restrict is idempotent up to canonical keys."""
        store = ConstraintStore(SCHEMA)
        if not apply_ops(store, ops):
            return
        keep = [IDS[0], NUMS[0]]
        once = store.restrict(keep)
        twice = once.restrict(keep)
        assert once.canonical_key() == twice.canonical_key()
