"""The model checker on small systems: flat tasks, hierarchy, sets,
arithmetic, and the tree-validity subtleties (blocking/lasso acceptance)."""

from fractions import Fraction

import pytest

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.database.schema import DatabaseSchema, Relation, numeric
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.services import SetUpdate
from repro.hltl.formulas import HLTLProperty, HLTLSpec, child, cond, service
from repro.logic.conditions import (
    And,
    ArithAtom,
    Eq,
    Not,
    Or,
    RelationAtom,
    TRUE,
    FALSE,
)
from repro.logic.terms import Const, NULL, id_var, num_var
from repro.ltl.formulas import Always, Eventually, Next, NotF, TrueF
from repro.runtime import labels
from repro.verifier import VerifierConfig, verify

CONFIG = VerifierConfig(km_budget=30000)

DB = DatabaseSchema((Relation("ITEMS", (numeric("price"),)),))


def flat_task(*services, variables):
    return Task(
        name="T1",
        variables=variables,
        services=services,
        opening=OpeningService(),
        closing=ClosingService(),
    )


class TestFlat:
    def test_invariant_holds(self):
        x = num_var("x")
        step = InternalService("step", post=Eq(x, Const(Fraction(1))))
        has = HAS(DB, flat_task(step, variables=(x,)))
        prop = HLTLProperty(
            HLTLSpec(
                "T1",
                Always(
                    cond(Or(Eq(x, Const(Fraction(0))), Eq(x, Const(Fraction(1)))))
                ),
            )
        )
        assert verify(has, prop, CONFIG).holds

    def test_invariant_violated_with_lasso_witness(self):
        x = num_var("x")
        step = InternalService("step", post=Eq(x, Const(Fraction(1))))
        has = HAS(DB, flat_task(step, variables=(x,)))
        prop = HLTLProperty(HLTLSpec("T1", Always(cond(Eq(x, Const(Fraction(0)))))))
        result = verify(has, prop, CONFIG)
        assert not result.holds
        assert result.witness_kind == "lasso"
        assert result.witness

    def test_eventually_requires_fairness(self):
        """F(x=1) fails: the run may apply `idle` forever."""
        x = num_var("x")
        setx = InternalService("setx", post=Eq(x, Const(Fraction(1))))
        idle = InternalService("idle", post=Eq(x, Const(Fraction(0))))
        has = HAS(DB, flat_task(setx, idle, variables=(x,)))
        prop = HLTLProperty(HLTLSpec("T1", Eventually(cond(Eq(x, Const(Fraction(1)))))))
        assert not verify(has, prop, CONFIG).holds

    def test_no_infinite_run_means_vacuous(self):
        """A task with no applicable service has no (infinite or blocking)
        runs, so every property holds vacuously."""
        x = num_var("x")
        never = InternalService("never", pre=FALSE)
        has = HAS(DB, flat_task(never, variables=(x,)))
        prop = HLTLProperty(HLTLSpec("T1", cond(Eq(x, Const(Fraction(99))))))
        assert verify(has, prop, CONFIG).holds

    def test_precondition_constrains_inputs(self):
        x = num_var("x")
        idle = InternalService("idle", pre=TRUE, post=TRUE)
        root = Task(
            name="T1",
            variables=(x,),
            services=(idle,),
            opening=OpeningService(pre=TRUE, input_map={x: x}),
            closing=ClosingService(),
        )
        has = HAS(DB, root, precondition=Eq(x, Const(Fraction(7))))
        # at the first instant x = 7 (inputs keep their value afterwards)
        prop = HLTLProperty(HLTLSpec("T1", Always(cond(Eq(x, Const(Fraction(7)))))))
        assert verify(has, prop, CONFIG).holds

    def test_database_atom_reasoning(self):
        item, price = id_var("item"), num_var("price")
        pick = InternalService("pick", post=RelationAtom("ITEMS", (item, price)))
        has = HAS(DB, flat_task(pick, variables=(item, price)))
        # after any pick, the price is the item's price: same-row FD
        prop = HLTLProperty(
            HLTLSpec(
                "T1",
                Always(
                    cond(Or(Eq(item, NULL), RelationAtom("ITEMS", (item, price))))
                ),
            )
        )
        assert verify(has, prop, CONFIG).holds


class TestArithmetic:
    def test_arith_invariant_holds(self):
        x = num_var("x")
        step = InternalService(
            "step",
            post=ArithAtom(compare(linvar(x), Rel.GE, linconst(1))),
        )
        has = HAS(DB, flat_task(step, variables=(x,)))
        prop = HLTLProperty(
            HLTLSpec(
                "T1", Always(cond(ArithAtom(compare(linvar(x), Rel.GE, linconst(0)))))
            )
        )
        assert verify(has, prop, CONFIG).holds

    def test_arith_invariant_violated(self):
        x = num_var("x")
        step = InternalService(
            "step", post=ArithAtom(compare(linvar(x), Rel.GE, linconst(1)))
        )
        has = HAS(DB, flat_task(step, variables=(x,)))
        prop = HLTLProperty(
            HLTLSpec(
                "T1", Always(cond(ArithAtom(compare(linvar(x), Rel.LE, linconst(5)))))
            )
        )
        assert not verify(has, prop, CONFIG).holds

    def test_arith_links_through_database(self):
        """price ≥ 10 for every row constraint cannot be asserted — but the
        FD through the row id forces price consistency."""
        item, price, price2 = id_var("item"), num_var("price"), num_var("price2")
        pick = InternalService(
            "pick",
            post=And(
                RelationAtom("ITEMS", (item, price)),
                RelationAtom("ITEMS", (item, price2)),
            ),
        )
        has = HAS(DB, flat_task(pick, variables=(item, price, price2)))
        # same id ⇒ same price (key dependency)
        delta = ArithAtom(
            compare(linvar(price) - linvar(price2), Rel.EQ, linconst(0))
        )
        prop = HLTLProperty(
            HLTLSpec("T1", Always(cond(Or(Eq(item, NULL), delta))))
        )
        assert verify(has, prop, CONFIG).holds


class TestHierarchy:
    def _parent_child(self, child_post, closing_pre, returns=True):
        c_x = id_var("c_x")
        p_x = id_var("p_x")
        child_ = Task(
            name="C",
            variables=(c_x,),
            services=(InternalService("work", post=child_post(c_x)),),
            opening=OpeningService(pre=Eq(p_x, NULL), input_map={}),
            closing=ClosingService(
                pre=closing_pre(c_x),
                output_map={p_x: c_x} if returns else {},
            ),
        )
        root = Task(
            name="R",
            variables=(p_x,),
            services=(InternalService("reset", post=Eq(p_x, NULL)),),
            children=(child_,),
        )
        return HAS(DB, root)

    def test_child_result_visible(self):
        has = self._parent_child(
            child_post=lambda c: Not(Eq(c, NULL)),
            closing_pre=lambda c: Not(Eq(c, NULL)),
        )
        # after C closes, p_x is non-null until reset: σ^c_C → p_x ≠ null
        p_x = id_var("p_x")
        prop = HLTLProperty(
            HLTLSpec(
                "R",
                Always(
                    service(labels.closing("C")).implies(cond(Not(Eq(p_x, NULL))))
                ),
            )
        )
        assert verify(has, prop, CONFIG).holds

    def test_child_formula_observed(self):
        has = self._parent_child(
            child_post=lambda c: Not(Eq(c, NULL)),
            closing_pre=lambda c: Not(Eq(c, NULL)),
        )
        c_x = id_var("c_x")
        # every run of C eventually sets c_x non-null — before closing it must
        prop = HLTLProperty(
            HLTLSpec(
                "R",
                Always(
                    service(labels.opening("C")).implies(
                        child("C", Eventually(cond(Not(Eq(c_x, NULL)))))
                    )
                ),
            )
        )
        result = verify(has, prop, CONFIG)
        # C may also never return (run forever) — but even then `work`
        # fires eventually?  No: C can block only if it has a non-returning
        # run; its only infinite runs apply `work` repeatedly, satisfying F.
        assert result.holds

    def test_child_formula_violated(self):
        has = self._parent_child(
            child_post=lambda c: TRUE,
            closing_pre=lambda c: TRUE,
        )
        c_x = id_var("c_x")
        prop = HLTLProperty(
            HLTLSpec(
                "R",
                Always(
                    service(labels.opening("C")).implies(
                        child("C", Always(cond(Eq(c_x, NULL))))
                    )
                ),
            )
        )
        # C's run may set c_x non-null: violated
        assert not verify(has, prop, CONFIG).holds

    def test_blocking_run_semantics(self):
        """A root whose only continuation is a never-returning child:
        violations can be realized by blocking trees."""
        c_x = id_var("c_x")
        p_x = id_var("p_x")
        child_ = Task(
            name="C",
            variables=(c_x,),
            services=(InternalService("spin", post=TRUE),),
            opening=OpeningService(pre=TRUE, input_map={}),
            closing=ClosingService(pre=FALSE),  # never returns
        )
        root = Task(name="R", variables=(p_x,), services=(), children=(child_,))
        has = HAS(DB, root)
        prop = HLTLProperty(
            HLTLSpec("R", NotF(Eventually(service(labels.opening("C")))))
        )
        result = verify(has, prop, CONFIG)
        assert not result.holds
        assert result.witness_kind == "blocking"


class TestSets:
    def _set_system(self):
        s = id_var("s")
        item, price = id_var("item"), num_var("price")
        pick = InternalService(
            "pick", post=And(RelationAtom("ITEMS", (s, price)), TRUE)
        )
        store = InternalService(
            "store", pre=Not(Eq(s, NULL)), post=Eq(s, NULL), update=SetUpdate.INSERT
        )
        load = InternalService(
            "load", pre=TRUE, post=TRUE, update=SetUpdate.RETRIEVE
        )
        root = Task(
            name="T1",
            variables=(s, item, price),
            set_variables=(s,),
            services=(pick, store, load),
        )
        return HAS(DB, root)

    def test_retrieval_needs_prior_insert(self):
        """After a load, s was previously stored non-null: G(load → s≠null)…
        but the paper's semantics inserts ν(s̄) which may be null only if a
        null tuple was stored — `store` guards against that."""
        has = self._set_system()
        prop = HLTLProperty(
            HLTLSpec(
                "T1",
                Always(
                    service(labels.internal("T1", "load")).implies(
                        cond(Not(Eq(id_var("s"), NULL)))
                    )
                ),
            )
        )
        assert verify(has, prop, CONFIG).holds

    def test_load_before_store_impossible(self):
        """A run starting with `load` is impossible (counter at 0), so
        `G ¬first-load` is handled through counter enabledness: the
        property `X(load) → false` in disguise."""
        has = self._set_system()
        prop = HLTLProperty(
            HLTLSpec(
                "T1",
                NotF(Next(service(labels.internal("T1", "load")))),
            )
        )
        assert verify(has, prop, CONFIG).holds

    def test_store_load_roundtrip_preserves_anchor(self):
        has = self._set_system()
        s = id_var("s")
        # anything loaded is an ITEMS id (only ITEMS ids are stored)
        prop = HLTLProperty(
            HLTLSpec(
                "T1",
                Always(
                    service(labels.internal("T1", "load")).implies(
                        cond(Or(Eq(s, NULL), RelationAtom("ITEMS", (s, num_var("price")))))
                    )
                ),
            )
        )
        result = verify(has, prop, CONFIG)
        # NOTE: loaded ids are anchored to ITEMS, but their *price naviga-
        # tion* is freshly constrained — the atom tests price equality too,
        # which is not guaranteed for the variable `price` at load time.
        assert not result.holds
