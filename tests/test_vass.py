"""VASS substrate: Karp–Miller coverability and repeated reachability."""

import pytest

from repro.errors import BudgetExceeded
from repro.vass import VASS, build_km_graph, reachable, repeated_reachable
from repro.vass.karp_miller import (
    OMEGA,
    dominates,
    rooted_witness_path,
    witness_path,
)
from repro.vass.repeated import accepting_cycle, cycle_path


def simple_counter() -> VASS:
    """One counter: p pumps it, q drains it."""
    vass = VASS(dimension=1)
    vass.add_action("p", [1], "p")
    vass.add_action("p", [0], "q")
    vass.add_action("q", [-1], "q")
    return vass


class TestKarpMiller:
    def test_acceleration_introduces_omega(self):
        graph = build_km_graph(simple_counter(), "p")
        labels = {node.label for node in graph.nodes}
        assert any(
            dict(vector).get(0) == OMEGA for state, vector in labels if state == "p"
        )

    def test_reachability(self):
        node = reachable(simple_counter(), "p", lambda n: n.state == "q")
        assert node is not None

    def test_unreachable(self):
        vass = VASS(dimension=1)
        vass.add_action("a", [1], "a")
        vass.add_state("island")
        assert reachable(vass, "a", lambda n: n.state == "island") is None

    def test_counters_stay_nonnegative(self):
        vass = VASS(dimension=1)
        vass.add_action("a", [-1], "b")  # needs a token it never gets
        assert reachable(vass, "a", lambda n: n.state == "b") is None

    def test_coverability_needs_pumping(self):
        """b is reachable only after pumping the counter twice."""
        vass = VASS(dimension=1)
        vass.add_action("a", [1], "a")
        vass.add_action("a", [-2], "b")

        # -2 in one action: encode as two -1 steps through a middle state
        vass = VASS(dimension=1)
        vass.add_action("a", [1], "a")
        vass.add_action("a", [-1], "m")
        vass.add_action("m", [-1], "b")
        node = reachable(vass, "a", lambda n: n.state == "b")
        assert node is not None
        path = witness_path(node)
        assert len(path) >= 3  # two pumps + two drains at least

    def test_budget_exceeded_raises(self):
        with pytest.raises(BudgetExceeded):
            reachable(simple_counter(), "p", lambda n: False, budget=3)


class TestRepeatedReachability:
    def test_self_loop_cycle(self):
        found = repeated_reachable(
            simple_counter(), "p", lambda n: n.state == "p"
        )
        assert found is not None

    def test_drain_state_not_repeatable_without_refill(self):
        vass = VASS(dimension=1)
        vass.add_action("start", [1], "start")
        vass.add_action("start", [0], "drain")
        vass.add_action("drain", [-1], "drain2")
        # drain2 has no outgoing actions: it is reachable but not on a cycle
        found = repeated_reachable(vass, "start", lambda n: n.state == "drain2")
        assert found is None

    def test_cycle_through_counter(self):
        """The cycle q → q consumes a token: repeatable only because ω is
        pumpable at p."""
        vass = VASS(dimension=1)
        vass.add_action("p", [1], "p")
        vass.add_action("p", [0], "q")
        vass.add_action("q", [-1], "q2")
        vass.add_action("q2", [0], "q")
        found = repeated_reachable(vass, "p", lambda n: n.state == "q")
        assert found is not None

    def test_strictly_decreasing_cycle_not_accepted(self):
        """Without a pump, a consuming loop cannot repeat forever."""
        vass = VASS(dimension=1)
        vass.add_action("a", [1], "b")  # one token, once
        vass.add_action("b", [-1], "c")
        vass.add_action("c", [0], "b")
        # b→c→b consumes one token per round; only 1 available
        found = repeated_reachable(vass, "a", lambda n: n.state == "c")
        assert found is None


class TestAcceptingCycle:
    def test_shared_graph_queries(self):
        graph = build_km_graph(simple_counter(), "p")
        assert accepting_cycle(graph, lambda n: n.state == "p") is not None
        assert accepting_cycle(graph, lambda n: n.state == "nope") is None


class TestWitnessPath:
    def test_step_ordering_from_root(self):
        """witness_path lists the steps root-first, each edge's target
        being the node the tag reaches."""
        vass = VASS(dimension=1)
        vass.add_action("a", [1], "b")
        vass.add_action("b", [1], "c")
        vass.add_action("c", [0], "d")
        node = reachable(vass, "a", lambda n: n.state == "d")
        assert node is not None
        path = witness_path(node)
        assert [step[1].state for step in path] == ["b", "c", "d"]
        # targets chain through parents back to the root
        for tag, target in path:
            assert target.parent is not None
            assert target.parent_tag is tag

    def test_rooted_path_exposes_start(self):
        vass = VASS(dimension=1)
        vass.add_action("a", [1], "b")
        node = reachable(vass, "a", lambda n: n.state == "b")
        root, steps = rooted_witness_path(node)
        assert root.parent is None and root.state == "a"
        assert [s[1].state for s in steps] == ["b"]

    def test_rooted_path_of_a_root_node(self):
        graph = build_km_graph(simple_counter(), "p")
        root, steps = rooted_witness_path(graph.roots[0])
        assert root is graph.roots[0]
        assert steps == []


class TestCyclePath:
    def test_single_node_self_loop(self):
        vass = VASS(dimension=0)
        vass.add_action("p", [], "p")
        graph = build_km_graph(vass, "p")
        node, component = accepting_cycle(graph, lambda n: n.state == "p")
        steps = cycle_path(node, component)
        assert len(steps) == 1
        assert steps[0][1] is node

    def test_multi_node_cycle_ordering(self):
        vass = VASS(dimension=0)
        vass.add_action("p", [], "q")
        vass.add_action("q", [], "r")
        vass.add_action("r", [], "p")
        graph = build_km_graph(vass, "p")
        node, component = accepting_cycle(graph, lambda n: n.state == "q")
        steps = cycle_path(node, component)
        # the cycle leaves `node` and returns to it, visiting each state once
        assert steps[-1][1] is node
        assert [s[1].state for s in steps] == ["r", "p", "q"]

    def test_omega_accelerated_component(self):
        """A consuming loop is repeatable only thanks to ω-acceleration:
        the cycle lives at the accelerated label and cycle_path orders it."""
        vass = VASS(dimension=1)
        vass.add_action("p", [1], "p")
        vass.add_action("p", [0], "q")
        vass.add_action("q", [-1], "q2")
        vass.add_action("q2", [0], "q")
        found = repeated_reachable(vass, "p", lambda n: n.state == "q")
        assert found is not None
        node, component = found
        assert dict(node.vector).get(0) == OMEGA  # accelerated
        graph = build_km_graph(vass, "p")
        node2, component2 = accepting_cycle(graph, lambda n: n.state == "q")
        steps = cycle_path(node2, component2)
        assert steps[-1][1] is node2
        assert {s[1].state for s in steps} == {"q", "q2"}
        # every node on the cycle carries the pumped ω coordinate
        assert all(dict(s[1].vector).get(0) == OMEGA for s in steps)

    def test_node_off_cycle_raises(self):
        vass = VASS(dimension=0)
        vass.add_action("p", [], "q")
        vass.add_action("q", [], "q")
        graph = build_km_graph(vass, "p")
        start = graph.roots[0]
        with pytest.raises(ValueError):
            cycle_path(start, [start])
