"""HLTL-FO structure, validation, and evaluation on trees of local runs."""

from fractions import Fraction

import pytest

from repro.database.instance import Identifier
from repro.errors import SpecificationError
from repro.examples.travel import travel_lite
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.hltl.eval_tree import evaluate_on_tree
from repro.hltl.formulas import (
    HLTLProperty,
    HLTLSpec,
    SetAtom,
    child,
    cond,
    service,
    validate_property,
)
from repro.logic.conditions import Eq, Not, TRUE
from repro.logic.terms import NULL, id_var, num_var
from repro.ltl.formulas import Always, Eventually, TrueF
from repro.runtime import labels
from repro.runtime.local_run import LocalRun, Step
from repro.runtime.state import TaskState, initial_state
from repro.runtime.tree import RunTree, RunTreeNode


@pytest.fixture
def mini_has(travel_schema):
    c_x = id_var("c_x")
    p_y = id_var("p_y")
    child_task = Task(
        name="C",
        variables=(c_x,),
        services=(InternalService("pick", post=Not(Eq(c_x, NULL))),),
        opening=OpeningService(pre=TRUE, input_map={}),
        closing=ClosingService(pre=Not(Eq(c_x, NULL)), output_map={p_y: c_x}),
    )
    root = Task(name="R", variables=(p_y,), children=(child_task,))
    return HAS(travel_schema, root)


def build_tree(mini_has):
    root = mini_has.root
    child_task = root.child("C")
    f1 = Identifier("FLIGHTS", "f1")
    c0 = initial_state(child_task, {})
    c1 = TaskState({id_var("c_x"): f1})
    child_run = LocalRun(
        child_task,
        {},
        [
            Step(c0, labels.opening("C")),
            Step(c1, labels.internal("C", "pick")),
            Step(c1, labels.closing("C")),
        ],
    )
    r0 = initial_state(root, {})
    r1 = TaskState({id_var("p_y"): f1})
    root_run = LocalRun(
        root,
        {},
        [
            Step(r0, labels.opening("R")),
            Step(r0, labels.opening("C")),
            Step(r1, labels.closing("C")),
        ],
        complete=False,
    )
    return RunTree(RunTreeNode(root_run, {1: RunTreeNode(child_run)}))


class TestValidation:
    def test_wrong_root_task(self, mini_has):
        prop = HLTLProperty(HLTLSpec("C", TrueF()))
        with pytest.raises(SpecificationError):
            validate_property(prop, mini_has)

    def test_out_of_scope_condition(self, mini_has):
        foreign = id_var("zzz")
        prop = HLTLProperty(HLTLSpec("R", cond(Eq(foreign, NULL))))
        with pytest.raises(SpecificationError, match="out-of-scope"):
            validate_property(prop, mini_has)

    def test_child_condition_scoped_to_child(self, mini_has):
        prop = HLTLProperty(
            HLTLSpec("R", child("C", cond(Eq(id_var("c_x"), NULL))))
        )
        validate_property(prop, mini_has)

    def test_non_child_reference_rejected(self, mini_has):
        prop = HLTLProperty(HLTLSpec("R", child("X", TrueF())))
        with pytest.raises(SpecificationError):
            validate_property(prop, mini_has)

    def test_travel_property_validates(self):
        from repro.examples.travel import discount_policy_property_lite

        has = travel_lite()
        validate_property(discount_policy_property_lite(has), has)


class TestEvaluation:
    def test_service_proposition(self, mini_has, travel_db):
        tree = build_tree(mini_has)
        spec = HLTLSpec("R", Eventually(service(labels.closing("C"))))
        assert evaluate_on_tree(spec, tree, travel_db)

    def test_condition_on_parent(self, mini_has, travel_db):
        tree = build_tree(mini_has)
        spec = HLTLSpec("R", Eventually(cond(Not(Eq(id_var("p_y"), NULL)))))
        assert evaluate_on_tree(spec, tree, travel_db)
        spec2 = HLTLSpec("R", Always(cond(Eq(id_var("p_y"), NULL))))
        assert not evaluate_on_tree(spec2, tree, travel_db)

    def test_child_formula(self, mini_has, travel_db):
        tree = build_tree(mini_has)
        inner = Eventually(cond(Not(Eq(id_var("c_x"), NULL))))
        spec = HLTLSpec("R", Eventually(child("C", inner)))
        assert evaluate_on_tree(spec, tree, travel_db)
        bad_inner = Always(cond(Eq(id_var("c_x"), NULL)))
        spec2 = HLTLSpec("R", Eventually(child("C", bad_inner)))
        assert not evaluate_on_tree(spec2, tree, travel_db)

    def test_child_prop_false_off_openings(self, mini_has, travel_db):
        tree = build_tree(mini_has)
        # [ψ]_C holds only AT the position opening C
        spec = HLTLSpec("R", child("C", TrueF()))
        # position 0 is σ^o_R, not an opening of C
        assert not evaluate_on_tree(spec, tree, travel_db)

    def test_global_variables(self, mini_has, travel_db):
        tree = build_tree(mini_has)
        g = id_var("g")
        spec = HLTLSpec("R", Eventually(cond(Eq(id_var("p_y"), g))))
        f1 = Identifier("FLIGHTS", "f1")
        f2 = Identifier("FLIGHTS", "f2")
        assert evaluate_on_tree(spec, tree, travel_db, {g: f1})
        assert not evaluate_on_tree(spec, tree, travel_db, {g: f2})

    def test_set_atom_against_contents(self, travel_schema, travel_db):
        s = id_var("s")
        g = id_var("g")
        root = Task(
            name="T",
            variables=(s,),
            set_variables=(s,),
            services=(InternalService("noop"),),
        )
        has = HAS(travel_schema, root)
        f1 = Identifier("FLIGHTS", "f1")
        state = TaskState({s: None}, frozenset({(f1,)}))
        run = LocalRun(
            root, {}, [Step(state, labels.opening("T"))], complete=False
        )
        tree = RunTree(RunTreeNode(run))
        spec = HLTLSpec("T", cond(SetAtom("T", (g,))))
        assert evaluate_on_tree(spec, tree, travel_db, {g: f1})
        assert not evaluate_on_tree(
            spec, tree, travel_db, {g: Identifier("FLIGHTS", "f2")}
        )
