"""TS-isomorphism types: totalization, input-boundedness, imposition."""

import pytest

from repro.logic.terms import id_var
from repro.symbolic.store import ConstraintStore
from repro.symbolic.tstypes import (
    TSType,
    impose_ts_type,
    ts_slots,
    ts_type_of,
)

s1, s2 = id_var("s1"), id_var("s2")
inp = id_var("inp")


@pytest.fixture
def store(travel_schema):
    return ConstraintStore(travel_schema)


class TestTotalization:
    def test_fully_decided_store_yields_one_type(self, store):
        store.assert_null(store.node_of(s1))
        store.assert_anchor(store.node_of(s2), "HOTELS")
        types = list(ts_type_of(store, (s1, s2)))
        assert len(types) == 1
        ts, _refined = types[0]
        assert ts.nulls[ts.partition[0]] is True
        assert ts.anchors[ts.partition[1]] == "HOTELS"

    def test_undecided_store_branches(self, store):
        store.node_of(s1)
        store.node_of(s2)
        types = list(ts_type_of(store, (s1, s2)))
        # s1=s2? × null? × anchor ∈ {FLIGHTS, HOTELS}: several total types
        keys = {ts for ts, _ in types}
        assert len(keys) == len(types) >= 5

    def test_branches_are_refinements(self, store):
        for ts, refined in ts_type_of(store, (s1, s2)):
            assert refined.is_consistent()
            # re-reading the type from the refined store is stable
            again = list(ts_type_of(refined, (s1, s2)))
            assert len(again) == 1
            assert again[0][0] == ts

    def test_anchored_equality_consistency(self, store):
        store.assert_anchor(store.node_of(s1), "FLIGHTS")
        store.assert_anchor(store.node_of(s2), "HOTELS")
        types = list(ts_type_of(store, (s1, s2)))
        # different ID domains: never equal
        for ts, _ in types:
            assert ts.partition[0] != ts.partition[1]


class TestInputBound:
    def test_input_bound_detection(self):
        # slot 0 (set var) equal to slot 1 (input): input-bound
        ts = TSType(("s1", "inp"), (0, 0), (False,), ("HOTELS",))
        assert ts.is_input_bound(set_slot_count=1)

    def test_null_set_slot_is_input_bound(self):
        ts = TSType(("s1", "inp"), (0, 1), (True, False), (None, "HOTELS"))
        assert ts.is_input_bound(set_slot_count=1)

    def test_fresh_value_not_input_bound(self):
        ts = TSType(("s1", "inp"), (0, 1), (False, False), ("HOTELS", "HOTELS"))
        assert not ts.is_input_bound(set_slot_count=1)


class TestImposition:
    def test_impose_rebinds_and_constrains(self, store):
        store.assert_anchor(store.node_of(inp), "HOTELS")
        ts = TSType(("s1", "inp"), (0, 0), (False,), ("HOTELS",))
        refined = impose_ts_type(store, ts, (s1, inp), fresh_slots=(s1,))
        assert refined is not None
        assert refined.equal(refined.node_of(s1), refined.node_of(inp)) is True

    def test_impose_conflicting_type_fails(self, store):
        store.assert_anchor(store.node_of(inp), "FLIGHTS")
        # type says inp is anchored to HOTELS: impossible
        ts = TSType(("s1", "inp"), (0, 1), (False, False), ("HOTELS", "HOTELS"))
        assert impose_ts_type(store, ts, (s1, inp), fresh_slots=(s1,)) is None

    def test_ts_slots_filters_numeric_inputs(self):
        from repro.logic.terms import num_var

        slots = ts_slots((s1,), (inp, num_var("amount")))
        assert slots == (s1, inp)
