"""Interleaving invariance: HLTL-FO evaluation is a function of the tree,
and all linearizations of a tree agree on HLTL-FO verdicts — the property
motivating HLTL-FO in Section 3 (Theorem 27's easy direction)."""

from fractions import Fraction

import pytest

from repro.database.instance import Identifier
from repro.examples.travel import travel_database, travel_lite
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.hltl.eval_tree import evaluate_on_tree
from repro.hltl.formulas import HLTLProperty, HLTLSpec, child, cond, service
from repro.logic.conditions import Eq, Not, TRUE
from repro.logic.terms import NULL, id_var
from repro.ltl.formulas import Always, Eventually, TrueF
from repro.runtime import labels
from repro.runtime.global_run import count_linearizations, linearize
from repro.runtime.local_run import LocalRun, Step
from repro.runtime.simulator import SimulationConfig, Simulator
from repro.runtime.state import TaskState, initial_state
from repro.runtime.tree import RunTree, RunTreeNode, validate_run_tree


@pytest.fixture
def two_children_has(travel_schema):
    """Root with two independent children A and B: interleavings exist."""
    a_x, b_x = id_var("a_x"), id_var("b_x")
    make_child = lambda name, var: Task(
        name=name,
        variables=(var,),
        services=(InternalService("w", post=TRUE),),
        opening=OpeningService(pre=TRUE, input_map={}),
        closing=ClosingService(pre=TRUE, output_map={}),
    )
    root = Task(
        name="R",
        variables=(id_var("r_x"),),
        children=(make_child("A", a_x), make_child("B", b_x)),
    )
    return HAS(travel_schema, root)


def build_concurrent_tree(has):
    root = has.root
    task_a, task_b = root.child("A"), root.child("B")
    s0 = initial_state(root, {})

    def child_run(task):
        c0 = initial_state(task, {})
        return LocalRun(
            task,
            {},
            [
                Step(c0, labels.opening(task.name)),
                Step(c0, labels.internal(task.name, "w")),
                Step(c0, labels.closing(task.name)),
            ],
        )

    root_run = LocalRun(
        root,
        {},
        [
            Step(s0, labels.opening("R")),
            Step(s0, labels.opening("A")),
            Step(s0, labels.opening("B")),
            Step(s0, labels.closing("A")),
            Step(s0, labels.closing("B")),
        ],
        complete=False,
    )
    return RunTree(
        RunTreeNode(
            root_run,
            {1: RunTreeNode(child_run(task_a)), 2: RunTreeNode(child_run(task_b))},
        )
    )


class TestInterleavings:
    def test_multiple_linearizations_exist(self, two_children_has, travel_db):
        tree = build_concurrent_tree(two_children_has)
        validate_run_tree(tree, travel_db)
        assert count_linearizations(two_children_has, tree) > 1

    def test_tree_verdict_is_linearization_independent(
        self, two_children_has, travel_db
    ):
        """HLTL-FO is evaluated on the tree; the verdict trivially agrees
        across every interleaving — here we check the interleavings do
        differ as sequences while the tree verdict is unique."""
        tree = build_concurrent_tree(two_children_has)
        runs = list(linearize(two_children_has, tree, limit=None))
        sequences = {tuple(repr(c.service) for c in run) for run in runs}
        assert len(sequences) == len(runs) > 1
        spec = HLTLSpec(
            "R",
            Eventually(child("A", TrueF())) & Eventually(child("B", TrueF())),
        )
        assert evaluate_on_tree(spec, tree, travel_db)

    def test_stage_bookkeeping_consistent(self, two_children_has, travel_db):
        tree = build_concurrent_tree(two_children_has)
        for run in linearize(two_children_has, tree, limit=None):
            from repro.runtime.global_run import Stage

            open_count = {"A": 0, "B": 0}
            for config in run:
                for name in ("A", "B"):
                    if (
                        config.service == labels.opening(name)
                        and config.stages[name] is Stage.ACTIVE
                    ):
                        open_count[name] += 1
            assert open_count == {"A": 1, "B": 1}


@pytest.mark.slow
class TestSimulatedInterleavings:
    def test_simulated_travel_trees_have_concurrency(self):
        """The buggy travel-lite admits trees where AddHotel and Cancel are
        simultaneously active — the concurrency the policy bug needs."""
        has = travel_lite(fixed=False)
        db = travel_database()
        sim = Simulator(has, db, SimulationConfig(max_steps=30, seed=2))
        concurrent = False
        for tree in sim.sample_trees(20):
            run = tree.root.run
            active = set()
            for step in run.steps:
                if step.service.is_opening and step.service.task != "ManageTrips":
                    active.add(step.service.task)
                elif step.service.is_closing and step.service.task in active:
                    active.discard(step.service.task)
                if {"AddHotel", "Cancel"} <= active:
                    concurrent = True
        assert concurrent
