"""The concrete counterexample pipeline (``repro.witness``): symbolic
witness → materialized database + run → simulator/LTL replay → minimized
trace, plus its integration into results, jobs, and the CLI."""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.database.fkgraph import SchemaClass
from repro.database.instance import Identifier
from repro.database.schema import DatabaseSchema, Relation, numeric
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.hltl.formulas import HLTLProperty, HLTLSpec, cond, service
from repro.logic.conditions import ArithAtom, Eq, Not, Or, RelationAtom, FALSE, TRUE
from repro.logic.terms import Const, NULL, id_var, num_var
from repro.ltl.formulas import Always, Eventually, NotF
from repro.runtime import labels
from repro.service.cli import main as cli_main
from repro.service.pool import execute_job
from repro.service.jobs import VerificationJob
from repro.verifier import VerifierConfig, verify
from repro.witness import (
    ConcreteWitness,
    NonConcretizable,
    attach_to_result,
    concretize,
)
from repro.workloads import table1_workload, table2_workload

CONFIG = VerifierConfig(km_budget=30_000)

DB = DatabaseSchema((Relation("ITEMS", (numeric("price"),)),))


def flat_task(*services, variables, opening=None):
    return Task(
        name="T1",
        variables=variables,
        services=services,
        opening=opening or OpeningService(),
        closing=ClosingService(),
    )


def _violating_flat():
    x = num_var("x")
    step = InternalService("step", post=Eq(x, Const(Fraction(1))))
    has = HAS(DB, flat_task(step, variables=(x,)))
    prop = HLTLProperty(
        HLTLSpec("T1", Always(cond(Eq(x, Const(Fraction(0)))))), name="x-zero"
    )
    return has, prop


class TestLassoConcretization:
    def test_confirmed_and_minimized(self):
        has, prop = _violating_flat()
        result = verify(has, prop, CONFIG)
        assert not result.holds and result.witness_kind == "lasso"
        assert result.loop_start is not None
        witness = concretize(has, prop, result)
        assert isinstance(witness, ConcreteWitness)
        assert witness.confirmed
        assert witness.checks["simulator_replay"]
        assert witness.checks["ltl_reference"]
        assert witness.checks["lasso_seam"]
        # never longer than the raw symbolic path
        assert len(witness.steps) <= witness.raw_length

    def test_seam_is_periodic(self):
        has, prop = _violating_flat()
        result = verify(has, prop, CONFIG)
        witness = concretize(has, prop, result)
        assert witness.loop_start is not None
        entry = witness.steps[witness.loop_start - 1]
        exit_ = witness.steps[-1]
        assert dict(entry.valuation) == dict(exit_.valuation)
        assert entry.set_contents == exit_.set_contents

    def test_values_shrunk_toward_zero(self):
        """The violating value x=1 needs |x| ≥ something nonzero, but the
        minimizer must not leave gratuitously large rationals around."""
        x = num_var("x")
        step = InternalService(
            "step", post=ArithAtom(compare(linvar(x), Rel.GE, linconst(1000)))
        )
        has = HAS(DB, flat_task(step, variables=(x,)))
        prop = HLTLProperty(
            HLTLSpec("T1", Always(cond(ArithAtom(compare(linvar(x), Rel.LE, linconst(5)))))),
            name="bounded",
        )
        result = verify(has, prop, CONFIG)
        witness = concretize(has, prop, result)
        assert witness.confirmed
        values = {
            Fraction(v)
            for s in witness.steps
            for v in s.valuation.values()
            if v is not None and not isinstance(v, Identifier)
        }
        # 1000 is the least violating magnitude the post admits; nothing
        # larger survives minimization
        assert max(abs(v) for v in values) == 1000


class TestBlockingConcretization:
    def test_blocking_shape_preserved(self):
        c_x = id_var("c_x")
        p_x = id_var("p_x")
        child_ = Task(
            name="C",
            variables=(c_x,),
            services=(InternalService("spin", post=TRUE),),
            opening=OpeningService(pre=TRUE, input_map={}),
            closing=ClosingService(pre=FALSE),  # never returns
        )
        root = Task(name="R", variables=(p_x,), services=(), children=(child_,))
        has = HAS(DB, root)
        prop = HLTLProperty(
            HLTLSpec("R", NotF(Eventually(service(labels.opening("C"))))),
            name="never-open-C",
        )
        result = verify(has, prop, CONFIG)
        assert not result.holds and result.witness_kind == "blocking"
        witness = concretize(has, prop, result)
        assert isinstance(witness, ConcreteWitness)
        assert witness.confirmed
        assert witness.checks["blocking_shape"]
        # the opening of the ⊥ child is structural: minimization keeps it
        assert any(s.assumed_nonreturning for s in witness.steps)

    def test_database_rows_materialized(self):
        """A violating run through relation atoms yields rows that make
        the post-conditions concretely true."""
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True)
        result = verify(spec.has, spec.prop, VerifierConfig(km_budget=60_000))
        witness = concretize(spec.has, spec.prop, result)
        assert isinstance(witness, ConcreteWitness)
        assert witness.confirmed
        assert witness.database.size() > 0
        witness.database.validate()
        # the violating step binds the cursor to a real row with p ≠ 0
        cursor, price = spec.has.root.variables[0], spec.has.root.variables[1]
        violating = [
            s for s in witness.steps if s.valuation.get(price) not in (None, 0)
        ]
        assert violating
        ident = violating[0].valuation[cursor]
        assert isinstance(ident, Identifier)
        assert witness.database.lookup(ident) is not None


class TestPersistentFacts:
    def test_inputs_constant_and_satisfy_precondition(self):
        x = num_var("x")
        idle = InternalService("idle", post=TRUE)
        root = Task(
            name="T1",
            variables=(x,),
            services=(idle,),
            opening=OpeningService(pre=TRUE, input_map={x: x}),
            closing=ClosingService(),
        )
        has = HAS(
            DB, root,
            precondition=ArithAtom(compare(linvar(x), Rel.GE, linconst(7))),
        )
        prop = HLTLProperty(
            HLTLSpec("T1", Always(cond(Eq(x, Const(Fraction(0)))))), name="x-zero"
        )
        result = verify(has, prop, CONFIG)
        assert not result.holds
        witness = concretize(has, prop, result)
        assert isinstance(witness, ConcreteWitness) and witness.confirmed
        values = {s.valuation[x] for s in witness.steps}
        assert len(values) == 1  # the input never changes
        assert Fraction(values.pop()) >= 7  # …and satisfies Π

    def test_set_workload_concretizes(self):
        spec = table2_workload(
            SchemaClass.ACYCLIC, depth=2, with_sets=True, violated=True
        )
        result = verify(spec.has, spec.prop, VerifierConfig(km_budget=60_000))
        witness = concretize(spec.has, spec.prop, result)
        assert isinstance(witness, ConcreteWitness)
        assert witness.confirmed


class TestReporting:
    def test_attach_to_result_bindings(self):
        has, prop = _violating_flat()
        result = verify(has, prop, CONFIG)
        witness = concretize(has, prop, result)
        attach_to_result(result, witness)
        assert result.witness
        assert all(step.bindings for step in result.witness)
        rendered = result.explain()
        assert "x=" in rendered
        assert "repeat forever" in rendered

    def test_explain_marks_loop(self):
        has, prop = _violating_flat()
        result = verify(has, prop, CONFIG)
        text = result.explain()
        assert "↻" in text
        assert "repeat forever" in text
        # the sentinel pseudo-step is gone
        assert "(cycle)" not in text

    def test_witness_json_shape(self):
        has, prop = _violating_flat()
        result = verify(has, prop, CONFIG)
        witness = concretize(has, prop, result)
        data = witness.to_dict()
        json.dumps(data)  # JSON-serializable throughout
        assert data["status"] == "confirmed"
        assert data["kind"] == "lasso"
        assert data["minimized_length"] <= data["raw_length"]
        assert data["steps"][0]["service"].startswith("σ^o")
        assert all(c is True for c in data["checks"].values())

    def test_job_outcome_carries_witness_json(self):
        has, prop = _violating_flat()
        job = VerificationJob(has=has, prop=prop, config=CONFIG)
        outcome = execute_job(job)
        assert outcome.status == "violated"
        assert outcome.witness_json is not None
        assert outcome.witness_json["status"] == "confirmed"
        assert outcome.loop_start is not None
        # witness strings carry concrete bindings
        assert any("x=" in line for line in outcome.witness)

    def test_concretization_can_be_disabled(self):
        has, prop = _violating_flat()
        config = VerifierConfig(km_budget=30_000, concretize_witnesses=False)
        outcome = execute_job(VerificationJob(has=has, prop=prop, config=config))
        assert outcome.status == "violated"
        assert outcome.witness_json is None

    def test_held_property_rejects_concretize(self):
        x = num_var("x")
        step = InternalService("step", post=Eq(x, Const(Fraction(1))))
        has = HAS(DB, flat_task(step, variables=(x,)))
        prop = HLTLProperty(
            HLTLSpec(
                "T1",
                Always(cond(Or(Eq(x, Const(Fraction(0))), Eq(x, Const(Fraction(1)))))),
            )
        )
        result = verify(has, prop, CONFIG)
        assert result.holds
        with pytest.raises(ValueError):
            concretize(has, prop, result)

    def test_missing_trace_is_non_concretizable(self):
        has, prop = _violating_flat()
        result = verify(has, prop, CONFIG)
        result.symbolic_trace = None  # e.g. result crossed a process boundary
        witness = concretize(has, prop, result)
        assert isinstance(witness, NonConcretizable)
        assert "trace" in witness.reason


class TestExplainCLI:
    def test_explain_violating_suite_job(self, capsys):
        code = cli_main(["explain", "quick/acyclic-h2-violation"])
        out = capsys.readouterr().out
        assert code == 1
        assert "concrete" in out
        assert "simulator_replay: ok" in out

    def test_explain_holds(self, capsys):
        code = cli_main(["explain", "quick/acyclic-h2-safety"])
        out = capsys.readouterr().out
        assert code == 0
        assert "HOLDS" in out

    def test_explain_export(self, tmp_path, capsys):
        target = tmp_path / "witness.json"
        code = cli_main(
            ["explain", "quick/acyclic-h2-violation", "--export", str(target)]
        )
        capsys.readouterr()
        assert code == 1
        data = json.loads(target.read_text())
        assert data["status"] == "confirmed"
        assert data["database"]
