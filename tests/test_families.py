"""The parametric scenario families (``repro.workloads.families``).

Contracts:

* the checked-in ``.has`` files are exactly what the generator emits
  (drift test — edit the generator, rerun ``write_family_files()``);
* every family at every shipped size verifies to its documented
  verdict, and violated verdicts carry a confirmed concrete witness;
* every family scenario round-trips losslessly through the DSL printer
  and parser with a stable job content hash (the serialized-dict form
  and the parsed-text form hash identically);
* the ``families`` suite exposes the full size sweep, ``--quick``
  keeps the smallest size of each family, and ``mixed`` includes it;
* gallery + families together ship the 100+ scenario contract.
"""

from __future__ import annotations

import pytest

from repro.dsl import loads
from repro.service.jobs import STATUS_VIOLATED, VerificationJob
from repro.service.pool import execute_job
from repro.service.serialize import canonical_json, from_dict, to_dict
from repro.service.suites import build_suite, suite_names
from repro.workloads.families import (
    FAMILY_SIZES,
    build_family,
    families_dir,
    family_names,
    family_scenarios,
    render_family_scenario,
    write_family_files,
)

SCENARIOS = family_scenarios()
_IDS = [sc.name for sc in SCENARIOS]


def test_family_inventory():
    assert set(family_names()) == {"billing", "order_fulfillment", "ticketing"}
    assert len(SCENARIOS) == sum(len(sizes) for sizes in FAMILY_SIZES.values())
    # every scenario documents one holding and one violated property
    for sc in SCENARIOS:
        assert [expect for _, expect in sc.properties].count("holds") == 1
        assert [expect for _, expect in sc.properties].count("violated") == 1


def test_unknown_family_raises():
    with pytest.raises(KeyError):
        build_family("no-such-family", 1)


def test_checked_in_files_match_the_generator(tmp_path):
    generated = {p.name: p.read_text() for p in write_family_files(tmp_path)}
    checked_in = {p.name: p.read_text() for p in sorted(families_dir().glob("*.has"))}
    assert generated.keys() == checked_in.keys(), (
        "family file set drifted: rerun "
        "python -c 'from repro.workloads.families import write_family_files; "
        "write_family_files()'"
    )
    for name in generated:
        assert generated[name] == checked_in[name], (
            f"{name} drifted from its generator — regenerate with "
            f"write_family_files(), never edit the .has by hand"
        )


@pytest.mark.parametrize("scenario", SCENARIOS, ids=_IDS)
class TestFamilyScenario:
    def test_round_trips_losslessly_through_the_dsl(self, scenario):
        doc = loads(render_family_scenario(scenario), source=scenario.name)
        assert canonical_json(to_dict(doc.system)) == canonical_json(
            to_dict(scenario.has)
        )
        assert len(doc.properties) == len(scenario.properties)
        for entry, (prop, expect) in zip(doc.properties, scenario.properties):
            assert canonical_json(to_dict(entry.prop)) == canonical_json(
                to_dict(prop)
            )
            assert entry.expect == expect

    def test_job_hash_is_stable_across_forms(self, scenario):
        doc = loads(render_family_scenario(scenario), source=scenario.name)
        for job in doc.jobs():
            rebuilt = VerificationJob(
                has=from_dict(to_dict(job.has)),
                prop=from_dict(to_dict(job.prop)),
                config=from_dict(to_dict(job.config)),
            )
            assert rebuilt.key() == job.key()


class TestFamilySuite:
    def test_registered_with_full_size_sweep(self):
        assert "families" in suite_names()
        jobs = build_suite("families")
        assert len(jobs) == 2 * len(SCENARIOS)
        assert len({job.key() for job in jobs}) == len(jobs)

    def test_quick_keeps_the_smallest_size_of_each_family(self):
        quick = build_suite("families", quick=True)
        assert len(quick) == 2 * len(FAMILY_SIZES)
        smallest = {
            build_family(family, min(sizes)).has.name
            for family, sizes in FAMILY_SIZES.items()
        }
        assert {job.name.split("::", 1)[0] for job in quick} == smallest

    def test_mixed_suite_includes_families(self):
        mixed = {job.key() for job in build_suite("mixed")}
        assert {job.key() for job in build_suite("families")} <= mixed

    def test_every_size_verifies_to_its_documented_verdict(self):
        for job in build_suite("families"):
            outcome = execute_job(job)
            assert outcome.status == job.expected_status, (
                f"{job.name}: documented {job.expected_status}, got "
                f"{outcome.status} ({outcome.error})"
            )
            if outcome.status == STATUS_VIOLATED:
                assert outcome.witness_json is not None
                assert outcome.witness_json.get("status") == "confirmed", (
                    f"{job.name}: violated without a confirmed witness"
                )


def test_gallery_plus_families_ship_one_hundred_scenarios():
    total = len(build_suite("gallery")) + len(build_suite("families"))
    assert total >= 100, (
        f"the shipped scenario set shrank to {total} jobs — the gallery "
        f"promotion + families contract is 100+"
    )
