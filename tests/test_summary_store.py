"""Cross-job summary reuse: the persistent store tier, its codec, the
reuse-parity contract (warm runs are observationally invisible), and the
summary-limit soundness fixes that rode along.

The edit-adjacent pairs come from the fuzzer's grow operators
(:func:`repro.fuzz.gen.grow_scenarios`): a base scenario plus an
``add service`` mutant is exactly the "verify, edit one service,
re-verify" workflow the store accelerates.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import BudgetExceeded
from repro.fuzz.gen import GenConfig, generate_scenario, grow_scenarios
from repro.service.cache import SummaryStore
from repro.service.jobs import (
    STATUS_BUDGET_EXCEEDED,
    VerificationJob,
)
from repro.service.pool import execute_job
from repro.service.summaries import decode_record
from repro.verifier import Verifier, VerifierConfig

CONFIG = VerifierConfig(km_budget=60_000, time_limit_seconds=60.0)
GEN_CONFIG = GenConfig(max_depth=3, max_children=2)


def _scenario(seed: int, index: int = 0):
    return generate_scenario(seed, index, GEN_CONFIG)


def _edited(scenario):
    """The first single-service edit of ``scenario`` (deterministic)."""
    return next(
        m
        for m in grow_scenarios(scenario, limit=12)
        if m.mutations[-1].startswith("add service")
    )


def _job(scenario, config: VerifierConfig = CONFIG) -> VerificationJob:
    return VerificationJob(
        has=scenario.has, prop=scenario.prop, config=config, name=scenario.name
    )


# ----------------------------------------------------------------------
# store tier (same contracts as ResultCache)
# ----------------------------------------------------------------------
class TestSummaryStoreTier:
    def test_roundtrip_and_contains(self, tmp_path):
        store = SummaryStore(tmp_path)
        record = {"v": 1, "payload": [1, 2, 3]}
        assert store.get("ab" + "0" * 62) is None
        store.put("ab" + "0" * 62, record)
        assert "ab" + "0" * 62 in store
        assert len(store) == 1
        # a fresh handle over the same directory sees the record
        fresh = SummaryStore(tmp_path)
        assert fresh.get("ab" + "0" * 62) == record

    def test_corrupt_file_is_miss_not_exception(self, tmp_path):
        store = SummaryStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, {"v": 1})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text('{"v": 1, "trunca')  # torn write / disk corruption
        fresh = SummaryStore(tmp_path)
        assert fresh.get(key) is None
        assert fresh.misses == 1

    def test_non_dict_json_is_miss(self, tmp_path):
        store = SummaryStore(tmp_path)
        key = "ef" + "0" * 62
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text("[1, 2, 3]")
        assert store.get(key) is None

    def test_memory_only_store(self):
        store = SummaryStore()
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}
        assert len(store) == 1
        store.clear()
        assert store.get("k") is None


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_persisted_records_decode_and_validate(self):
        sc = _scenario(6, 0)
        store = SummaryStore()
        Verifier(sc.has, CONFIG, summary_store=store).verify(sc.prop)
        assert len(store._memory) > 0
        for record in store._memory.values():
            decoded = decode_record(record, sc.has.database)
            assert decoded is not None
            root_key, entries = decoded
            # the root entry is last, and every entry's decoded outputs
            # already passed the canonical-key integrity check
            assert entries[-1][0] == root_key
            for _key, outputs, nonreturning, km_nodes, _deps in entries:
                assert isinstance(nonreturning, bool)
                assert km_nodes >= 0
                for out_key, out_store in outputs.items():
                    assert out_store.canonical_key() == out_key

    def test_records_survive_json_roundtrip(self):
        sc = _scenario(1, 1)
        store = SummaryStore()
        Verifier(sc.has, CONFIG, summary_store=store).verify(sc.prop)
        for record in store._memory.values():
            wire = json.loads(json.dumps(record, sort_keys=True))
            assert decode_record(wire, sc.has.database) is not None

    @pytest.mark.parametrize(
        "tamper",
        [
            lambda r: r.update(v=99),
            lambda r: r.update(root=len(r["entries"])),
            lambda r: r["entries"][-1].update(km_nodes=-1),
            lambda r: r["entries"][-1].update(outputs=[["nope", {}]]),
            lambda r: r.pop("entries"),
        ],
    )
    def test_tampered_record_is_rejected_not_raised(self, tamper):
        sc = _scenario(1, 1)
        store = SummaryStore()
        Verifier(sc.has, CONFIG, summary_store=store).verify(sc.prop)
        key = next(iter(store._memory))
        record = json.loads(json.dumps(store._memory[key]))
        tamper(record)
        assert decode_record(record, sc.has.database) is None


# ----------------------------------------------------------------------
# reuse parity: warm runs are observationally invisible
# ----------------------------------------------------------------------
class TestReuseParity:
    @pytest.mark.parametrize("seed,index", [(1, 1), (6, 0), (7, 1)])
    def test_edited_warm_matches_cold_semantics(self, seed, index):
        base = _scenario(seed, index)
        edited = _edited(base)
        cold = execute_job(_job(edited))
        store = SummaryStore()
        execute_job(_job(base), summary_store=store)
        warm = execute_job(_job(edited), summary_store=store)
        # verdict, witness, km/summary totals: byte-identical
        assert warm.semantic_bytes() == cold.semantic_bytes()
        # the untouched subtrees really came from the store…
        stats = warm.stats or {}
        assert stats.get("summaries_reused", 0) > 0
        assert (warm.counters or {}).get("summary_store_hits", 0) > 0
        # …so the warm run explored strictly fewer fresh KM nodes
        fresh = warm.km_nodes - stats.get("km_nodes_reused", 0)
        assert fresh < cold.km_nodes

    def test_unedited_reverify_reuses_every_summary(self):
        sc = _scenario(6, 0)
        store = SummaryStore()
        cold = execute_job(_job(sc), summary_store=store)
        warm = execute_job(_job(sc), summary_store=store)
        assert warm.semantic_bytes() == cold.semantic_bytes()
        stats = warm.stats or {}
        assert stats.get("summaries_reused") == warm.summaries > 0
        assert stats.get("km_nodes_reused") > 0

    def test_reuse_across_directory_backed_processes(self, tmp_path):
        """A store directory filled by one handle is warm for a fresh
        handle — the cross-job (and cross-process) contract."""
        base = _scenario(6, 0)
        edited = _edited(base)
        execute_job(_job(base), summary_store=SummaryStore(tmp_path))
        cold = execute_job(_job(edited))
        warm = execute_job(_job(edited), summary_store=SummaryStore(tmp_path))
        assert warm.semantic_bytes() == cold.semantic_bytes()
        assert (warm.stats or {}).get("summaries_reused", 0) > 0

    def test_corrupt_store_degrades_to_cold_never_raises(self, tmp_path):
        base = _scenario(1, 1)
        execute_job(_job(base), summary_store=SummaryStore(tmp_path))
        files = sorted(tmp_path.glob("*/*.json"))
        assert files
        for path in files:
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        cold = execute_job(_job(base))
        warm = execute_job(_job(base), summary_store=SummaryStore(tmp_path))
        assert warm.status == cold.status
        assert warm.semantic_bytes() == cold.semantic_bytes()
        assert (warm.stats or {}).get("summaries_reused", 0) == 0
        assert (warm.counters or {}).get("summary_store_misses", 0) > 0

    def test_config_change_invalidates_by_construction(self):
        """Key-relevant config fields participate in the persistent key,
        so a run under a different budget never sees foreign records."""
        sc = _scenario(1, 1)
        store = SummaryStore()
        execute_job(_job(sc), summary_store=store)
        other = VerifierConfig(km_budget=59_999, time_limit_seconds=60.0)
        warm = execute_job(_job(sc, other), summary_store=store)
        assert (warm.stats or {}).get("summaries_reused", 0) == 0

    def test_hashseed_stable_store_bytes(self, tmp_path):
        """The persisted keys and record bytes must not depend on
        PYTHONHASHSEED (set iteration order, dict seeding)."""
        script = (
            "import sys\n"
            "from repro.fuzz.gen import GenConfig, generate_scenario\n"
            "from repro.service.cache import SummaryStore\n"
            "from repro.verifier import Verifier, VerifierConfig\n"
            "sc = generate_scenario(6, 0, GenConfig(max_depth=3, max_children=2))\n"
            "cfg = VerifierConfig(km_budget=60_000, time_limit_seconds=60.0)\n"
            "Verifier(sc.has, cfg, summary_store=SummaryStore(sys.argv[1]))"
            ".verify(sc.prop)\n"
        )
        digests = []
        for hashseed in ("1", "2"):
            out = tmp_path / f"store-{hashseed}"
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (str(Path("src").resolve()), env.get("PYTHONPATH")) if p
            )
            subprocess.run(
                [sys.executable, "-c", script, str(out)],
                check=True,
                env=env,
                cwd=Path(__file__).resolve().parent.parent,
            )
            digest = {
                f"{path.parent.name}/{path.name}": hashlib.sha256(
                    path.read_bytes()
                ).hexdigest()
                for path in out.glob("*/*.json")
            }
            assert digest
            digests.append(digest)
        assert digests[0] == digests[1]


# ----------------------------------------------------------------------
# summary-limit soundness (the bugfix satellites)
# ----------------------------------------------------------------------
class TestLimitSoundness:
    def test_output_overflow_refuses_instead_of_truncating(self):
        """Pre-fix, a summary hitting max_outputs_per_summary silently
        dropped output types — hiding child behaviors from the parent
        and potentially flipping the verdict.  Overflow must now refuse
        with BudgetExceeded, never return a verdict."""
        sc = _scenario(6, 0)  # has summaries with 2 distinct output types
        config = VerifierConfig(
            km_budget=60_000, time_limit_seconds=60.0, max_outputs_per_summary=1
        )
        with pytest.raises(BudgetExceeded, match="max_outputs_per_summary"):
            Verifier(sc.has, config).verify(sc.prop)

    def test_output_overflow_is_budget_status_through_pool(self):
        sc = _scenario(6, 0)
        config = VerifierConfig(
            km_budget=60_000, time_limit_seconds=60.0, max_outputs_per_summary=1
        )
        outcome = execute_job(_job(sc, config))
        assert outcome.status == STATUS_BUDGET_EXCEEDED
        assert outcome.holds is None
        assert "max_outputs_per_summary" in outcome.error

    def test_max_summaries_overflow_is_budget_status(self):
        """Pre-fix this raised a bare VerificationError, which the pool
        reported as an *error* outcome; it is a budget, so it must map
        to budget_exceeded like the KM budget does."""
        sc = _scenario(1, 1)
        config = VerifierConfig(
            km_budget=60_000, time_limit_seconds=60.0, max_summaries=1
        )
        outcome = execute_job(_job(sc, config))
        assert outcome.status == STATUS_BUDGET_EXCEEDED
        assert outcome.holds is None
        assert "summary memo limit" in outcome.error

    def test_store_install_respects_max_summaries(self):
        """Installing a persisted closure re-enforces the reader's own
        max_summaries — a permissive writer can't overflow a strict
        reader's memo."""
        sc = _scenario(6, 0)
        store = SummaryStore()
        execute_job(_job(sc), summary_store=store)
        strict = VerifierConfig(
            km_budget=60_000, time_limit_seconds=60.0, max_summaries=2
        )
        outcome = execute_job(_job(sc, strict), summary_store=store)
        assert outcome.status == STATUS_BUDGET_EXCEEDED

    def test_child_input_memo_cap_is_invisible(self):
        """The memo is a pure cache: disabling it (limit 0) must not
        change the verdict or the exploration."""
        sc = _scenario(6, 0)
        default = Verifier(sc.has, CONFIG)
        r_default = default.verify(sc.prop)
        assert len(default._child_input_memo) > 0
        capped_config = VerifierConfig(
            km_budget=60_000, time_limit_seconds=60.0, child_input_memo_limit=0
        )
        capped = Verifier(sc.has, capped_config)
        r_capped = capped.verify(sc.prop)
        assert len(capped._child_input_memo) == 0
        assert r_capped.holds == r_default.holds
        assert r_capped.stats.km_nodes == r_default.stats.km_nodes
        assert r_capped.stats.summaries == r_default.stats.summaries

    def test_child_input_memo_limit_default_keeps_job_keys(self):
        """The new knob serializes only when non-default, so existing
        job content hashes (and result-cache keys) are unchanged."""
        sc = _scenario(1, 1)
        explicit = VerifierConfig(
            km_budget=60_000, time_limit_seconds=60.0,
            child_input_memo_limit=200_000,
        )
        assert _job(sc, CONFIG).key() == _job(sc, explicit).key()
        different = VerifierConfig(
            km_budget=60_000, time_limit_seconds=60.0, child_input_memo_limit=7
        )
        assert _job(sc, CONFIG).key() != _job(sc, different).key()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_verify_summary_cache_warms_across_invocations(self, tmp_path, capsys):
        from repro.service.cli import main as cli_main

        cache = tmp_path / "summaries"
        args = ["verify", "travel-lite-fixed", "--time-limit", "60",
                "--summary-cache", str(cache), "--json"]
        assert cli_main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["stats"]["summaries_reused"] == 0
        assert any(cache.glob("*/*.json"))
        assert cli_main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["stats"]["summaries_reused"] == second["stats"]["summaries"] > 0
        assert second["status"] == first["status"] == "holds"
        assert second["km_nodes"] == first["km_nodes"]

    def test_no_summary_reuse_wins(self, tmp_path, capsys):
        from repro.service.cli import main as cli_main

        cache = tmp_path / "summaries"
        base = ["verify", "travel-lite-fixed", "--time-limit", "60",
                "--summary-cache", str(cache), "--json"]
        assert cli_main(base) == 0
        capsys.readouterr()
        assert cli_main(base + ["--no-summary-reuse"]) == 0
        off = json.loads(capsys.readouterr().out)
        assert off["stats"]["summaries_reused"] == 0
