"""The ``.has`` scenario DSL: parser, printer, loader, corpus export.

The load-bearing invariants:

* **serialized losslessness** — for every supported model object,
  ``to_dict(parse(render(x))) == to_dict(x)``, so DSL-loaded scenarios
  keep the exact job content hash of their Python-built twins;
* **parse fixed point** — ``render(parse(render(x))) == render(x)``;
* **verdict parity** — a DSL-loaded job verifies byte-identically
  (same key, same semantic outcome bytes) to the Python-built job.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.database.fkgraph import SchemaClass
from repro.dsl import (
    DslSyntaxError,
    load_document,
    loads,
    parse_condition,
    parse_formula,
    render_condition,
    render_config,
    render_document,
    render_formula,
    render_instance,
    render_scenario,
)
from repro.errors import SpecificationError
from repro.examples.travel import (
    discount_policy_property,
    discount_policy_property_lite,
    travel_booking,
    travel_database,
    travel_lite,
)
from repro.fuzz.gen import GenConfig, generate_scenario
from repro.logic.conditions import And, ArithAtom, Eq, Exists, Not, Or
from repro.logic.terms import NULL, Const, VarKind, id_var, num_var
from repro.ltl.formulas import AndF, FalseF, OrF, Release, TrueF, Until, propositions
from repro.service.jobs import VerificationJob
from repro.service.pool import execute_job
from repro.service.serialize import canonical_json, to_dict
from repro.verifier.config import VerifierConfig
from repro.workloads import table1_workload, table2_workload

KINDS = {"x": VarKind.ID, "y": VarKind.ID, "p": VarKind.NUMERIC, "q": VarKind.NUMERIC}


def same_dict(a, b) -> bool:
    return canonical_json(to_dict(a)) == canonical_json(to_dict(b))


def roundtrip_scenario(has, prop, config=None, instances=()):
    text = render_scenario(has, [(prop, None)], instances=instances, config=config)
    doc = loads(text)
    assert same_dict(doc.system, has), "system dict drifted through the DSL"
    assert same_dict(doc.properties[0].prop, prop), "property dict drifted"
    if config is not None:
        assert same_dict(doc.config, config)
    assert render_document(doc) == text, "printed form is not a parse fixed point"
    return doc


class TestModelRoundTrips:
    def test_travel_lite_both_variants(self):
        for fixed in (False, True):
            has = travel_lite(fixed)
            roundtrip_scenario(has, discount_policy_property_lite(has))

    def test_travel_full_both_variants(self):
        for fixed in (False, True):
            has = travel_booking(fixed)
            roundtrip_scenario(has, discount_policy_property(has))

    @pytest.mark.parametrize("schema_class", list(SchemaClass))
    def test_table_workloads(self, schema_class):
        for builder in (table1_workload, table2_workload):
            for with_sets in (False, True):
                for violated in (False, True):
                    spec = builder(
                        schema_class, depth=2, with_sets=with_sets, violated=violated
                    )
                    roundtrip_scenario(spec.has, spec.prop)

    def test_table_deep_chain_variant(self):
        spec = table2_workload(SchemaClass.CYCLIC, depth=3, chain=2)
        roundtrip_scenario(spec.has, spec.prop)

    def test_fuzz_generated_scenarios(self):
        config = VerifierConfig(km_budget=777, time_limit_seconds=1.5, km_order="fifo")
        deep = GenConfig(max_depth=3, arith_weight=1.0, set_weight=0.5)
        for seed in range(3):
            for index in range(8):
                scenario = generate_scenario(
                    seed, index, deep if seed % 2 else GenConfig()
                )
                roundtrip_scenario(
                    scenario.has,
                    scenario.prop,
                    config=config,
                    instances=[
                        (f"db{k}", db) for k, db in enumerate(scenario.databases)
                    ],
                )

    def test_instance_roundtrip_is_text_fixed_point(self):
        db = travel_database()
        text = render_instance("demo", db)
        has = travel_lite(False)
        doc = loads(render_scenario(has, [], instances=[("demo", db)]))
        assert render_instance(*doc.instances[0]) == text


class TestJobHashAndVerdictParity:
    def test_travel_lite_same_job_hash(self):
        has = travel_lite(False)
        prop = discount_policy_property_lite(has)
        config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
        doc = roundtrip_scenario(has, prop, config=config)
        built = VerificationJob(has=has, prop=prop, config=config)
        loaded = doc.jobs()[0]
        assert loaded.key() == built.key()

    def test_travel_lite_verifies_byte_identically(self):
        has = travel_lite(False)
        prop = discount_policy_property_lite(has)
        config = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)
        doc = roundtrip_scenario(has, prop, config=config)
        built = execute_job(VerificationJob(has=has, prop=prop, config=config))
        loaded = execute_job(doc.jobs()[0])
        # names differ (suite naming), nothing else may
        built.name = loaded.name
        assert loaded.semantic_bytes() == built.semantic_bytes()
        assert loaded.status == "violated"

    def test_table1_cell_verifies_byte_identically(self):
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True)
        config = VerifierConfig(km_budget=60_000)
        doc = roundtrip_scenario(spec.has, spec.prop, config=config)
        built = execute_job(
            VerificationJob(has=spec.has, prop=spec.prop, config=config)
        )
        loaded = execute_job(doc.jobs()[0])
        built.name = loaded.name
        assert loaded.key == built.key
        assert loaded.semantic_bytes() == built.semantic_bytes()


class TestConditionLanguage:
    def c(self, text):
        return parse_condition(text, KINDS)

    def test_eq_vs_arith_disambiguation(self):
        assert self.c("p = 0") == Eq(num_var("p"), Const(Fraction(0)))
        assert self.c("p != q") == Not(Eq(num_var("p"), num_var("q")))
        arith = self.c("p + 0 = 0")
        assert isinstance(arith, ArithAtom)
        assert arith.constraint.expr.coefficient(num_var("p")) == 1
        assert self.c("p - q = 0") != self.c("p = q")

    def test_arith_equality_never_prints_as_eq(self):
        from repro.arith.constraints import Rel, compare
        from repro.arith.linexpr import var as linvar

        atom = ArithAtom(compare(linvar(num_var("p")), Rel.EQ, 0))
        text = render_condition(atom)
        assert parse_condition(text, KINDS) == atom
        assert parse_condition(text, KINDS) != Eq(num_var("p"), Const(Fraction(0)))

    def test_rational_coefficients_roundtrip(self):
        cond = self.c("3/2*p - q + 5/3 >= 0")
        assert render_condition(cond) == "3/2*p - q + 5/3 >= 0"
        assert parse_condition(render_condition(cond), KINDS) == cond

    def test_null_and_wildcard(self):
        assert self.c("x = null") == Eq(id_var("x"), NULL)
        rendered = render_condition(self.c("x != null"))
        assert rendered == "x != null"

    def test_boolean_structure_and_flattening(self):
        cond = self.c("x = null and (p >= 0 or q <= 0) and y != null")
        assert isinstance(cond, And) and len(cond.parts) == 3
        assert isinstance(cond.parts[1], Or)
        assert parse_condition(render_condition(cond), KINDS) == cond

    def test_implies_sugar(self):
        assert self.c("x = null -> p >= 0") == Or(
            Not(Eq(id_var("x"), NULL)), self.c("p >= 0")
        )

    def test_degenerate_nary_conditions(self):
        single = And(Eq(id_var("x"), NULL))
        assert render_condition(single) == "all(x = null)"
        assert parse_condition("all(x = null)", KINDS) == single
        assert parse_condition(render_condition(Or()), KINDS) == Or()

    def test_exists_binders_scope_and_print(self):
        cond = self.c("exists c: id, f: num . x = c and f >= 0")
        assert isinstance(cond, Exists)
        assert cond.bound == (id_var("c"), num_var("f"))
        assert parse_condition(render_condition(cond), KINDS) == cond

    def test_unknown_variable_is_a_located_error(self):
        with pytest.raises(DslSyntaxError, match="unknown variable 'zz'"):
            self.c("zz = null")

    def test_ill_sorted_equality_rejected(self):
        with pytest.raises(DslSyntaxError, match="invalid equality"):
            self.c("x = p")

    def test_arith_over_id_variable_rejected(self):
        with pytest.raises(DslSyntaxError, match="non-numeric"):
            self.c("x + p >= 0")

    def test_float_literal_rejected_in_conditions(self):
        with pytest.raises(DslSyntaxError, match="exact rationals"):
            self.c("p >= 1.5")


class TestFormulaLanguage:
    def f(self, text):
        return parse_formula(text, KINDS)

    def test_eventually_always_encodings(self):
        assert self.f("F {p >= 0}") == Until(TrueF(), self.f("{p >= 0}"))
        assert self.f("G {p >= 0}") == Release(FalseF(), self.f("{p >= 0}"))
        assert render_formula(self.f("G F {p >= 0}")) == "G F {p >= 0}"

    def test_ltl_connectives_do_not_flatten(self):
        flat = self.f("{p >= 0} and {q >= 0} and {p <= 0}")
        nested = self.f("({p >= 0} and {q >= 0}) and {p <= 0}")
        assert isinstance(flat, AndF) and len(flat.parts) == 3
        assert isinstance(nested, AndF) and len(nested.parts) == 2
        assert flat != nested
        assert parse_formula(render_formula(flat), KINDS) == flat
        assert parse_formula(render_formula(nested), KINDS) == nested

    def test_until_right_associative(self):
        formula = self.f("{p >= 0} U {q >= 0} U {p <= 0}")
        assert isinstance(formula, Until)
        assert isinstance(formula.right, Until)
        assert parse_formula(render_formula(formula), KINDS) == formula

    def test_service_refs_and_child_formulas(self):
        from repro.runtime import labels

        formula = self.f("G (open(Cancel) -> [G not svc(Cancel.Refund)]@Cancel)")
        rendered = render_formula(formula)
        assert "open(Cancel)" in rendered and "svc(Cancel.Refund)" in rendered
        assert parse_formula(rendered, KINDS) == formula
        refs = {getattr(p, "ref", None) for p in propositions(formula)}
        assert labels.opening("Cancel") in refs

    def test_degenerate_nary_formulas(self):
        single = AndF(TrueF())
        assert render_formula(single) == "all(true)"
        assert parse_formula("any(false)", KINDS) == OrF(FalseF())


class TestDocumentLevel:
    def test_minimal_document(self):
        doc = loads(
            """
            system shop {
              schema { relation ITEMS(price: num) }
              task Shop {
                vars item: id, price: num
                service Pick { post: ITEMS(item, price) }
              }
            }
            property "picked-row-exists" on Shop {
              expect: holds
              formula: G {item = null or ITEMS(item, price)}
            }
            """
        )
        assert doc.system.name == "shop"
        entry = doc.property_named("picked-row-exists")
        assert entry.expect == "holds" and entry.expected_holds is True
        job = doc.jobs()[0]
        assert execute_job(job).status == "holds"

    def test_file_config_wins_over_default(self):
        doc = loads(
            """
            system s { schema { relation R(a: num) }
              task T { vars x: id, p: num service Go { post: R(x, p) } } }
            property p1 on T { formula: G {x = null or R(x, p)} }
            config { km_budget: 7 }
            """
        )
        jobs = doc.jobs(default_config=VerifierConfig(km_budget=99_999))
        assert jobs[0].config.km_budget == 7

    def test_default_config_used_when_file_has_none(self):
        doc = loads(
            """
            system s { schema { relation R(a: num) }
              task T { vars x: id, p: num service Go { post: R(x, p) } } }
            property p1 on T { formula: G {x = null or R(x, p)} }
            """
        )
        jobs = doc.jobs(default_config=VerifierConfig(km_budget=123))
        assert jobs[0].config.km_budget == 123

    def test_config_roundtrip_only_lists_non_defaults(self):
        config = VerifierConfig(km_budget=55, time_limit_seconds=2.5)
        text = render_config(config)
        assert "km_budget: 55" in text and "time_limit_seconds: 2.5" in text
        assert "max_summaries" not in text

    def test_validation_catches_out_of_scope_property(self):
        # cx belongs to the child task; a root-spec condition cannot use it
        with pytest.raises(SpecificationError, match="out-of-scope"):
            loads(
                """
                system s { schema { relation R(a: num) }
                  task T { vars x: id, p: num
                    task C { vars cx: id }
                  } }
                property bad on T { formula: G {cx = null} }
                """
            )

    def test_dangling_instance_fk_rejected(self):
        with pytest.raises(DslSyntaxError, match="dangles"):
            loads(
                """
                system s {
                  schema { relation A(v: num, b: ref B) relation B(w: num) }
                  task T { vars x: id service Go { } }
                }
                instance bad { A a1 (v: 1, b: missing) }
                """
            )

    def test_reserved_word_variable_rejected(self):
        with pytest.raises(DslSyntaxError, match="reserved"):
            loads(
                """
                system s { schema { relation R(a: num) }
                  task T { vars exists: id } }
                """
            )

    def test_kind_conflict_across_tasks_rejected(self):
        with pytest.raises(DslSyntaxError, match="one kind per name"):
            loads(
                """
                system s { schema { relation R(a: num) }
                  task T { vars x: id
                    task C { vars x: num }
                  } }
                """
            )

    def test_unknown_config_field_rejected(self):
        with pytest.raises(DslSyntaxError, match="unknown config field"):
            loads(
                """
                system s { schema { relation R(a: num) }
                  task T { vars x: id } }
                config { warp_speed: 9 }
                """
            )

    def test_syntax_error_carries_location(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            loads("system s {\n  schema { relation 9bad(a: num) }\n}", source="f.has")
        assert "f.has:2:" in str(excinfo.value)

    def test_duplicate_instance_names_rejected(self):
        with pytest.raises(DslSyntaxError, match="duplicate instance name"):
            loads(
                """
                system s { schema { relation R(a: num) }
                  task T { vars x: id } }
                instance db { R r1 (a: 1) }
                instance db { R r2 (a: 2) }
                """
            )

    def test_duplicate_property_names_rejected(self):
        # two properties named p would make the ::p selector ambiguous
        with pytest.raises(DslSyntaxError, match="duplicate property name"):
            loads(
                """
                system s { schema { relation R(a: num) }
                  task T { vars x: id, p: num } }
                property p1 on T { formula: G {x = null} }
                property p1 on T { formula: F {x = null} }
                """
            )

    def test_two_systems_rejected(self):
        with pytest.raises(DslSyntaxError, match="exactly one system"):
            loads(
                """
                system a { schema { relation R(v: num) } task T { vars x: id } }
                system b { schema { relation Q(v: num) } task U { vars y: id } }
                """
            )


class TestCorpusExport:
    def test_has_corpus_entry_matches_json_job_key(self, tmp_path):
        from repro.fuzz import BoundedConfig, corpus_entry, run_campaign
        from repro.fuzz.harness import corpus_entry_has, write_corpus_entry_has

        campaign = run_campaign(
            11,
            3,
            verifier_config=VerifierConfig(km_budget=20_000),
            bounded_config=BoundedConfig(time_budget_seconds=None),
            out_dir=tmp_path / "reports",
        )
        assert not campaign.discrepancies
        for outcome in campaign.outcomes:
            entry = corpus_entry(outcome, VerifierConfig(km_budget=20_000))
            path = write_corpus_entry_has(
                tmp_path, outcome, VerifierConfig(km_budget=20_000)
            )
            doc = load_document(path)
            job = doc.jobs()[0]
            assert job.key() == entry["job_key"], (
                "readable .has corpus entry must content-hash identically "
                "to the JSON corpus record"
            )
            assert doc.properties[0].expect == outcome.symbolic_status
            # the emitted file is itself a parse fixed point
            text = path.read_text()
            body = text.split("\n\n", 1)[1]
            assert render_document(doc) == body
