"""Tests for the database substrate: schemas, instances, dependencies."""

from fractions import Fraction

import pytest

from repro.database.instance import DatabaseInstance, Identifier
from repro.database.schema import (
    DatabaseSchema,
    Relation,
    foreign_key,
    numeric,
)
from repro.errors import InstanceError, SchemaError


class TestSchema:
    def test_relation_arity_includes_id(self):
        rel = Relation("R", (numeric("a"), numeric("b")))
        assert rel.arity == 3

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", (numeric("a"), numeric("a")))

    def test_explicit_key_attribute_rejected(self):
        from repro.database.schema import Attribute, AttributeKind

        with pytest.raises(SchemaError):
            Relation("R", (Attribute("k", AttributeKind.KEY),))

    def test_fk_must_reference(self):
        with pytest.raises(SchemaError):
            from repro.database.schema import Attribute, AttributeKind

            Attribute("f", AttributeKind.FOREIGN_KEY)

    def test_dangling_fk_reference_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema((Relation("R", (foreign_key("f", "MISSING"),)),))

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema((Relation("R"), Relation("R")))

    def test_attribute_lookup(self, travel_schema):
        rel = travel_schema.relation("FLIGHTS")
        assert rel.attribute("price").kind.value == "numeric"
        assert rel.attribute("comp_hotel_id").references == "HOTELS"
        assert rel.attribute("id").is_id_valued

    def test_unknown_relation(self, travel_schema):
        with pytest.raises(SchemaError):
            travel_schema.relation("NOPE")

    def test_max_arity(self, travel_schema):
        assert travel_schema.max_arity == 3

    def test_attribute_names_order(self, travel_schema):
        assert travel_schema.relation("FLIGHTS").attribute_names == (
            "id",
            "price",
            "comp_hotel_id",
        )


class TestInstance:
    def test_add_and_lookup(self, travel_db):
        ident = Identifier("HOTELS", "h1")
        row = travel_db.lookup(ident)
        assert row is not None
        assert row[1] == Fraction(200)

    def test_key_dependency_enforced(self, travel_schema):
        db = DatabaseInstance(travel_schema)
        db.add("HOTELS", "h", 1, 2)
        with pytest.raises(InstanceError):
            db.add("HOTELS", "h", 3, 4)

    def test_arity_checked(self, travel_schema):
        db = DatabaseInstance(travel_schema)
        with pytest.raises(InstanceError):
            db.add("HOTELS", "h", 1)

    def test_numeric_type_checked(self, travel_schema):
        db = DatabaseInstance(travel_schema)
        with pytest.raises(InstanceError):
            db.add("HOTELS", "h", "not-a-number", 2)

    def test_fk_type_checked(self, travel_schema):
        db = DatabaseInstance(travel_schema)
        wrong = Identifier("FLIGHTS", "f")
        with pytest.raises(InstanceError):
            db.add("FLIGHTS", "f1", 10, wrong)

    def test_inclusion_dependency_validation(self, travel_schema):
        db = DatabaseInstance(travel_schema)
        db.add("FLIGHTS", "f1", 10, "ghost-hotel")
        with pytest.raises(InstanceError):
            db.validate()

    def test_navigate(self, travel_db):
        flight = Identifier("FLIGHTS", "f1")
        assert travel_db.navigate(flight, ["price"]) == Fraction(400)
        assert travel_db.navigate(flight, ["comp_hotel_id", "unit_price"]) == Fraction(200)

    def test_navigate_missing(self, travel_db):
        ghost = Identifier("FLIGHTS", "ghost")
        assert travel_db.navigate(ghost, ["price"]) is None

    def test_active_domain(self, travel_db):
        domain = travel_db.active_domain()
        assert Identifier("HOTELS", "h1") in domain
        assert Fraction(400) in domain

    def test_size(self, travel_db):
        assert travel_db.size() == 4
        assert travel_db.size("HOTELS") == 2

    def test_id_domains_disjoint(self, travel_db):
        assert Identifier("HOTELS", "h1") != Identifier("FLIGHTS", "h1")
