"""Theorem 11 and Theorem 24 machinery: RB-VASS, the HAS+LTL construction,
PCP, and the lifted-restriction encodings."""

import pytest

from repro.has.restrictions import validate_has
from repro.hltl.ltlfo import evaluate_ltlfo
from repro.reductions.pcp import (
    PCPInstance,
    classic_solvable,
    classic_unsolvable,
    solve_pcp_bounded,
)
from repro.reductions.rb_vass import RBVASS, RESET
from repro.reductions.theorem11 import formula_size, theorem11_construction
from repro.reductions.theorem24 import (
    chain_spells_solution,
    encode_candidate,
    lifted_restriction_systems,
    pcp_chain_schema,
)


class TestRBVASS:
    def _machine(self):
        rb = RBVASS(dimension=2)
        rb.add_action("a", (1, 1), "a")
        rb.add_action("a", (-1, 1), "b")
        rb.add_action("b", (RESET, -1), "a")
        return rb

    def test_successors_include_lossiness(self):
        rb = self._machine()
        successors = set(rb.successors("a", (1, 0)))
        # pump both: (2,1); lossy drops possible on each non-reset coord
        assert ("a", (2, 1)) in successors
        assert ("a", (1, 1)) in successors or ("a", (2, 0)) in successors

    def test_reset_zeroes(self):
        rb = self._machine()
        successors = set(rb.successors("b", (5, 3)))
        assert all(counters[0] == 0 for state, counters in successors if state == "a")

    def test_negative_counters_blocked(self):
        rb = self._machine()
        assert all(state != "b" for state, _ in rb.successors("a", (0, 0)))

    def test_bounded_repeated_reachability(self):
        rb = self._machine()
        assert rb.repeated_reachable_bounded("a", "a", counter_cap=4)

    def test_unreachable_state(self):
        rb = RBVASS(dimension=1)
        rb.add_action("a", (1,), "a")
        rb.states.add("island")
        assert not rb.repeated_reachable_bounded("a", "island", counter_cap=3)


class TestTheorem11:
    def test_construction_produces_valid_has(self):
        rb = RBVASS(dimension=2)
        rb.add_action("q0", (1, 1), "q0")
        rb.add_action("q0", (-1, RESET), "qf")
        rb.add_action("qf", (1, -1), "q0")
        artifacts = theorem11_construction(rb, "q0", "qf")
        validate_has(artifacts.has)
        # Figure 2's hierarchy: root, P0, P1..Pd, C1..Cd
        names = {t.name for t in artifacts.has.tasks()}
        assert names == {"T1", "P0", "P1", "P2", "C0", "C1"}
        assert artifacts.has.depth == 3

    def test_counter_tasks_have_sets(self):
        rb = RBVASS(dimension=1)
        rb.add_action("q0", (1,), "q0")
        artifacts = theorem11_construction(rb, "q0", "q0")
        c0 = artifacts.has.task("C0")
        assert c0.has_set

    def test_formula_mentions_every_state(self):
        rb = RBVASS(dimension=1)
        rb.add_action("q0", (1,), "q1")
        rb.add_action("q1", (-1,), "q0")
        artifacts = theorem11_construction(rb, "q0", "q1")
        assert formula_size(artifacts.formula.formula) > 10

    def test_formula_scales_with_dimension(self):
        sizes = []
        for dimension in (1, 2, 3):
            rb = RBVASS(dimension=dimension)
            rb.add_action("q0", tuple([1] * dimension), "q0")
            artifacts = theorem11_construction(rb, "q0", "q0")
            sizes.append(formula_size(artifacts.formula.formula))
        assert sizes[0] < sizes[1] < sizes[2]

    def test_formula_evaluates_on_global_runs(self, travel_db):
        """The constructed Φ is a plain LTL-FO property: evaluable on
        finite global-run prefixes (here: trivially false on an empty-ish
        run because Φ_init requires state services)."""
        rb = RBVASS(dimension=1)
        rb.add_action("q0", (1,), "q0")
        artifacts = theorem11_construction(rb, "q0", "q0")
        assert evaluate_ltlfo(artifacts.formula, [], travel_db) is False


class TestPCP:
    def test_solvable_instance(self):
        instance = classic_solvable()
        solution = solve_pcp_bounded(instance, max_length=6)
        assert solution is not None
        assert instance.is_solution(solution)

    def test_unsolvable_instance(self):
        assert solve_pcp_bounded(classic_unsolvable(), max_length=8) is None

    def test_is_solution(self):
        instance = PCPInstance((("ab", "a"), ("c", "bc")))
        assert instance.is_solution([0, 1])
        assert not instance.is_solution([1, 0])
        assert not instance.is_solution([])


class TestTheorem24:
    def test_all_eight_restrictions_documented(self):
        systems = lifted_restriction_systems()
        assert [s.index for s in systems] == list(range(1, 9))
        # only restriction 8's reduction needs arithmetic (paper, Sec. 6)
        assert [s.uses_arithmetic for s in systems] == [False] * 7 + [True]

    def test_chain_encoding_roundtrip(self):
        instance = classic_solvable()
        solution = solve_pcp_bounded(instance, max_length=6)
        assert solution is not None
        db = encode_candidate(instance, list(solution))
        assert chain_spells_solution(db, instance)

    def test_chain_encoding_non_solution(self):
        instance = classic_solvable()
        db = encode_candidate(instance, [0])  # (a, baa): not a solution
        assert not chain_spells_solution(db, instance)

    def test_chain_schema_is_linearly_cyclic(self):
        from repro.database.fkgraph import ForeignKeyGraph, SchemaClass

        assert (
            ForeignKeyGraph(pcp_chain_schema()).classify()
            is SchemaClass.LINEARLY_CYCLIC
        )
