"""Cache-correctness properties and the benchmark harness.

The hot-path pass (canonical-key memoization, FM satisfiability /
projection caches, successor memoization) is only admissible if every
cache is *invisible*: same verdicts, same keys, same projections as the
uncached code.  These tests pin that down —

* a mutated-then-rekeyed :class:`ConstraintStore` never serves a stale
  canonical key (dirty-bit invalidation, property-tested over random
  assertion sequences);
* Fourier–Motzkin projection with the cache enabled equals projection
  with it disabled on randomized systems, and the component-wise
  satisfiability decision equals the monolithic one;
* verification with the successor memo disabled is byte-identical to
  the default;
* every Karp–Miller frontier order reaches the same verdict;
* the ``bench --record / --compare`` harness round-trips its JSON and
  flags regressions (and only regressions);
* the new ``VerifierConfig`` knobs serialize only when non-default, so
  content-addressed job keys are stable across versions.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.arith import fm
from repro.arith.constraints import Constraint, Rel
from repro.arith.linexpr import LinExpr, var
from repro.database.fkgraph import SchemaClass
from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.logic.terms import id_var, num_var
from repro.perf.bench import (
    compare_records,
    compare_directories,
    family_names,
    load_record,
    record_families,
    run_family,
)
from repro.perf.counters import COUNTERS, PerfCounters
from repro.service.serialize import from_dict, to_dict
from repro.symbolic.store import ConstraintStore, Inconsistent, clear_canonical_caches
from repro.verifier import Verifier, VerifierConfig
from repro.workloads import table1_workload

from tests.test_store_properties import SCHEMA, apply_ops, op_sequences

# ----------------------------------------------------------------------
# canonical-key staleness
# ----------------------------------------------------------------------


class TestCanonicalKeyFreshness:
    @given(op_sequences(), op_sequences())
    @settings(max_examples=120, deadline=None)
    def test_mutated_then_rekeyed_store_never_serves_stale_key(
        self, prefix, suffix
    ):
        """Interleaving canonical_key() calls with mutations must end at
        the same key as replaying all mutations with no intermediate
        reads — the dirty bit may never let a pre-mutation key leak."""
        interleaved = ConstraintStore(SCHEMA)
        if not apply_ops(interleaved, prefix):
            return
        interleaved.canonical_key()  # populate the cache mid-sequence
        if not apply_ops(interleaved, suffix):
            return
        interleaved.canonical_key()  # and again, twice
        key = interleaved.canonical_key()

        replayed = ConstraintStore(SCHEMA)
        assert apply_ops(replayed, prefix) and apply_ops(replayed, suffix)
        assert replayed.canonical_key() == key

    @given(op_sequences())
    @settings(max_examples=80, deadline=None)
    def test_copy_and_global_cache_clear_reproduce_the_key(self, ops):
        """The key survives copy() and does not depend on the global
        interning / per-constraint memo state."""
        store = ConstraintStore(SCHEMA)
        if not apply_ops(store, ops):
            return
        key = store.canonical_key()
        clone = store.copy()
        clone._canon_cache = None  # force a recompute
        assert clone.canonical_key() == key
        clear_canonical_caches()
        fresh = store.copy()
        fresh._canon_cache = None
        assert fresh.canonical_key() == key

    def test_every_mutator_invalidates(self):
        """Each store mutator drops the cached key (spot check on the
        dirty bit wiring)."""
        u, v = id_var("u"), id_var("v")
        n = num_var("n")
        store = ConstraintStore(SCHEMA)
        mutations = [
            lambda s: s.node_of(u) and None,
            lambda s: s.assert_not_null(s.node_of(u)),
            lambda s: s.assert_anchor(s.node_of(u), "F"),
            lambda s: s.assert_eq(s.nav(s.node_of(u), "price"), s.node_of(n)),
            lambda s: s.assert_neq(s.node_of(u), s.node_of(v)),
            lambda s: s.add_linear(LinExpr({s.node_of(n): 1}, -2), Rel.LE),
            lambda s: s.bind(v, s.node_of(u)),
            lambda s: s.pin(("p",), s.node_of(u)),
            lambda s: s.unpin_prefix(("p",)),
        ]
        previous = store.canonical_key()
        seen = {previous}
        for index, mutate in enumerate(mutations):
            mutate(store)
            key = store.canonical_key()
            recomputed = store.copy()
            recomputed._canon_cache = None
            assert recomputed.canonical_key() == key, f"mutation {index}"
            seen.add(key)
        assert len(seen) > 2  # the sequence genuinely changed the store


# ----------------------------------------------------------------------
# Fourier–Motzkin caches
# ----------------------------------------------------------------------

UNKNOWNS = ("x", "y", "z", "w")


@st.composite
def constraint_systems(draw):
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        coeffs = {
            unknown: draw(st.integers(min_value=-3, max_value=3))
            for unknown in draw(
                st.sets(st.sampled_from(UNKNOWNS), min_size=0, max_size=3)
            )
        }
        constant = draw(st.integers(min_value=-4, max_value=4))
        rel = draw(st.sampled_from(list(Rel)))
        constraints.append(Constraint(LinExpr(coeffs, constant), rel))
    return constraints


@st.composite
def keep_sets(draw):
    return set(draw(st.sets(st.sampled_from(UNKNOWNS), min_size=0, max_size=4)))


class TestFMCaches:
    @given(constraint_systems(), keep_sets())
    @settings(max_examples=200, deadline=None)
    def test_projection_cache_equals_uncached(self, constraints, keep):
        fm.clear_caches()
        cold_kept, cold_exact = fm.project_components(constraints, keep)
        warm_kept, warm_exact = fm.project_components(constraints, keep)
        raw_kept, raw_exact = fm.project_components_uncached(constraints, keep)
        assert cold_kept == warm_kept == raw_kept
        assert cold_exact == warm_exact == raw_exact

    @given(constraint_systems())
    @settings(max_examples=200, deadline=None)
    def test_componentwise_sat_equals_monolithic(self, constraints):
        fm.clear_caches()
        componentwise = fm.is_satisfiable(constraints)
        normalized = fm._normalize(list(constraints))
        monolithic = (
            False if normalized is None else fm._is_satisfiable_uncached(normalized)
        )
        assert componentwise == monolithic
        # and the cached re-query agrees
        assert fm.is_satisfiable(constraints) == componentwise

    @given(constraint_systems())
    @settings(max_examples=100, deadline=None)
    def test_sat_agrees_with_sample_existence(self, constraints):
        fm.clear_caches()
        assert fm.is_satisfiable(constraints) == (
            fm.sample_solution(constraints) is not None
        )

    def test_projection_cache_counts_hits(self):
        fm.clear_caches()
        x = var("x")
        system = [Constraint(x - 1, Rel.LE)]
        before = COUNTERS.snapshot()
        fm.project_components(system, {"x"})
        fm.project_components(system, {"x"})
        delta = COUNTERS.since(before)
        assert delta["fm_proj_misses"] == 1
        assert delta["fm_proj_hits"] == 1


# ----------------------------------------------------------------------
# verifier-level cache invisibility
# ----------------------------------------------------------------------


def _semantic_fingerprint(result):
    return (
        result.holds,
        result.witness_kind,
        [repr(step) for step in result.witness],
        result.loop_start,
        result.stats.km_nodes,
        result.stats.summaries,
    )


class TestVerifierCacheInvisibility:
    def test_successor_memo_is_byte_identical(self):
        spec = table1_workload(
            SchemaClass.CYCLIC, depth=2, with_sets=True, violated=True
        )
        with_memo = Verifier(
            spec.has, VerifierConfig(km_budget=60_000)
        ).verify(spec.prop)
        without_memo = Verifier(
            spec.has, VerifierConfig(km_budget=60_000, successor_memo_limit=0)
        ).verify(spec.prop)
        assert _semantic_fingerprint(with_memo) == _semantic_fingerprint(
            without_memo
        )
        assert with_memo.holds == spec.expected_holds

    def test_frontier_orders_agree_on_the_verdict(self):
        spec = table1_workload(
            SchemaClass.ACYCLIC, depth=2, with_sets=True, violated=True
        )
        verdicts = {}
        for order in ("lifo", "fifo", "covering"):
            result = Verifier(
                spec.has, VerifierConfig(km_budget=60_000, km_order=order)
            ).verify(spec.prop)
            verdicts[order] = result.holds
        assert verdicts == {order: spec.expected_holds for order in verdicts}

    def test_run_is_hash_seed_independent(self):
        """The search is reproducible across processes: verdict, witness,
        and node counts must not depend on PYTHONHASHSEED (set/frozenset
        iteration orders).  Historically the automaton tableau, store
        absorption, and FM elimination each leaked hash order into the
        exploration; this pins the fix."""
        import subprocess
        import sys

        script = (
            "import json\n"
            "from repro.examples.travel import travel_lite, "
            "discount_policy_property_lite\n"
            "from repro.verifier import Verifier, VerifierConfig\n"
            "has = travel_lite(False)\n"
            "r = Verifier(has, VerifierConfig(km_budget=60000))"
            ".verify(discount_policy_property_lite(has))\n"
            "print(json.dumps([r.holds, r.witness_kind, "
            "[repr(s) for s in r.witness], r.stats.km_nodes, "
            "r.stats.summaries]))\n"
        )
        outputs = set()
        for seed in ("0", "1", "4242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": seed,
                    "PYTHONPATH": "src",
                },
                cwd=str(__import__("pathlib").Path(__file__).parent.parent),
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, f"hash-seed-dependent outcomes: {outputs}"

    def test_budget_abort_does_not_poison_summary_memo(self):
        """A BudgetExceeded raised mid-summary must not leave the empty
        placeholder memoized: the memo outlives the verify() call, and a
        truncated summary would silently drop child behaviors from a
        later run on the same Verifier."""
        import pytest

        from repro.errors import BudgetExceeded

        spec = table1_workload(
            SchemaClass.ACYCLIC, depth=2, with_sets=True, violated=True
        )
        verifier = Verifier(spec.has, VerifierConfig(km_budget=3))
        with pytest.raises(BudgetExceeded):
            verifier.verify(spec.prop)
        for (task, _input_key, _beta), summary in verifier._summaries.items():
            assert summary.km_nodes > 0, (
                f"truncated placeholder summary for {task!r} survived the abort"
            )
        verifier.config = VerifierConfig(km_budget=60_000)
        result = verifier.verify(spec.prop)
        assert result.holds == spec.expected_holds

    def test_summaries_reused_across_properties(self):
        """R_T summaries persist on the Verifier across verify() calls:
        re-checking a property whose child specs were already summarized
        recomputes no summaries (the β key determines B(T, β) exactly,
        so the reuse is sound across property automata sharing a task)."""
        spec = table1_workload(SchemaClass.ACYCLIC, depth=2, with_sets=True)
        verifier = Verifier(spec.has, VerifierConfig(km_budget=60_000))
        first = verifier.verify(spec.prop)
        assert first.stats.summaries > 0
        second = verifier.verify(spec.prop)
        assert second.stats.summaries == 0
        assert second.stats.summary_hits > 0
        assert first.holds == second.holds


# ----------------------------------------------------------------------
# config serialization stability
# ----------------------------------------------------------------------


class TestConfigKeyStability:
    def test_new_knobs_omitted_at_defaults(self):
        data = to_dict(VerifierConfig())
        assert "km_order" not in data
        assert "successor_memo_limit" not in data

    def test_new_knobs_serialized_when_set(self):
        config = VerifierConfig(km_order="covering", successor_memo_limit=0)
        data = to_dict(config)
        assert data["km_order"] == "covering"
        assert data["successor_memo_limit"] == 0
        assert from_dict(data) == config

    def test_default_roundtrip(self):
        assert from_dict(to_dict(VerifierConfig())) == VerifierConfig()


# ----------------------------------------------------------------------
# the bench harness
# ----------------------------------------------------------------------


class TestBenchHarness:
    def test_family_names_are_stable(self):
        assert set(family_names()) >= {"table1", "table2", "travel-lite"}

    def test_unknown_family_raises(self):
        try:
            run_family("no-such-family")
        except KeyError as exc:
            assert "no-such-family" in str(exc)
        else:
            raise AssertionError("expected KeyError")

    def test_record_and_load_roundtrip(self, tmp_path):
        paths = record_families(
            tmp_path, families=["travel-lite"], reps=1, log=lambda _line: None
        )
        assert [p.name for p in paths] == ["BENCH_travel-lite.json"]
        record = load_record(paths[0])
        assert record["family"] == "travel-lite"
        assert record["deterministic"] is True
        assert record["wall_seconds"] > 0
        assert record["km_nodes"] > 0
        statuses = {job["status"] for job in record["jobs"]}
        assert statuses == {"violated", "holds"}
        assert set(record["rates"]) == set(PerfCounters.rates({}).keys())

    def test_compare_flags_only_regressions(self):
        current = {
            "family": "f",
            "deterministic": True,
            "wall_seconds": 1.0,
            "km_nodes": 10,
            "jobs": [{"name": "j", "status": "holds", "km_nodes": 10}],
        }
        same = dict(current)
        regressions, drifts, _notes = compare_records(current, same)
        assert regressions == [] and drifts == []
        fast_baseline = dict(current, wall_seconds=0.5)
        regressions, drifts, _notes = compare_records(current, fast_baseline)
        assert len(regressions) == 1 and "×2.00" in regressions[0]
        assert drifts == []
        # within threshold: not a regression
        close_baseline = dict(current, wall_seconds=0.9)
        regressions, drifts, _notes = compare_records(current, close_baseline)
        assert regressions == [] and drifts == []
        # verdict drift on a deterministic family is semantic, not perf
        drifted = dict(
            current,
            jobs=[{"name": "j", "status": "violated", "km_nodes": 10}],
        )
        regressions, drifts, _notes = compare_records(current, drifted)
        assert regressions == []
        assert any("fingerprint" in line for line in drifts)

    def test_compare_directories_soft_on_missing_baseline(self, tmp_path):
        current_dir = tmp_path / "current"
        baseline_dir = tmp_path / "baseline"
        current_dir.mkdir()
        baseline_dir.mkdir()
        record = {
            "schema_version": 1,
            "family": "f",
            "deterministic": True,
            "wall_seconds": 1.0,
            "km_nodes": 10,
            "jobs": [],
        }
        (current_dir / "BENCH_f.json").write_text(json.dumps(record))
        regressions, drifts, notes = compare_directories(
            current_dir, baseline_dir
        )
        assert regressions == [] and drifts == []
        assert any("no baseline" in note for note in notes)

    def test_tracked_baselines_load(self):
        """The baselines committed under benchmarks/baselines/ stay
        readable by the current schema."""
        from pathlib import Path

        baseline_dir = Path(__file__).resolve().parent.parent / (
            "benchmarks/baselines"
        )
        records = sorted(baseline_dir.glob("BENCH_*.json"))
        assert records, "tracked baselines missing"
        for path in records:
            record = load_record(path)
            assert record["family"] in family_names()


class TestBenchCLI:
    def test_record_then_compare_exit_codes(self, tmp_path, capsys):
        from repro.service.cli import main

        out_dir = tmp_path / "records"
        code = main(
            [
                "bench",
                "--record",
                "--families",
                "travel-lite",
                "--reps",
                "1",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        assert (out_dir / "BENCH_travel-lite.json").exists()
        # compare against itself: no regression
        code = main(
            ["bench", "--compare", str(out_dir), "--out", str(out_dir)]
        )
        assert code == 0
        # halve the baseline wall → synthetic >15% regression → exit 3
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        record = json.loads((out_dir / "BENCH_travel-lite.json").read_text())
        record["wall_seconds"] = record["wall_seconds"] / 4
        (baseline_dir / "BENCH_travel-lite.json").write_text(json.dumps(record))
        code = main(
            ["bench", "--compare", str(baseline_dir), "--out", str(out_dir)]
        )
        assert code == 3
        output = capsys.readouterr().out
        assert "REGRESSION" in output
        # verdict drift in the baseline → exit 4 (semantic, not perf)
        drift_dir = tmp_path / "drift-baseline"
        drift_dir.mkdir()
        drifted = json.loads((out_dir / "BENCH_travel-lite.json").read_text())
        drifted["jobs"] = [
            dict(job, status="holds") for job in drifted["jobs"]
        ]
        (drift_dir / "BENCH_travel-lite.json").write_text(json.dumps(drifted))
        code = main(
            ["bench", "--compare", str(drift_dir), "--out", str(out_dir)]
        )
        assert code == 4
        assert "SEMANTIC DRIFT" in capsys.readouterr().out

    def test_positional_family_is_honored(self, tmp_path):
        from repro.service.cli import main

        out_dir = tmp_path / "records"
        code = main(
            [
                "bench",
                "travel-lite",
                "--record",
                "--reps",
                "1",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        assert sorted(p.name for p in out_dir.glob("BENCH_*.json")) == [
            "BENCH_travel-lite.json"
        ]
