"""Total T-isomorphism types (Definition 15) and navigation universes."""

from fractions import Fraction

import pytest

from repro.database.instance import DatabaseInstance, Identifier
from repro.errors import ConditionError
from repro.logic.conditions import And, Eq, Not, RelationAtom
from repro.logic.terms import NULL, id_var, num_var
from repro.symbolic.isotypes import (
    NULL_ELEM,
    IsoType,
    iso_type_of_valuation,
    ZERO_ELEM,
)
from repro.symbolic.navigation import (
    NavExpr,
    expr_sort,
    expressions_from,
    navigation_universe,
    universe_size_per_anchor,
)

x = id_var("x")
y = id_var("y")
p = num_var("p")


class TestNavigation:
    def test_expressions_from_chain(self, chain_schema):
        exprs = list(expressions_from(chain_schema, x, "A", 3))
        reprs = {repr(e) for e in exprs}
        assert "x_A" in reprs
        assert "x_A.to_b" in reprs
        assert "x_A.to_b.to_c" in reprs
        assert "x_A.x" in reprs  # numeric attribute

    def test_expr_sort(self, chain_schema):
        assert expr_sort(chain_schema, NavExpr(x, "A", ("to_b",))) == ("id", "B")
        assert expr_sort(chain_schema, NavExpr(x, "A", ("x",))) == ("numeric", None)

    def test_universe_bounded_on_acyclic(self, chain_schema):
        saturated = universe_size_per_anchor(chain_schema, "A", 4)
        larger = universe_size_per_anchor(chain_schema, "A", 30)
        assert saturated == larger  # acyclic schemas saturate

    def test_universe_grows_on_cycles(self, cycle_schema):
        sizes = [
            universe_size_per_anchor(cycle_schema, "P", depth)
            for depth in (2, 4, 8)
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_navigation_universe_multi_anchor(self, travel_schema):
        universe = navigation_universe(travel_schema, (x,), 2)
        anchors = {e.relation for e in universe if not e.path}
        assert anchors == {"FLIGHTS", "HOTELS"}


class TestIsoTypeFromValuation:
    def test_type_reflects_database(self, travel_db, travel_schema):
        f1 = Identifier("FLIGHTS", "f1")
        h1 = Identifier("HOTELS", "h1")
        tau = iso_type_of_valuation(
            travel_schema, (x, y, p), travel_db, {x: f1, y: h1, p: Fraction(400)}, 3
        )
        tau.validate()
        assert tau.anchor_of(x) == "FLIGHTS"
        # x's compatible hotel IS y (f1 → h1)
        assert tau.equal(NavExpr(x, "FLIGHTS", ("comp_hotel_id",)), y)
        # p equals x's price
        assert tau.equal(NavExpr(x, "FLIGHTS", ("price",)), p)

    def test_null_variables(self, travel_db, travel_schema):
        tau = iso_type_of_valuation(
            travel_schema, (x, p), travel_db, {x: None, p: Fraction(0)}, 2
        )
        tau.validate()
        assert tau.is_null(x)
        assert tau.equal(p, ZERO_ELEM)

    def test_condition_satisfaction(self, travel_db, travel_schema):
        f1 = Identifier("FLIGHTS", "f1")
        h1 = Identifier("HOTELS", "h1")
        tau = iso_type_of_valuation(
            travel_schema, (x, y, p), travel_db, {x: f1, y: h1, p: Fraction(400)}, 3
        )
        atom = RelationAtom("FLIGHTS", (x, p, y))
        assert tau.satisfies(atom)
        assert tau.satisfies(Not(Eq(x, NULL)))
        assert not tau.satisfies(Eq(x, NULL))

    def test_satisfaction_matches_concrete(self, travel_db, travel_schema):
        """τ ⊨ φ coincides with D ⊨ φ(ν) — the invariant behind the
        symbolic representation (Fact 32 of Appendix C.1)."""
        conditions = [
            RelationAtom("FLIGHTS", (x, p, y)),
            Eq(x, NULL),
            Eq(y, NULL),
            Not(Eq(x, y)),
            And(Not(Eq(x, NULL)), Not(Eq(y, NULL))),
        ]
        f1 = Identifier("FLIGHTS", "f1")
        valuations = [
            {x: f1, y: Identifier("HOTELS", "h1"), p: Fraction(400)},
            {x: f1, y: Identifier("HOTELS", "h2"), p: Fraction(400)},
            {x: None, y: None, p: Fraction(0)},
        ]
        for valuation in valuations:
            tau = iso_type_of_valuation(
                travel_schema, (x, y, p), travel_db, valuation, 3
            )
            for condition in conditions:
                assert tau.satisfies(condition) == condition.evaluate(
                    travel_db, valuation
                ), (condition, valuation)

    def test_projection(self, travel_db, travel_schema):
        f1 = Identifier("FLIGHTS", "f1")
        tau = iso_type_of_valuation(
            travel_schema, (x, y, p), travel_db,
            {x: f1, y: Identifier("HOTELS", "h1"), p: Fraction(400)}, 3,
        )
        projected = tau.project([x])
        projected.validate()
        assert projected.anchor_of(x) == "FLIGHTS"
        assert all(e.var == x for e in projected.navigation)

    def test_projection_depth_limit(self, travel_db, travel_schema):
        f1 = Identifier("FLIGHTS", "f1")
        tau = iso_type_of_valuation(
            travel_schema, (x,), travel_db, {x: f1}, 3
        )
        shallow = tau.project([x], max_length=1)
        assert all(e.length <= 1 for e in shallow.navigation)

    def test_canonical_key_stable(self, travel_db, travel_schema):
        f1 = Identifier("FLIGHTS", "f1")
        tau1 = iso_type_of_valuation(travel_schema, (x,), travel_db, {x: f1}, 2)
        tau2 = iso_type_of_valuation(travel_schema, (x,), travel_db, {x: f1}, 2)
        assert tau1.canonical_key() == tau2.canonical_key()
        f2 = Identifier("FLIGHTS", "f2")
        tau3 = iso_type_of_valuation(travel_schema, (x,), travel_db, {x: f2}, 2)
        # f1 and f2 have the same local shape: same isomorphism type
        assert tau1.canonical_key() == tau3.canonical_key()


class TestValidation:
    def test_unanchored_non_null_rejected(self, travel_schema):
        bad = IsoType(
            travel_schema,
            (x,),
            frozenset(),
            (
                frozenset({x}),
                frozenset({NULL_ELEM}),
                frozenset({ZERO_ELEM}),
            ),
        )
        with pytest.raises(ConditionError, match="null"):
            bad.validate()
