"""Replay of the checked-in fuzz regression corpus (``tests/corpus``).

Every entry regenerates its scenario from the embedded seed +
GenConfig, must match the stored serialized models byte-for-byte
(generator stability) and the stored job content hash, and must
reproduce both checkers' recorded verdicts with no cross-check
discrepancy.  The corpus is the fuzzer's long-term memory: a nightly
discrepancy, once fixed, lands here as a permanent regression test
(see docs/testing.md for the recipe).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz import load_corpus_entry, replay_corpus_entry

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("scenario-*.json"))


def test_corpus_is_populated():
    assert len(CORPUS) >= 25


def test_corpus_mixes_verdicts():
    """The corpus must keep exercising all three symbolic outcomes and
    both interesting bounded outcomes."""
    symbolic = set()
    bounded = set()
    for path in CORPUS:
        expected = json.loads(path.read_text())["expected"]
        symbolic.add(expected["symbolic"])
        bounded.add(expected["bounded"])
    assert {"holds", "violated", "budget_exceeded"} <= symbolic
    assert {"clean", "violated"} <= bounded


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_entry_replays_with_agreeing_verdicts(path):
    entry = load_corpus_entry(path)
    outcome, notes = replay_corpus_entry(entry)
    assert not notes, f"{path.name}: {notes}"
    assert outcome.discrepancy is None
