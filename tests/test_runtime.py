"""Concrete semantics: transitions, local runs, trees, global runs."""

from fractions import Fraction

import pytest

from repro.database.instance import Identifier
from repro.errors import RunError
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.services import SetUpdate
from repro.logic.conditions import And, Eq, Not, RelationAtom, TRUE
from repro.logic.terms import Const, NULL, id_var, num_var
from repro.runtime import labels
from repro.runtime.global_run import Stage, count_linearizations, linearize
from repro.runtime.local_run import LocalRun, Step, segments, validate_local_run
from repro.runtime.state import TaskState, initial_state
from repro.runtime.transition import (
    check_close_child,
    check_internal_transition,
    enumerate_post_valuations,
)
from repro.runtime.tree import RunTree, RunTreeNode, validate_run_tree


@pytest.fixture
def mini_has(travel_schema):
    c_x = id_var("c_x")
    child = Task(
        name="C",
        variables=(c_x,),
        services=(InternalService("pick", post=Not(Eq(c_x, NULL))),),
        opening=OpeningService(pre=TRUE, input_map={}),
        closing=ClosingService(pre=Not(Eq(c_x, NULL)), output_map={id_var("r_y"): c_x}),
    )
    r_x, r_y = id_var("r_x"), id_var("r_y")
    root = Task(
        name="R",
        variables=(r_x, r_y),
        services=(InternalService("reset", post=Eq(r_x, NULL)),),
        children=(child,),
    )
    return HAS(travel_schema, root)


class TestStates:
    def test_initial_state(self, mini_has):
        root = mini_has.root
        state = initial_state(root, {})
        for variable in root.variables:
            assert state.valuation[variable] is None

    def test_initial_numeric_zero(self, travel_schema):
        t = Task(name="T", variables=(num_var("n"),))
        state = initial_state(t, {})
        assert state.valuation[num_var("n")] == Fraction(0)

    def test_missing_input_raises(self, travel_schema):
        x = id_var("x")
        t = Task(
            name="T",
            variables=(x,),
            opening=OpeningService(pre=TRUE, input_map={x: x}),
        )
        with pytest.raises(KeyError):
            initial_state(t, {})


class TestTransitions:
    def test_internal_ok(self, mini_has, travel_db):
        root = mini_has.root
        service = root.service("reset")
        prev = initial_state(root, {})
        nxt = TaskState({v: None for v in root.variables})
        check_internal_transition(root, service, travel_db, prev, nxt)

    def test_post_violation_caught(self, mini_has, travel_db):
        root = mini_has.root
        service = root.service("reset")
        prev = initial_state(root, {})
        f1 = Identifier("FLIGHTS", "f1")
        bad = TaskState({id_var("r_x"): f1, id_var("r_y"): None})
        with pytest.raises(RunError, match="post-condition"):
            check_internal_transition(root, service, travel_db, prev, bad)

    def test_restriction_2_on_close(self, mini_has):
        root = mini_has.root
        child = root.child("C")
        f1 = Identifier("FLIGHTS", "f1")
        f2 = Identifier("FLIGHTS", "f2")
        prev = TaskState({id_var("r_x"): None, id_var("r_y"): f1})
        overwritten = TaskState({id_var("r_x"): None, id_var("r_y"): f2})
        with pytest.raises(RunError, match="restriction 2"):
            check_close_child(root, child, prev, overwritten)
        kept = TaskState({id_var("r_x"): None, id_var("r_y"): f1})
        check_close_child(root, child, prev, kept)

    def test_enumerate_post_valuations_solves_atoms(self, travel_db):
        c = id_var("c")
        p = num_var("p")
        h = id_var("h")
        post = RelationAtom("FLIGHTS", (c, p, h))
        results = list(enumerate_post_valuations((c, p, h), post, travel_db, {}))
        assert len(results) == 2  # one per flight row
        for valuation in results:
            assert post.evaluate(travel_db, valuation)


def _child_run(mini_has, travel_db):
    child = mini_has.root.child("C")
    f1 = Identifier("FLIGHTS", "f1")
    s0 = initial_state(child, {})
    s1 = TaskState({id_var("c_x"): f1})
    return LocalRun(
        child,
        {},
        [
            Step(s0, labels.opening("C")),
            Step(s1, labels.internal("C", "pick")),
            Step(s1, labels.closing("C")),
        ],
    )


class TestLocalRuns:
    def test_valid_child_run(self, mini_has, travel_db):
        run = _child_run(mini_has, travel_db)
        validate_local_run(run, travel_db)
        assert run.is_returning
        assert run.outputs == {id_var("c_x"): Identifier("FLIGHTS", "f1")}

    def test_must_start_with_opening(self, mini_has, travel_db):
        child = mini_has.root.child("C")
        s0 = initial_state(child, {})
        run = LocalRun(child, {}, [Step(s0, labels.internal("C", "pick"))])
        with pytest.raises(RunError, match="σ\\^o"):
            validate_local_run(run, travel_db)

    def test_closing_guard_checked(self, mini_has, travel_db):
        child = mini_has.root.child("C")
        s0 = initial_state(child, {})
        run = LocalRun(
            child, {}, [Step(s0, labels.opening("C")), Step(s0, labels.closing("C"))]
        )
        with pytest.raises(RunError, match="closing guard"):
            validate_local_run(run, travel_db)

    def test_segments(self, mini_has, travel_db):
        root = mini_has.root
        s0 = initial_state(root, {})
        run = LocalRun(
            root,
            {},
            [
                Step(s0, labels.opening("R")),
                Step(s0, labels.opening("C")),
                Step(s0, labels.closing("C")),
                Step(s0, labels.internal("R", "reset")),
                Step(s0, labels.opening("C")),
            ],
            complete=False,
        )
        segs = segments(run)
        assert [len(s) for s in segs] == [3, 2]

    def test_restriction_8_double_open(self, mini_has, travel_db):
        root = mini_has.root
        s0 = initial_state(root, {})
        run = LocalRun(
            root,
            {},
            [
                Step(s0, labels.opening("R")),
                Step(s0, labels.opening("C")),
                Step(s0, labels.closing("C")),
                Step(s0, labels.opening("C")),
            ],
            complete=False,
        )
        with pytest.raises(RunError, match="restriction 8"):
            validate_local_run(run, travel_db)

    def test_restriction_4_internal_with_active_child(self, mini_has, travel_db):
        root = mini_has.root
        s0 = initial_state(root, {})
        reset_state = TaskState({id_var("r_x"): None, id_var("r_y"): None})
        run = LocalRun(
            root,
            {},
            [
                Step(s0, labels.opening("R")),
                Step(s0, labels.opening("C")),
                Step(reset_state, labels.internal("R", "reset")),
            ],
            complete=False,
        )
        with pytest.raises(RunError, match="restriction 4"):
            validate_local_run(run, travel_db)


class TestRunTrees:
    def _tree(self, mini_has, travel_db):
        root = mini_has.root
        child_run = _child_run(mini_has, travel_db)
        f1 = Identifier("FLIGHTS", "f1")
        s0 = initial_state(root, {})
        s_after = TaskState({id_var("r_x"): None, id_var("r_y"): f1})
        root_run = LocalRun(
            root,
            {},
            [
                Step(s0, labels.opening("R")),
                Step(s0, labels.opening("C")),
                Step(s_after, labels.closing("C")),
            ],
            complete=False,
        )
        node = RunTreeNode(root_run, {1: RunTreeNode(child_run)})
        return RunTree(node)

    def test_valid_tree(self, mini_has, travel_db):
        validate_run_tree(self._tree(mini_has, travel_db), travel_db)

    def test_missing_child_run(self, mini_has, travel_db):
        tree = self._tree(mini_has, travel_db)
        tree.root.children.clear()
        with pytest.raises(RunError, match="no child run"):
            validate_run_tree(tree, travel_db)

    def test_return_value_mismatch(self, mini_has, travel_db):
        tree = self._tree(mini_has, travel_db)
        f2 = Identifier("FLIGHTS", "f2")
        bad = TaskState({id_var("r_x"): None, id_var("r_y"): f2})
        tree.root.run.steps[2] = Step(bad, labels.closing("C"))
        with pytest.raises(RunError):
            validate_run_tree(tree, travel_db)

    def test_linearization(self, mini_has, travel_db):
        tree = self._tree(mini_has, travel_db)
        runs = list(linearize(mini_has, tree, limit=None))
        assert len(runs) >= 1
        run = runs[0]
        # opening of C activates it; closing returns the value
        stages = [config.stages["C"] for config in run]
        assert Stage.ACTIVE in stages
        assert stages[-1] is Stage.CLOSED
        final = run[-1]
        assert final.valuations[id_var("r_y")] == Identifier("FLIGHTS", "f1")

    def test_interleaving_count_single_child_is_one(self, mini_has, travel_db):
        tree = self._tree(mini_has, travel_db)
        # a single child's events are totally ordered with the parent's
        assert count_linearizations(mini_has, tree) == 1
