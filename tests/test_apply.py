"""Symbolic condition application: refinement semantics and case splits."""

from fractions import Fraction

import pytest

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.errors import ConditionError
from repro.logic.conditions import (
    And,
    ArithAtom,
    Eq,
    Exists,
    Implies,
    Not,
    Or,
    RelationAtom,
    TRUE,
    FALSE,
)
from repro.logic.terms import Const, NULL, id_var, num_var
from repro.symbolic.apply import apply_condition, condition_status, pull_exists
from repro.symbolic.store import ConstraintStore

x, y = id_var("x"), id_var("y")
p, q = num_var("p"), num_var("q")


@pytest.fixture
def store(travel_schema):
    return ConstraintStore(travel_schema)


def refinements(store, condition):
    return list(apply_condition(store, condition))


class TestBasics:
    def test_true_false(self, store):
        assert len(refinements(store, TRUE)) == 1
        assert refinements(store, FALSE) == []

    def test_eq_refinement(self, store):
        (refined,) = refinements(store, Eq(x, y))
        assert refined.equal(refined.node_of(x), refined.node_of(y)) is True

    def test_contradiction_pruned(self, store):
        store.assert_neq(store.node_of(x), store.node_of(y))
        assert refinements(store, Eq(x, y)) == []

    def test_or_branches(self, store):
        results = refinements(store, Or(Eq(x, NULL), Eq(y, NULL)))
        assert len(results) >= 2

    def test_and_conjoins(self, store):
        (refined,) = refinements(store, And(Eq(x, NULL), Eq(y, NULL)))
        assert refined.null_status(refined.node_of(x)) is True
        assert refined.null_status(refined.node_of(y)) is True

    def test_arith_applied(self, store):
        atom = ArithAtom(compare(linvar(p), Rel.GT, linconst(5)))
        (refined,) = refinements(store, atom)
        node = refined.node_of(p)
        assert refined.equal(node, refined.const(3)) is False


class TestRelationAtoms:
    def test_positive_builds_navigation(self, store):
        atom = RelationAtom("FLIGHTS", (x, p, y))
        (refined,) = refinements(store, atom)
        node = refined.node_of(x)
        assert refined.anchor_of(node) == "FLIGHTS"
        hotel = refined.child_of(node, "comp_hotel_id")
        assert hotel is not None
        assert refined.equal(hotel, refined.node_of(y)) is True

    def test_negative_branches_cover_falsifications(self, store):
        atom = RelationAtom("FLIGHTS", (x, p, y))
        results = refinements(store, Not(atom))
        assert len(results) >= 3  # null, other anchor, position mismatches
        kinds = set()
        for refined in results:
            node = refined.node_of(x)
            if refined.null_status(node) is True:
                kinds.add("null")
            elif "FLIGHTS" in refined.excluded_anchors(node):
                kinds.add("excluded")
            else:
                kinds.add("mismatch")
        assert kinds == {"null", "excluded", "mismatch"}

    def test_positive_then_negative_contradiction(self, store):
        atom = RelationAtom("HOTELS", (x, p, q))
        (refined,) = refinements(store, atom)
        # the same atom cannot now be false: null/exclusion/equal-args all clash
        survivors = refinements(refined, Not(atom))
        assert survivors == []

    def test_implication(self, store):
        cond = Implies(Eq(x, NULL), Eq(y, NULL))
        results = refinements(store, cond)
        assert results
        for refined in results:
            nx = refined.null_status(refined.node_of(x))
            ny = refined.null_status(refined.node_of(y))
            assert nx is False or ny is True


class TestExists:
    def test_pull_exists(self):
        c = id_var("c")
        cond = And(Eq(x, NULL), Exists((c,), Eq(c, y)))
        bound, matrix = pull_exists(cond)
        assert bound == (c,)

    def test_exists_applies_anonymously(self, store):
        c = id_var("c")
        pr = num_var("pr")
        cond = Exists((c, pr), RelationAtom("FLIGHTS", (c, pr, x)))
        (refined,) = refinements(store, cond)
        # x is anchored to HOTELS through the flight's FK …
        assert refined.anchor_of(refined.node_of(x)) == "HOTELS"
        # … but c and pr are not bound afterwards
        assert c not in refined.bound_variables()

    def test_negated_exists_rejected(self, store):
        c = id_var("c")
        cond = Not(Exists((c,), Eq(c, x)))
        with pytest.raises(ConditionError):
            refinements(store, cond)


class TestConditionStatus:
    def test_unknown(self, store):
        assert condition_status(store, Eq(x, y)) is None

    def test_definite_true(self, store):
        store.assert_eq(store.node_of(x), store.node_of(y))
        assert condition_status(store, Eq(x, y)) is True

    def test_definite_false(self, store):
        store.assert_neq(store.node_of(x), store.node_of(y))
        assert condition_status(store, Eq(x, y)) is False
