"""Schema classification and path counting (Definition 1, Appendix C.3)."""

import pytest

from repro.database.fkgraph import ForeignKeyGraph, SchemaClass, navigation_depth
from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.workloads.schemas import (
    acyclic_chain_schema,
    cyclic_schema,
    linear_cycle_schema,
    star_schema,
)


class TestClassification:
    def test_acyclic(self, chain_schema):
        assert ForeignKeyGraph(chain_schema).classify() is SchemaClass.ACYCLIC

    def test_simple_cycle_is_linear(self, cycle_schema):
        assert ForeignKeyGraph(cycle_schema).classify() is SchemaClass.LINEARLY_CYCLIC

    def test_self_loop_is_linear(self):
        schema = DatabaseSchema(
            (Relation("EMP", (foreign_key("manager", "EMP"),)),)
        )
        assert ForeignKeyGraph(schema).classify() is SchemaClass.LINEARLY_CYCLIC

    def test_two_cycles_through_one_relation_is_cyclic(self):
        schema = DatabaseSchema(
            (
                Relation("X", (foreign_key("a", "Y"), foreign_key("b", "Z"))),
                Relation("Y", (foreign_key("back", "X"),)),
                Relation("Z", (foreign_key("back", "X"),)),
            )
        )
        assert ForeignKeyGraph(schema).classify() is SchemaClass.CYCLIC

    def test_generators_match_their_class(self):
        assert (
            ForeignKeyGraph(acyclic_chain_schema(4)).classify()
            is SchemaClass.ACYCLIC
        )
        assert (
            ForeignKeyGraph(linear_cycle_schema(4)).classify()
            is SchemaClass.LINEARLY_CYCLIC
        )
        assert ForeignKeyGraph(cyclic_schema(4)).classify() is SchemaClass.CYCLIC
        assert ForeignKeyGraph(star_schema(3)).classify() is SchemaClass.ACYCLIC


class TestPathCounting:
    def test_path_count_empty_path(self, chain_schema):
        graph = ForeignKeyGraph(chain_schema)
        assert graph.path_count("C", 5) == 1  # only the empty path

    def test_path_count_chain(self, chain_schema):
        graph = ForeignKeyGraph(chain_schema)
        assert graph.path_count("A", 1) == 2  # ε, to_b
        assert graph.path_count("A", 2) == 3  # ε, to_b, to_b.to_c
        assert graph.path_count("A", 9) == 3  # saturates on acyclic schemas

    def test_F_grows_linearly_on_linear_cycles(self):
        graph = ForeignKeyGraph(linear_cycle_schema(3))
        counts = [graph.max_path_count(n) for n in (1, 2, 4, 8)]
        assert counts == [2, 3, 5, 9]  # 1 + n: linear growth

    def test_F_grows_exponentially_on_cyclic(self):
        graph = ForeignKeyGraph(cyclic_schema(3, fanout=2))
        counts = [graph.max_path_count(n) for n in (1, 2, 3, 4)]
        # 2 outgoing edges everywhere: 2^(n+1) - 1 paths
        assert counts == [3, 7, 15, 31]

    def test_longest_simple_path_acyclic(self, chain_schema):
        assert ForeignKeyGraph(chain_schema).longest_simple_path_length() == 2

    def test_longest_simple_path_rejects_cycles(self, cycle_schema):
        with pytest.raises(ValueError):
            ForeignKeyGraph(cycle_schema).longest_simple_path_length()


class TestNavigationDepth:
    def test_leaf_task_h(self, chain_schema):
        graph = ForeignKeyGraph(chain_schema)
        # h(T) = 1 + k·F(1); F(1) = 2 on the chain
        assert navigation_depth(graph, 3) == 1 + 3 * 2

    def test_h_grows_with_children(self, chain_schema):
        graph = ForeignKeyGraph(chain_schema)
        leaf_h = navigation_depth(graph, 2)
        parent_h = navigation_depth(graph, 2, (leaf_h,))
        assert parent_h > leaf_h
