"""Parallel Karp–Miller exploration and sharded suites.

The contract under test (docs/performance.md, "Parallel exploration"):
``km_workers > 1`` must be **byte-identical** to the sequential
``km_order="lifo"`` path — same verdict, same witness bytes, same km
node and summary counts — because parallelism is implemented as a
cache-warming *scout* pass followed by an untouched sequential replay.
Alongside the parity suite this file pins the thread-safety audit fixes
(TaskVASS interning, phase timers, attribution context, trace emission),
stress-tests the scout's concurrent covering-check/pruning machinery,
exercises the advisory ``flock`` on the on-disk caches under real
multi-process contention, and proves ``--shard k/N`` + ``--merge-jsonl``
reassemble a byte-identical-to-unsharded suite report.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from dataclasses import replace
from io import StringIO
from pathlib import Path

import pytest

import repro.vass.karp_miller as km
from repro.database.fkgraph import SchemaClass
from repro.errors import ReproError
from repro.examples.travel import discount_policy_property_lite, travel_lite
from repro.fuzz import generate_scenario
from repro.obs import trace
from repro.obs.attribution import ATTRIBUTION
from repro.perf.counters import COUNTERS
from repro.perf.phases import PHASES
from repro.service.cache import ResultCache, SummaryStore, _advisory_write_lock
from repro.service.jobs import JobOutcome, VerificationJob
from repro.service.pool import execute_payload
from repro.service.runner import (
    merge_shard_jsonl,
    parse_shard,
    run_batch,
    shard_jobs,
)
from repro.service.suites import build_suite
from repro.vass import VASS, build_km_graph
from repro.vass.karp_miller import scout_km_graph
from repro.verifier import Verifier, VerifierConfig
from repro.verifier.task_vass import TaskVASS
from repro.workloads import table1_workload

REPO_ROOT = Path(__file__).parent.parent


def _fresh_caches() -> None:
    """Clear the process-global content-keyed caches so a run starts as
    cold as a fresh process (the scout's whole effect is warming them —
    parity must hold from cold either way)."""
    from repro.arith import fm
    from repro.symbolic import store as symbolic_store

    fm.clear_caches()
    symbolic_store.clear_canonical_caches()


def _run_payload(job: VerificationJob) -> JobOutcome:
    return JobOutcome.from_dict(execute_payload(job.payload()))


def _parity_view(outcome: JobOutcome) -> str:
    """Canonical semantic bytes minus the content key: ``km_workers`` is
    serialized when non-default (the ``km_order`` pattern), so the keys
    of a sequential and a parallel job legitimately differ while every
    other semantic byte must not."""
    data = outcome.semantic_dict()
    del data["key"]
    return json.dumps(data, sort_keys=True)


def _verify_fingerprint(has, prop, workers: int, **config_kwargs):
    """Verdict/witness/counts fingerprint at the Verifier level; raised
    ``ReproError`` subclasses fingerprint by name (a budget abort must
    also be parity-stable)."""
    _fresh_caches()
    config = VerifierConfig(km_workers=workers, **config_kwargs)
    try:
        result = Verifier(has, config).verify(prop)
    except ReproError as exc:
        return ("raised", type(exc).__name__)
    return (
        result.holds,
        result.witness_kind,
        [repr(step) for step in result.witness],
        result.loop_start,
        result.stats.km_nodes,
        result.stats.summaries,
    )


# ----------------------------------------------------------------------
# scout/replay byte parity
# ----------------------------------------------------------------------
class TestScoutReplayParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_travel_lite_byte_parity(self, workers):
        has = travel_lite(False)
        prop = discount_policy_property_lite(has)

        def job(n: int) -> VerificationJob:
            return VerificationJob(
                has=has,
                prop=prop,
                config=VerifierConfig(km_budget=60_000, km_workers=n),
                name="travel-lite::parity",
            )

        _fresh_caches()
        sequential = _run_payload(job(1))
        _fresh_caches()
        parallel = _run_payload(job(workers))
        assert sequential.status == "violated"
        assert _parity_view(parallel) == _parity_view(sequential)
        assert parallel.km_nodes == sequential.km_nodes
        assert parallel.summaries == sequential.summaries
        assert parallel.witness_json == sequential.witness_json

    def test_table1_cell_byte_parity(self):
        spec = table1_workload(
            SchemaClass.ACYCLIC, depth=2, with_sets=True, violated=True
        )
        fingerprints = {
            workers: _verify_fingerprint(
                spec.has, spec.prop, workers, km_budget=60_000
            )
            for workers in (1, 2, 4)
        }
        assert fingerprints[2] == fingerprints[1]
        assert fingerprints[4] == fingerprints[1]
        assert fingerprints[1][0] == spec.expected_holds

    @pytest.mark.slow
    def test_fuzz_scenarios_byte_parity(self):
        """20 generated scenarios, km_workers=4 vs sequential: the scout
        must be invisible on arbitrary generated models, not just the
        curated examples."""
        mismatches = []
        for index in range(20):
            scenario = generate_scenario(29, index)
            sequential = _verify_fingerprint(
                scenario.has, scenario.prop, 1, km_budget=20_000
            )
            parallel = _verify_fingerprint(
                scenario.has, scenario.prop, 4, km_budget=20_000
            )
            if parallel != sequential:
                mismatches.append((scenario.name, sequential, parallel))
        assert not mismatches, f"scout/replay divergence: {mismatches}"

    @pytest.mark.slow
    def test_gallery_jobs_byte_parity(self):
        """Every verdict-bounded gallery job agrees byte-for-byte at
        km_workers=4.  Wall-clock-boxed entries are excluded: the scout
        spends half the remaining deadline, so a job *defined* by its
        deadline has no parity contract (the bench family reports their
        parity as ``n/a (wall-boxed)`` for the same reason)."""
        jobs = [
            job
            for job in build_suite("gallery")
            if job.config.time_limit_seconds is None
        ]
        assert len(jobs) >= 50  # the gallery contract keeps this large
        mismatches = []
        for job in jobs:
            sequential = _run_payload(job)
            parallel = _run_payload(
                VerificationJob(
                    has=job.has,
                    prop=job.prop,
                    config=replace(job.config, km_workers=4),
                    name=job.name,
                    expected_holds=job.expected_holds,
                    expected_status=job.expected_status,
                )
            )
            if _parity_view(parallel) != _parity_view(sequential):
                mismatches.append(job.name)
        assert not mismatches, f"gallery parity failures: {mismatches}"

    @pytest.mark.slow
    def test_families_jobs_byte_parity(self):
        """The quick tier of every parametric scenario family, km_workers=4
        vs sequential, through the full payload pipeline."""
        for job in build_suite("families", quick=True):
            sequential = _run_payload(job)
            parallel = _run_payload(
                VerificationJob(
                    has=job.has,
                    prop=job.prop,
                    config=replace(job.config, km_workers=4),
                    name=job.name,
                    expected_holds=job.expected_holds,
                    expected_status=job.expected_status,
                )
            )
            assert _parity_view(parallel) == _parity_view(sequential), job.name

    @pytest.mark.slow
    def test_corpus_scenarios_byte_parity(self):
        """Every checked-in fuzz corpus entry, replayed under its recorded
        budgets at km_workers=4 vs sequential."""
        from repro.service.serialize import from_dict

        corpus = sorted((REPO_ROOT / "tests" / "corpus").glob("*.json"))
        assert corpus
        for path in corpus:
            entry = json.loads(path.read_text())
            has = from_dict(entry["has"])
            prop = from_dict(entry["prop"])
            config = from_dict(entry["verifier_config"])
            sequential = _verify_fingerprint(
                has, prop, 1, km_budget=config.km_budget
            )
            parallel = _verify_fingerprint(
                has, prop, 4, km_budget=config.km_budget
            )
            assert parallel == sequential, path.name

    def test_km_workers_serializes_only_when_non_default(self):
        """The km_order pattern: default stays out of the wire form (old
        keys survive), non-default is part of job identity."""
        from repro.service.serialize import from_dict, to_dict

        assert "km_workers" not in to_dict(VerifierConfig())
        parallel = to_dict(VerifierConfig(km_workers=4))
        assert parallel["km_workers"] == 4
        assert from_dict(parallel).km_workers == 4

        has = travel_lite(True)
        prop = discount_policy_property_lite(has)
        default_key = VerificationJob(
            has=has, prop=prop, config=VerifierConfig(), name="a"
        ).key()
        explicit_default_key = VerificationJob(
            has=has, prop=prop, config=VerifierConfig(km_workers=1), name="b"
        ).key()
        parallel_key = VerificationJob(
            has=has, prop=prop, config=VerifierConfig(km_workers=4), name="c"
        ).key()
        assert default_key == explicit_default_key
        assert parallel_key != default_key

    @pytest.mark.slow
    def test_parallel_run_is_hash_seed_independent(self):
        """The PR 3 subprocess matrix extended to km_workers=4: one
        byte-identical fingerprint across PYTHONHASHSEED values, and the
        parallel fingerprint equals the sequential one in-process."""
        script = (
            "import json\n"
            "from repro.examples.travel import travel_lite, "
            "discount_policy_property_lite\n"
            "from repro.verifier import Verifier, VerifierConfig\n"
            "def fp(workers):\n"
            "    has = travel_lite(False)\n"
            "    r = Verifier(has, VerifierConfig(km_budget=60000, "
            "km_workers=workers)).verify(discount_policy_property_lite(has))\n"
            "    return [r.holds, r.witness_kind, [repr(s) for s in r.witness], "
            "r.stats.km_nodes, r.stats.summaries]\n"
            "seq, par = fp(1), fp(4)\n"
            "assert par == seq, (seq, par)\n"
            "print(json.dumps(par))\n"
        )
        outputs = set()
        for seed in ("0", "1", "4242"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                cwd=str(REPO_ROOT),
                check=True,
            )
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, f"hash-seed-dependent outcomes: {outputs}"

    def test_scout_stats_are_recorded(self):
        has = travel_lite(False)
        verifier = Verifier(has, VerifierConfig(km_budget=60_000, km_workers=4))
        verifier.verify(discount_policy_property_lite(has))
        stats = verifier.last_scout
        assert stats is not None
        assert stats.workers == 4
        assert stats.errors == []
        assert stats.expansions > 0
        assert sum(stats.per_worker_expansions) == stats.expansions


# ----------------------------------------------------------------------
# scout machinery (direct, on toy VASS systems)
# ----------------------------------------------------------------------
def _diamond() -> VASS:
    """Finite, acyclic, no domination: a → {b, c} → d where both paths
    produce the *same* d label (1, 1) — the shared-label first-writer-
    wins path is guaranteed to matter."""
    vass = VASS(dimension=2)
    vass.add_action("a", [1, 0], "b")
    vass.add_action("a", [0, 1], "c")
    vass.add_action("b", [0, 1], "d")
    vass.add_action("c", [1, 0], "d")
    return vass


def _pump() -> VASS:
    """One pumped counter (accelerates to ω) draining into leaves —
    dominated queue entries exist, so pruning rounds have prey."""
    vass = VASS(dimension=1)
    vass.add_action("hub", [1], "hub")
    for leaf in ("x", "y", "z"):
        vass.add_action("hub", [0], leaf)
        vass.add_action(leaf, [-1], leaf)
    return vass


class TestScoutMachinery:
    def test_rejects_fewer_than_two_workers(self):
        with pytest.raises(ValueError):
            scout_km_graph(_diamond(), "a", workers=1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_diamond_label_count_matches_sequential(self, workers):
        graph = build_km_graph(_diamond(), "a")
        sequential_labels = {node.label for node in graph.nodes}
        stats = scout_km_graph(_diamond(), "a", workers=workers)
        assert stats.errors == []
        assert stats.nodes == len(sequential_labels) == 4
        assert not stats.budget_exhausted

    def test_pumped_system_terminates_via_acceleration(self):
        stats = scout_km_graph(_pump(), "hub", workers=4, budget=10_000)
        assert stats.errors == []
        assert not stats.budget_exhausted  # ω-acceleration closed it out
        assert stats.nodes >= 4

    def test_stop_on_cancels_workers(self):
        stats = scout_km_graph(
            _pump(), "hub", workers=2, stop_on=lambda n: n.state == "x"
        )
        assert stats.stopped_early

    def test_stop_on_initial_state(self):
        stats = scout_km_graph(
            _diamond(), "a", workers=2, stop_on=lambda n: n.state == "a"
        )
        assert stats.stopped_early

    def test_budget_exhaustion_is_flagged(self):
        vass = VASS(dimension=1)
        vass.add_action("p", [1], "p")  # infinite without acceleration? no —
        vass.add_action("p", [0], "q")  # accelerates; use budget=1 to trip
        stats = scout_km_graph(vass, "p", workers=2, budget=1)
        assert stats.budget_exhausted
        assert stats.expansions <= 1

    def test_worker_errors_are_recorded_not_raised(self):
        class _Exploding:
            def successors(self, state, vector):
                if state == "boom":
                    raise RuntimeError("injected")
                yield ({}, "boom", "edge")

        stats = scout_km_graph(_Exploding(), "ok", workers=2)
        assert stats.errors
        assert any("injected" in error for error in stats.errors)

    def test_progress_events_carry_worker_ids(self, monkeypatch, tmp_path):
        monkeypatch.setattr(km, "PROGRESS_EVERY", 1)
        sink = tmp_path / "trace.jsonl"
        trace.start(sink)
        try:
            scout_km_graph(_pump(), "hub", workers=2, progress_label="toy")
        finally:
            trace.stop()
        records = [
            json.loads(line) for line in sink.read_text().splitlines() if line
        ]
        progress = [r for r in records if r.get("ev") == "km_progress"]
        assert progress, "PROGRESS_EVERY=1 must emit progress events"
        assert all("worker" in r for r in progress)
        assert {r["worker"] for r in progress} <= {0, 1}

    def test_barrier_forces_concurrent_covering_checks(self):
        """Two workers are held at a barrier inside ``successors`` for the
        b/c diamond branches, then released together — both compute the
        shared d label before either can insert it, so the locked
        first-writer-wins covering check is exercised for real, every
        run, not just when the scheduler cooperates."""
        inner = _diamond()
        barrier = threading.Barrier(2)

        class _Gated:
            def successors(self, state, vector):
                if state in ("b", "c"):
                    try:
                        barrier.wait(timeout=5.0)
                    except threading.BrokenBarrierError:
                        pass  # partner already finished; proceed alone
                yield from inner.successors(state, vector)

        for _ in range(5):
            barrier.reset()
            stats = scout_km_graph(_Gated(), "a", workers=2)
            assert stats.errors == []
            assert stats.nodes == 4  # d deduplicated, never double-counted

    def test_pruning_stress_under_forced_interleavings(self, monkeypatch):
        """Pruning after every expansion plus jittered successor timing:
        covering checks, steals, and pruning rounds interleave in a
        different order each rep, and the scout must stay consistent —
        no worker errors, books balanced, labels a subset of the
        sequential covering set's."""
        import random

        monkeypatch.setattr(km, "SCOUT_PRUNE_EVERY", 1)
        inner = _pump()
        sequential_labels = {
            node.label for node in build_km_graph(_pump(), "hub").nodes
        }
        sequential_states = {state for state, _vector in sequential_labels}

        for rep in range(6):
            jitter = random.Random(rep)

            class _Jittered:
                def successors(self, state, vector):
                    time.sleep(jitter.random() * 0.002)
                    yield from inner.successors(state, vector)

            stats = scout_km_graph(_Jittered(), "hub", workers=4, budget=5_000)
            assert stats.errors == []
            assert sum(stats.per_worker_expansions) == stats.expansions
            assert stats.expansions <= 5_000
            assert 1 <= stats.nodes
            # pruning only ever drops dominated frontier entries: every
            # state the scout visits exists in the sequential covering set
            assert stats.prunes >= 0


# ----------------------------------------------------------------------
# thread-safety audit regressions (docs/performance.md)
# ----------------------------------------------------------------------
class _SlowGet(dict):
    """A dict whose ``get`` dawdles after the lookup — widens the
    check-then-act window so interning races fire deterministically
    instead of once per thousand CI runs."""

    def get(self, key, default=None):
        value = super().get(key, default)
        time.sleep(0.0005)
        return value


class _FakeKeyedState:
    def __init__(self, key: tuple):
        self.key = key


class TestThreadSafetyRegressions:
    def _vass(self, thread_safe: bool) -> TaskVASS:
        class _Engine:
            _thread_safe = thread_safe
            deadline = None

        has = travel_lite(True)
        return TaskVASS(
            _Engine(), has.root, automaton=None, is_root=True,
            config=VerifierConfig(),
        )

    def test_intern_lock_only_on_thread_safe_engines(self):
        """Sequential engines must not pay for the lock; scout engines
        must have it."""
        assert self._vass(thread_safe=False)._intern_lock is None
        assert self._vass(thread_safe=True)._intern_lock is not None

    def test_intern_keeps_id_key_bijection_under_threads(self):
        """Pinned race: concurrent interning of colliding keys through an
        artificially slow ``_ids.get`` must still mint exactly one id per
        key (pre-fix, check-then-append doubled registry entries and
        broke the id ↔ key bijection the label map dedups on)."""
        vass = self._vass(thread_safe=True)
        vass._ids = _SlowGet()
        keys = [("k", i) for i in range(40)]
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for key in keys:
                vass.intern(_FakeKeyedState(key))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(vass._ids) == len(keys)
        assert len(vass.registry) == len(keys)  # no duplicate mints
        assert sorted(vass._ids.values()) == list(range(len(keys)))

    def test_phase_timers_are_thread_local(self):
        """A scout thread holding a phase open must not make the main
        thread's same-named activation look nested (pre-fix: shared depth
        counters), and scout-thread time must never leak into the main
        thread's snapshot."""
        PHASES.reset()
        opened = threading.Event()
        release = threading.Event()

        def worker():
            token = PHASES.begin("fm")
            opened.set()
            release.wait(timeout=5.0)
            PHASES.end("fm", token)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert opened.wait(timeout=5.0)
            token = PHASES.begin("fm")
            time.sleep(0.001)
            PHASES.end("fm", token)
            snapshot = PHASES.snapshot()
            assert snapshot["fm"]["calls"] == 1
            assert snapshot["fm"]["timed"] == 1  # outermost *here*, so timed
        finally:
            release.set()
            thread.join()
        after = PHASES.snapshot()
        assert after["fm"]["calls"] == 1  # worker's activation stayed private
        PHASES.reset()

    def test_phase_observer_fires_only_on_reporting_thread(self):
        PHASES.reset()
        samples = []
        PHASES.observer = lambda name, seconds: samples.append(name)
        try:
            def worker():
                token = PHASES.begin("canon")
                PHASES.end("canon", token)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert samples == []  # off-thread activation: no observer
            token = PHASES.begin("canon")
            PHASES.end("canon", token)
            assert samples == ["canon"]
        finally:
            PHASES.observer = None
            PHASES.reset()

    def test_attribution_context_is_thread_local(self):
        ATTRIBUTION.reset()
        try:
            ATTRIBUTION.set_context("root", "main-service")
            main_context = ATTRIBUTION._context
            assert main_context is not None
            seen = {}

            def worker():
                seen["initial"] = ATTRIBUTION._context
                ATTRIBUTION.set_context("child", "scout-service")
                seen["set"] = ATTRIBUTION._context
                ATTRIBUTION.clear_context()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["initial"] is None  # fresh thread: no inherited context
            assert seen["set"] is not None
            assert ATTRIBUTION._context == main_context  # survived the worker
        finally:
            ATTRIBUTION.reset()

    def test_trace_emission_is_concurrency_safe(self):
        """8 threads × 50 events through one sink: every line must parse
        as a standalone JSON record (the emit lock forbids interleaved
        writes) and no record may be lost."""
        sink = StringIO()
        trace.start(sink)
        try:
            barrier = threading.Barrier(8)

            def worker(worker_id):
                barrier.wait()
                for i in range(50):
                    trace.event(
                        "race_probe", worker=worker_id, i=i, pad="x" * 64
                    )

            threads = [
                threading.Thread(target=worker, args=(k,)) for k in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            trace.stop()
        records = [
            json.loads(line)
            for line in sink.getvalue().splitlines()
            if line.strip()
        ]
        probes = [r for r in records if r.get("ev") == "race_probe"]
        assert len(probes) == 8 * 50
        assert {(r["worker"], r["i"]) for r in probes} == {
            (k, i) for k in range(8) for i in range(50)
        }


# ----------------------------------------------------------------------
# advisory flock on the on-disk caches
# ----------------------------------------------------------------------
def _outcome(key: str) -> JobOutcome:
    return JobOutcome(
        name=f"job-{key[:8]}", key=key, status="holds", holds=True,
        km_nodes=7, summaries=3,
    )


_HAMMER_SCRIPT = """
import sys
from repro.service.cache import ResultCache, SummaryStore
from repro.service.jobs import JobOutcome

cache_dir, summary_dir, worker = sys.argv[1], sys.argv[2], int(sys.argv[3])
cache = ResultCache(cache_dir)
store = SummaryStore(summary_dir)
for i in range(25):
    shared = format(i, "064x")                 # every worker fights for these
    private = format(1000 + worker * 100 + i, "064x")
    for key in (shared, private):
        cache.put(key, JobOutcome(
            name=f"w{worker}-{i}", key=key, status="holds", holds=True,
            km_nodes=worker, summaries=i,
        ))
        store.put(key, {"worker": worker, "i": i, "payload": "y" * 256})
print(cache.lock_waits + store.lock_waits)
"""


class TestAdvisoryFileLock:
    def test_lock_waits_are_counted(self, tmp_path):
        """Deterministic contention: one thread camps on the lock while
        the main thread writes — the write must block, succeed, and count
        exactly the wait it experienced."""
        if __import__("importlib").util.find_spec("fcntl") is None:
            pytest.skip("no fcntl on this platform")
        cache = ResultCache(tmp_path)
        held = threading.Event()
        release = threading.Event()

        def camper():
            with _advisory_write_lock(cache):
                held.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=camper)
        baseline_waits = COUNTERS.flock_waits
        thread.start()
        try:
            assert held.wait(timeout=5.0)
            timer = threading.Timer(0.2, release.set)
            timer.start()
            cache.put("ab" * 32, _outcome("ab" * 32))  # blocks until release
            timer.cancel()
        finally:
            release.set()
            thread.join()
        assert cache.lock_waits == 1
        assert COUNTERS.flock_waits == baseline_waits + 1
        assert cache.get("ab" * 32) is not None

    def test_uncontended_writes_never_wait(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            key = format(i, "064x")
            cache.put(key, _outcome(key))
        assert cache.lock_waits == 0

    @pytest.mark.slow
    def test_four_processes_hammer_one_cache_dir(self, tmp_path):
        """The ISSUE's multi-process contention scenario: 4 processes
        write overlapping keys into one ResultCache and one SummaryStore
        concurrently; afterwards every record — shared and private —
        reads back and decodes clean."""
        cache_dir = tmp_path / "cache"
        summary_dir = tmp_path / "summaries"
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-c", _HAMMER_SCRIPT,
                    str(cache_dir), str(summary_dir), str(worker),
                ],
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": "0"},
                cwd=str(REPO_ROOT),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for worker in range(4)
        ]
        for proc in procs:
            stdout, stderr = proc.communicate(timeout=120)
            assert proc.returncode == 0, stderr
            assert int(stdout.strip()) >= 0  # lock_waits surfaced per process

        cache = ResultCache(cache_dir)
        store = SummaryStore(summary_dir)
        keys = [format(i, "064x") for i in range(25)] + [
            format(1000 + worker * 100 + i, "064x")
            for worker in range(4)
            for i in range(25)
        ]
        for key in keys:
            outcome = cache.get(key)
            assert outcome is not None, f"cache record {key[:8]} lost/corrupt"
            assert outcome.status == "holds"
            record = store.get(key)
            assert record is not None, f"summary record {key[:8]} lost/corrupt"
            assert record["payload"] == "y" * 256
        assert cache.misses == 0
        assert store.misses == 0


# ----------------------------------------------------------------------
# suite sharding + merge determinism
# ----------------------------------------------------------------------
class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)
        for bad in ("", "3", "0/4", "5/4", "a/b", "2/0", "-1/4", "1/4/2"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_suite(self):
        jobs = build_suite("gallery")
        shards = [shard_jobs(jobs, k, 3) for k in (1, 2, 3)]
        # disjoint + covering, order preserved inside each shard
        assert sum(len(shard) for shard in shards) == len(jobs)
        merged = sorted(
            (job for shard in shards for job in shard),
            key=lambda job: jobs.index(job),
        )
        assert merged == list(jobs)
        for shard in shards:
            indices = [jobs.index(job) for job in shard]
            assert indices == sorted(indices)
        # deterministic: same spec, same split
        assert [job.name for job in shard_jobs(jobs, 2, 3)] == [
            job.name for job in shards[1]
        ]
        # single shard is the identity
        assert shard_jobs(jobs, 1, 1) == list(jobs)

    def test_shard_assignment_is_content_keyed(self):
        jobs = build_suite("quick")
        for job in jobs:
            owner = int(job.key(), 16) % 3 + 1
            for index in (1, 2, 3):
                members = shard_jobs(jobs, index, 3)
                assert (job in members) == (index == owner)

    @pytest.mark.slow
    def test_sharded_merge_is_byte_identical_to_unsharded(self, tmp_path):
        """The headline sharding contract: 3 shard runs against a shared
        cache + summary store, merged, must reproduce the unsharded
        run's per-job semantic bytes in suite order — and again when the
        shared summary store is pre-warmed."""
        jobs = build_suite("quick")
        unsharded = run_batch(
            jobs,
            cache=ResultCache(tmp_path / "unsharded-cache"),
            summary_store=SummaryStore(tmp_path / "unsharded-summaries"),
        )
        expected = [outcome.semantic_bytes() for outcome in unsharded.outcomes]

        def run_shards(tag: str, summary_dir: Path) -> list[Path]:
            shared_cache = ResultCache(tmp_path / f"{tag}-cache")
            store = SummaryStore(summary_dir)
            paths = []
            for index in (1, 2, 3):
                report = run_batch(
                    shard_jobs(jobs, index, 3),
                    cache=shared_cache,
                    summary_store=store,
                )
                path = tmp_path / f"{tag}-shard-{index}.jsonl"
                report.to_jsonl(path)
                paths.append(path)
            return paths

        merged = merge_shard_jsonl(jobs, run_shards("cold", tmp_path / "s1"))
        assert [o.semantic_bytes() for o in merged.outcomes] == expected
        assert [o.name for o in merged.outcomes] == [job.name for job in jobs]
        # aggregates derived from semantic fields must agree too
        assert merged.violations == unsharded.violations
        assert merged.errors == unsharded.errors
        assert merged.merged_stats().km_nodes == unsharded.merged_stats().km_nodes

        # pre-warmed shared summary store: reuse must stay invisible
        warmed = merge_shard_jsonl(jobs, run_shards("warm", tmp_path / "s1"))
        assert [o.semantic_bytes() for o in warmed.outcomes] == expected

    def test_merge_rejects_incomplete_and_foreign_shards(self, tmp_path):
        jobs = build_suite("quick")
        shard_one = shard_jobs(jobs, 1, 2)
        report = run_batch(shard_one)
        path = tmp_path / "shard-1.jsonl"
        report.to_jsonl(path)
        if len(shard_one) < len(jobs):
            with pytest.raises(ValueError, match="incomplete"):
                merge_shard_jsonl(jobs, [path])
        # records that belong to no job in the merged suite are an error:
        # merge everything except the last shard job, leaving its record over
        with pytest.raises(ValueError, match="different suite"):
            merge_shard_jsonl(shard_one[:-1], [path])

    def test_merge_preserves_duplicate_key_order(self, tmp_path):
        """Jobs sharing a content key land on one shard and their records
        are consumed in occurrence order, so per-request provenance
        (names, expectations) survives the merge."""
        has = travel_lite(True)
        prop = discount_policy_property_lite(has)
        twins = [
            VerificationJob(has=has, prop=prop, name="first-twin"),
            VerificationJob(has=has, prop=prop, name="second-twin"),
        ]
        report = run_batch(twins, cache=ResultCache(tmp_path / "cache"))
        path = tmp_path / "twins.jsonl"
        report.to_jsonl(path)
        merged = merge_shard_jsonl(twins, [path])
        assert [o.name for o in merged.outcomes] == ["first-twin", "second-twin"]

    @pytest.mark.slow
    def test_cli_shard_merge_round_trip(self, tmp_path):
        """End-to-end through ``python -m repro``: two shard runs with a
        shared cache/summary store, merged with --merge-jsonl, match an
        unsharded CLI run's semantic JSONL bytes."""
        env = {"PYTHONPATH": "src", "PYTHONHASHSEED": "0"}

        def cli(*argv: str) -> subprocess.CompletedProcess:
            return subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(REPO_ROOT),
            )

        plain = cli("suite", "quick", "--jsonl", str(tmp_path / "plain.jsonl"))
        assert plain.returncode == 0, plain.stderr + plain.stdout
        for index in (1, 2):
            result = cli(
                "suite", "quick",
                "--shard", f"{index}/2",
                "--cache-dir", str(tmp_path / "cache"),
                "--summary-cache", str(tmp_path / "summaries"),
                "--jsonl", str(tmp_path / f"shard-{index}.jsonl"),
            )
            assert result.returncode == 0, result.stderr + result.stdout
            assert f"shard {index}/2" in result.stdout
        merged = cli(
            "suite", "quick",
            "--merge-jsonl",
            str(tmp_path / "shard-1.jsonl"), str(tmp_path / "shard-2.jsonl"),
            "--jsonl", str(tmp_path / "merged.jsonl"),
        )
        assert merged.returncode == 0, merged.stderr + merged.stdout
        assert "merged 4 outcomes from 2 shard file(s)" in merged.stdout

        def semantic_lines(path: Path) -> list[str]:
            lines = []
            for line in path.read_text().splitlines():
                data = json.loads(line)
                if data.get("aggregate"):
                    continue
                lines.append(
                    json.dumps(
                        JobOutcome.from_dict(data).semantic_dict(),
                        sort_keys=True,
                    )
                )
            return lines

        assert semantic_lines(tmp_path / "merged.jsonl") == semantic_lines(
            tmp_path / "plain.jsonl"
        )

    def test_shard_and_merge_are_mutually_exclusive(self):
        from repro.service.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(
                ["suite", "quick", "--shard", "1/2", "--merge-jsonl", "x.jsonl"]
            )
