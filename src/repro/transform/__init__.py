"""Specification transformations: the simplification lemmas of App. B.5."""

from repro.transform.simplify import (
    desugar_exists,
    eliminate_global_variables,
    eliminate_set_atoms,
    separate_passed_and_returned,
)

__all__ = [
    "desugar_exists",
    "eliminate_global_variables",
    "eliminate_set_atoms",
    "separate_passed_and_returned",
]
