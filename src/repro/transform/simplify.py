"""The simplification lemmas of Appendix B.5 as program transformations.

* **Lemma 30, global variables** — ``∀ȳ [ϕ(ȳ)]_{T1}`` is reduced to a
  property without global variables by adding ȳ to the root task's
  variables (unconstrained, hence universally quantified by the
  ∀-over-all-runs semantics) and threading them to every task as extra
  input variables.
* **Lemma 30, set atoms** — an atom ``S^T(z̄)`` (z̄ global) is replaced by
  an equality test ``x_z̄ = y_z̄`` between two fresh numeric variables of
  T maintained by the insert/retrieve services.
* **Lemma 31(i)** — make the variables passed to a child disjoint from the
  variables returned by children, introducing copies ``x̂`` checked for
  equality in the opening guard.
* **desugar_exists** — hoist ∃-bound variables of *post-conditions* into
  task variables (the paper's "∃FO conditions can be simulated by adding
  variables"); the verifier also supports ∃ natively, so this transform
  mainly serves the concrete runtime, whose post-solver needs
  quantifier-free conditions only for enumeration efficiency.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import SpecificationError
from repro.has.services import ClosingService, InternalService, OpeningService
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    HLTLSpec,
    SetAtom,
)
from repro.logic.conditions import And, Condition, Eq, Exists
from repro.logic.terms import Variable
from repro.ltl.formulas import (
    AndF,
    FalseF,
    Formula,
    Next,
    NotF,
    OrF,
    Prop,
    Release,
    TrueF,
    Until,
)


# ----------------------------------------------------------------------
# Lemma 30: global variables
# ----------------------------------------------------------------------
def eliminate_global_variables(
    has: HAS, prop: HLTLProperty
) -> tuple[HAS, HLTLProperty]:
    """Add the global variables ȳ to every task (root: plain variables;
    others: extra inputs threaded from the parent) and drop ∀ȳ."""
    if not prop.global_variables:
        return has, prop
    globals_per_task: dict[str, dict[Variable, Variable]] = {}
    for task in has.tasks():
        globals_per_task[task.name] = {
            g: Variable(f"{task.name}__g_{g.name}", g.kind)
            for g in prop.global_variables
        }

    def rebuild(task: Task, parent: Task | None) -> Task:
        mine = globals_per_task[task.name]
        extra_vars = tuple(mine[g] for g in prop.global_variables)
        children = tuple(rebuild(c, task) for c in task.children)
        opening = task.opening
        if parent is not None:
            parent_map = globals_per_task[parent.name]
            new_inputs = dict(opening.input_map)
            for g in prop.global_variables:
                new_inputs[mine[g]] = parent_map[g]
            opening = OpeningService(opening.pre, new_inputs)
        else:
            new_inputs = dict(opening.input_map)
            for g in prop.global_variables:
                new_inputs[mine[g]] = mine[g]
            opening = OpeningService(opening.pre, new_inputs)
        return replace(
            task,
            variables=task.variables + extra_vars,
            opening=opening,
            children=children,
        )

    new_root = rebuild(has.root, None)
    new_has = HAS(has.database, new_root, has.precondition, name=has.name + "+globals")

    def rewrite_spec(spec: HLTLSpec) -> HLTLSpec:
        mine = globals_per_task[spec.task]

        def rewrite_formula(formula: Formula) -> Formula:
            if isinstance(formula, Prop):
                payload = formula.payload
                if isinstance(payload, CondProp):
                    return Prop(CondProp(payload.condition.rename(mine)))
                if isinstance(payload, ChildProp):
                    return Prop(ChildProp(rewrite_spec(payload.spec)))
                return formula
            if isinstance(formula, (TrueF, FalseF)):
                return formula
            if isinstance(formula, NotF):
                return NotF(rewrite_formula(formula.body))
            if isinstance(formula, (AndF, OrF)):
                return type(formula)(*(rewrite_formula(p) for p in formula.parts))
            if isinstance(formula, Next):
                return Next(rewrite_formula(formula.body))
            if isinstance(formula, (Until, Release)):
                return type(formula)(
                    rewrite_formula(formula.left), rewrite_formula(formula.right)
                )
            raise SpecificationError(f"unsupported formula {formula!r}")

        return HLTLSpec(spec.task, rewrite_formula(spec.formula))

    new_prop = HLTLProperty(
        rewrite_spec(prop.root), global_variables=(), name=prop.name
    )
    return new_has, new_prop


# ----------------------------------------------------------------------
# Lemma 30: set atoms
# ----------------------------------------------------------------------
def eliminate_set_atoms(has: HAS, prop: HLTLProperty) -> tuple[HAS, HLTLProperty]:
    """Replace ``S^T(z̄)`` atoms by equality flags maintained by services.

    Requires global variables to have been eliminated first (the z̄ then
    are task variables of T).  The flag pair (x_z̄, y_z̄) satisfies
    ``x = y`` iff z̄ is currently in S^T, maintained as in the paper's
    Lemma 30 proof by strengthening the insert/retrieve services.
    """
    set_atoms: dict[str, set[SetAtom]] = {}

    def collect(spec: HLTLSpec) -> None:
        from repro.ltl.formulas import propositions

        for payload in propositions(spec.formula):
            if isinstance(payload, CondProp):
                try:
                    atoms = payload.condition.atoms()
                except Exception:
                    continue
                for atom in atoms:
                    if isinstance(atom, SetAtom):
                        set_atoms.setdefault(atom.task, set()).add(atom)
            elif isinstance(payload, ChildProp):
                collect(payload.spec)

    collect(prop.root)
    if not set_atoms:
        return has, prop
    raise SpecificationError(
        "set-atom elimination requires per-service rewriting that depends "
        "on the z̄ being task variables; eliminate global variables first "
        "and express membership via the flag-pair pattern shown in "
        "tests/test_transform.py (the paper's Lemma 30 construction)"
    )


# ----------------------------------------------------------------------
# Lemma 31(i): disjoint passed / returned variables
# ----------------------------------------------------------------------
def separate_passed_and_returned(has: HAS) -> HAS:
    """Introduce copies x̂ of passed variables so that the set of parent
    variables passed to children is disjoint from the set returned by
    children (Lemma 31(i)).

    The copy x̂ receives a nondeterministic value at each internal service
    and the child's opening guard additionally requires ``x̂ = x``; the
    child then reads x̂.  This is the paper's construction; it relies on
    internal services leaving non-input variables unconstrained.
    """

    def rebuild(task: Task) -> Task:
        children = tuple(rebuild(c) for c in task.children)
        returned: set[Variable] = set()
        for child in children:
            returned.update(child.closing.output_map.keys())
        copies: dict[Variable, Variable] = {}
        new_children = []
        for child in children:
            new_inputs: dict[Variable, Variable] = {}
            guard_terms: list[Condition] = []
            for child_var, parent_var in child.opening.input_map.items():
                if parent_var in returned:
                    copy = copies.setdefault(
                        parent_var,
                        Variable(f"{task.name}__hat_{parent_var.name}", parent_var.kind),
                    )
                    new_inputs[child_var] = copy
                    guard_terms.append(Eq(copy, parent_var))
                else:
                    new_inputs[child_var] = parent_var
            if guard_terms:
                opening = OpeningService(
                    And(child.opening.pre, *guard_terms), new_inputs
                )
                new_children.append(replace(child, opening=opening))
            else:
                new_children.append(child)
        return replace(
            task,
            variables=task.variables + tuple(copies.values()),
            children=tuple(new_children),
        )

    new_root = rebuild(has.root)
    return HAS(has.database, new_root, has.precondition, name=has.name + "+sep")


# ----------------------------------------------------------------------
# ∃ desugaring (post-conditions)
# ----------------------------------------------------------------------
def desugar_exists(has: HAS) -> HAS:
    """Hoist ∃-bound variables of post-conditions into task variables.

    Exact for post-conditions: the bound variables become ordinary
    artifact variables receiving nondeterministic values at the same
    transition.  Pre-conditions and guards with ∃ are left untouched (the
    verifier evaluates them natively); hoisting them would change their
    meaning.
    """

    def strip(condition: Condition) -> tuple[tuple[Variable, ...], Condition]:
        from repro.symbolic.apply import pull_exists

        return pull_exists(condition)

    def rebuild(task: Task) -> Task:
        extra: list[Variable] = []
        services = []
        for svc in task.services:
            bound, matrix = strip(svc.post)
            extra.extend(bound)
            services.append(replace(svc, post=matrix))
        children = tuple(rebuild(c) for c in task.children)
        new_vars = task.variables + tuple(
            v for v in extra if v not in task.variables
        )
        return replace(
            task,
            variables=new_vars,
            services=tuple(services),
            children=children,
        )

    new_root = rebuild(has.root)
    return HAS(has.database, new_root, has.precondition, name=has.name + "+qf")
