"""``python -m repro`` — the batch verification service CLI."""

import sys

from repro.service.cli import main

sys.exit(main())
