"""Differential fuzzing: seeded random HAS scenarios + a bounded
explicit-state reference checker cross-checking the symbolic verifier.

The subsystem has four layers:

* :mod:`repro.fuzz.gen` — a deterministic, seed-driven generator of
  random HAS models (artifact hierarchies, FK-acyclic schemas, services
  with opening/closing conditions) and random HLTL-FO properties, sized
  by a small :class:`~repro.fuzz.gen.GenConfig`, plus the *grow*
  operators (the shrinking edit operators in reverse) that guided
  campaigns use to mutate coverage-novel survivors;
* :mod:`repro.fuzz.reference` — a bounded explicit-state checker that
  exhaustively enumerates concrete runs over small database instances
  (the same operational semantics as ``runtime.simulator``) and confirms
  violations with the reference LTL evaluators and replay validation
  from ``repro.witness``;
* :mod:`repro.fuzz.coverage` — the process-global semantic-coverage
  registry: verifier code regions report stable feature strings, the
  campaign keeps the fired union as its coverage frontier, and
  ``--guided`` campaigns bias generation toward frontier-novel
  scenarios;
* :mod:`repro.fuzz.harness` — the differential campaign: every symbolic
  "violated" must produce a replay-confirmed concrete witness, and every
  symbolic "holds" must have no bounded concrete counterexample.
  Discrepancies are shrunk to minimal scenarios and serialized into
  replayable reports (``python -m repro fuzz --replay <report>``).

:mod:`repro.fuzz.mutations` provides named, deliberately-injected
verifier bugs used to smoke-test that the oracle actually catches
regressions (``tests/test_fuzz.py``) and that the checked-in corpus +
scenario families kill every bug through plain expectation pinning
(``tests/test_mutation_score.py``).

This package ``__init__`` is **lazy** (PEP 562): the verifier's low
layers (``arith.fm``, ``symbolic.store``, ``ltl.automaton``, …) import
``repro.fuzz.coverage`` at module load, and an eager ``__init__`` would
pull the whole harness — and with it the verifier itself — into their
import, creating a cycle.  ``from repro.fuzz import X`` still works for
every name in ``__all__``.
"""

from __future__ import annotations

_EXPORTS = {
    "GenConfig": "repro.fuzz.gen",
    "Scenario": "repro.fuzz.gen",
    "generate_scenario": "repro.fuzz.gen",
    "grow_scenarios": "repro.fuzz.gen",
    "COVERAGE": "repro.fuzz.coverage",
    "CoverageRegistry": "repro.fuzz.coverage",
    "FEATURES": "repro.fuzz.coverage",
    "CampaignReport": "repro.fuzz.harness",
    "Discrepancy": "repro.fuzz.harness",
    "ScenarioOutcome": "repro.fuzz.harness",
    "check_scenario": "repro.fuzz.harness",
    "corpus_entry": "repro.fuzz.harness",
    "corpus_entry_has": "repro.fuzz.harness",
    "load_corpus_entry": "repro.fuzz.harness",
    "load_report": "repro.fuzz.harness",
    "promote_survivors": "repro.fuzz.harness",
    "replay_corpus_entry": "repro.fuzz.harness",
    "replay_report": "repro.fuzz.harness",
    "run_campaign": "repro.fuzz.harness",
    "write_corpus_entry": "repro.fuzz.harness",
    "write_corpus_entry_has": "repro.fuzz.harness",
    "write_coverage_map": "repro.fuzz.harness",
    "BoundedConfig": "repro.fuzz.reference",
    "BoundedResult": "repro.fuzz.reference",
    "bounded_check": "repro.fuzz.reference",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
