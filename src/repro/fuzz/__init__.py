"""Differential fuzzing: seeded random HAS scenarios + a bounded
explicit-state reference checker cross-checking the symbolic verifier.

The subsystem has three layers:

* :mod:`repro.fuzz.gen` — a deterministic, seed-driven generator of
  random HAS models (artifact hierarchies, FK-acyclic schemas, services
  with opening/closing conditions) and random HLTL-FO properties, sized
  by a small :class:`~repro.fuzz.gen.GenConfig`;
* :mod:`repro.fuzz.reference` — a bounded explicit-state checker that
  exhaustively enumerates concrete runs over small database instances
  (the same operational semantics as ``runtime.simulator``) and confirms
  violations with the reference LTL evaluators and replay validation
  from ``repro.witness``;
* :mod:`repro.fuzz.harness` — the differential campaign: every symbolic
  "violated" must produce a replay-confirmed concrete witness, and every
  symbolic "holds" must have no bounded concrete counterexample.
  Discrepancies are shrunk to minimal scenarios and serialized into
  replayable reports (``python -m repro fuzz --replay <report>``).

:mod:`repro.fuzz.mutations` provides named, deliberately-injected
verifier bugs used to smoke-test that the oracle actually catches
regressions.
"""

from __future__ import annotations

from repro.fuzz.gen import GenConfig, Scenario, generate_scenario
from repro.fuzz.harness import (
    CampaignReport,
    Discrepancy,
    ScenarioOutcome,
    check_scenario,
    corpus_entry,
    corpus_entry_has,
    load_corpus_entry,
    load_report,
    replay_corpus_entry,
    replay_report,
    run_campaign,
    write_corpus_entry,
    write_corpus_entry_has,
)
from repro.fuzz.reference import BoundedConfig, BoundedResult, bounded_check

__all__ = [
    "BoundedConfig",
    "BoundedResult",
    "CampaignReport",
    "Discrepancy",
    "GenConfig",
    "Scenario",
    "ScenarioOutcome",
    "bounded_check",
    "check_scenario",
    "corpus_entry",
    "corpus_entry_has",
    "generate_scenario",
    "load_corpus_entry",
    "load_report",
    "replay_corpus_entry",
    "replay_report",
    "run_campaign",
    "write_corpus_entry",
    "write_corpus_entry_has",
]
