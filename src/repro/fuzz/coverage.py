"""Semantic-coverage registry: which verifier code regions a run fired.

The differential fuzzer's classic failure mode is unfalsifiable health:
"the campaign found nothing tonight" says nothing when every generated
scenario exercises the same handful of verifier branches.  This module
gives the campaign a measured coverage signal: a process-global,
dependency-free registry (the :mod:`repro.perf.counters` /
:mod:`repro.obs.attribution` pattern) that the verifier's interesting
code regions report into — engine summary/witness branches, Karp–Miller
frontier events, Fourier–Motzkin component outcomes, store absorb
steps, LTL tableau expansion shapes, the Definition-8/9 concrete-run
checkers, and the witness pipeline — as small stable *feature* strings.

The fuzz harness snapshots the features fired per scenario
(:meth:`CoverageRegistry.unit`), the campaign keeps the union as its
*frontier*, and guided generation (``python -m repro fuzz --guided``)
scores candidate scenarios by how many frontier-novel features they
fire.  Reports and the campaign coverage map persist canonical sorted
feature lists, so coverage is diffable run-over-run.

Contract (shared with the counters/phases/attribution registries):

* **dependency-free** — imports nothing from ``repro``; the arith,
  symbolic, LTL, runtime, VASS, verifier, and witness layers all call
  in, never the other way around (``repro.fuzz.__init__`` is lazy, so
  importing this module never drags the fuzz harness up the stack);
* **observationally invisible** — :meth:`CoverageRegistry.hit` only
  records; verdicts, witnesses, node counts, and job content hashes are
  byte-identical with the registry enabled or disabled (A/B-tested in
  ``tests/test_coverage.py``) and the cost stays inside the <3%
  instrumentation budget ``benchmarks/trace_overhead.py`` gates;
* **deterministic** — every feature site fires as a deterministic
  consequence of the (deterministic) search, and snapshots are sorted,
  so coverage sets are byte-stable across processes and
  ``PYTHONHASHSEED`` values (pinned by a subprocess test).

Feature names are ``layer:region[:case]``.  :data:`FEATURES` is the
closed inventory — a test asserts campaigns never emit a name outside
it, which keeps the inventory (and docs/testing.md's copy of it) honest.
"""

from __future__ import annotations

from typing import Iterator

#: The closed feature inventory: every name the instrumented code
#: regions may report, with a one-line description.  Adding a feature
#: means adding its site *and* this row (docs/testing.md renders this
#: table; ``tests/test_coverage.py`` asserts emitted ⊆ inventory).
FEATURES: dict[str, str] = {
    # --- verification engine (repro.verifier.engine) ------------------
    "engine:verdict:holds": "a property verified as holding",
    "engine:verdict:violated": "a property verified as violated",
    "engine:witness:blocking": "root search found a blocking counterexample",
    "engine:witness:lasso": "root search found a lasso counterexample",
    "engine:budget:boxed": "an exploration exhausted the KM node budget",
    "engine:summary:computed": "a child task summary R_T was computed",
    "engine:summary:output": "a summary recorded a returning output store",
    "engine:summary:blocking": "a summary recorded a blocking (non-returning) path",
    "engine:summary:lasso": "a summary recorded a lasso (non-returning) path",
    "engine:root:multi_start": "the precondition split the root start into cases",
    # --- Karp–Miller frontier (repro.vass.karp_miller) ----------------
    "km:omega_accel": "a counter was ω-accelerated against a path ancestor",
    "km:cover_prune": "a successor merged into an existing KM label",
    "km:dup_edge": "an exact duplicate successor edge was dropped",
    "km:succ_disabled": "a successor was disabled by a negative counter",
    "km:budget_box": "KM construction stopped on the expansion budget",
    # --- Fourier–Motzkin (repro.arith.fm) -----------------------------
    "fm:sat": "a constraint component was decided satisfiable",
    "fm:unsat": "a constraint component was decided unsatisfiable",
    "fm:diseq_split": "satisfiability used the disequality convexity split",
    "fm:proj:exact": "a projection was exact",
    "fm:proj:approx": "a projection dropped a live disequality (inexact)",
    "fm:proj:empty": "a projection collapsed to an unsatisfiable system",
    # --- symbolic store absorb (repro.symbolic.store) -----------------
    "store:absorb:input_binding": "absorb translated a mapped variable",
    "store:absorb:fresh_class": "absorb created an anonymous class for a live root",
    "store:absorb:null_fact": "absorb replayed a null/not-null fact",
    "store:absorb:navigation": "absorb replayed a navigation edge",
    "store:absorb:disequality": "absorb replayed a disequality",
    "store:absorb:numeric": "absorb replayed a numeric constraint",
    # --- LTL tableau (repro.ltl.automaton) ----------------------------
    "ltl:expand:until": "tableau expanded an Until obligation",
    "ltl:expand:release": "tableau expanded a Release obligation",
    "ltl:expand:next": "tableau deferred a Next obligation",
    "ltl:expand:or": "tableau branched on a disjunction",
    "ltl:expand:and": "tableau flattened a conjunction",
    "ltl:expand:contradiction": "a tableau branch died on a literal conflict",
    # --- Definition 8/9 checkers (repro.runtime.local_run) ------------
    "sim:check:internal": "a concrete internal transition was checked",
    "sim:check:open_child": "a concrete child-opening step was checked",
    "sim:check:close_child": "a concrete child-closing step was checked",
    "sim:check:self_close": "a concrete σ^c_T self-closing step was checked",
    "sim:check:blocking_segment": "a final segment left children open (blocking prefix)",
    "sim:reject": "a prescribed concrete run was rejected (RunError)",
    # --- witness pipeline (repro.witness) -----------------------------
    "witness:confirmed": "a concrete witness passed replay validation",
    "witness:seam_pin": "lasso materialization pinned the seam valuation",
    "witness:set_stabilized": "lasso replay needed the set-stabilization rule",
    "witness:shrink:chunk": "minimization dropped a step chunk",
    "witness:shrink:numeric": "minimization shrank a numeric value",
    "witness:shrink:rows": "minimization pruned database rows",
}


class _Unit:
    """One collection scope (typically: one fuzz scenario's whole
    differential check).  Context-manager handle returned by
    :meth:`CoverageRegistry.unit`; iterate or call :meth:`features`
    for the canonical sorted tuple."""

    __slots__ = ("_fired", "_registry")

    def __init__(self, registry: "CoverageRegistry") -> None:
        self._fired: set[str] = set()
        self._registry = registry

    def features(self) -> tuple[str, ...]:
        return tuple(sorted(self._fired))

    def __iter__(self) -> Iterator[str]:
        return iter(self.features())

    def __len__(self) -> int:
        return len(self._fired)

    def __enter__(self) -> "_Unit":
        self._registry._units.append(self._fired)
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry._units.remove(self._fired)


class CoverageRegistry:
    """Process-global set of fired coverage features.

    ``hit`` is the hot-path entry point: a guarded ``set.add`` (plus one
    per active collection unit).  Sites pass interned literal strings,
    so the common case costs one dict-hash of an already-hashed str.
    """

    __slots__ = ("enabled", "_global", "_units")

    def __init__(self) -> None:
        self.enabled = True
        self._global: set[str] = set()
        self._units: list[set[str]] = []

    # ------------------------------------------------------------------
    # recording (hot path)
    # ------------------------------------------------------------------
    def hit(self, feature: str) -> None:
        """Record that ``feature``'s code region fired."""
        if not self.enabled:
            return
        self._global.add(feature)
        units = self._units
        if units:
            for fired in units:
                fired.add(feature)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def unit(self) -> _Unit:
        """A context manager collecting the features fired inside it
        (in addition to the global cumulative set).  Units nest; each
        sees every feature fired while it is active."""
        return _Unit(self)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[str, ...]:
        """The canonical (sorted) tuple of every feature fired so far
        in this process."""
        return tuple(sorted(self._global))

    def __contains__(self, feature: str) -> bool:
        return feature in self._global

    def __len__(self) -> int:
        return len(self._global)

    def reset(self) -> None:
        """Forget all recorded features (tests, campaign isolation);
        active collection units keep what they already saw."""
        self._global.clear()


#: The process-global coverage registry the instrumented layers feed.
COVERAGE = CoverageRegistry()
