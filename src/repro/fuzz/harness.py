"""The differential fuzzing harness.

For each generated scenario the harness cross-checks the symbolic
verifier against two independent ground-truth obligations:

* a symbolic **violated** verdict must produce a concrete witness that
  replays through the concrete semantics and the reference LTL
  evaluators (``repro.witness.concretize`` — materialize, validate,
  minimize);
* a symbolic **holds** verdict must have no confirmed concrete
  counterexample within the bounded explicit-state search of
  :mod:`repro.fuzz.reference`.

Any failed obligation is a :class:`Discrepancy`.  Discrepancies are
shrunk to a minimal scenario (dropping services, children, artifact
relations, and property structure while the discrepancy reproduces —
and, for missed violations, delta-debugging the concrete counterexample
trace with ``repro.witness.minimize``) and serialized into a replayable
JSON report: ``python -m repro fuzz --replay <report>`` regenerates the
scenario from its embedded seed + :class:`~repro.fuzz.gen.GenConfig`
and re-runs the exact differential check.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.errors import BudgetExceeded, ReproError
from repro.fuzz.coverage import COVERAGE, FEATURES
from repro.fuzz.gen import (
    GenConfig,
    Scenario,
    generate_scenario,
    grow_scenarios,
    operator_targets,
)
from repro.fuzz.reference import (
    BoundedConfig,
    BoundedResult,
    VERDICT_VIOLATED,
    bounded_check,
)
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import (
    ChildProp,
    HLTLProperty,
    HLTLSpec,
    ServiceProp,
    validate_property,
)
from repro.has.restrictions import validate_has
from repro.has.services import SetUpdate
from repro.ltl.formulas import (
    AndF,
    Formula,
    Next,
    NotF,
    OrF,
    Release,
    Until,
    propositions,
)
from repro.service.jobs import VerificationJob
from repro.service.serialize import canonical_json, from_dict, to_dict
from repro.verifier.config import VerifierConfig
from repro.verifier.engine import Verifier
from repro.witness import ConcreteWitness, NonConcretizable, concretize
from repro.witness.minimize import minimize

SYMBOLIC_HOLDS = "holds"
SYMBOLIC_VIOLATED = "violated"
SYMBOLIC_BUDGET = "budget_exceeded"
SYMBOLIC_ERROR = "error"

#: Default budgets for one fuzzed scenario (deliberately small — the
#: generated systems are tiny, and a campaign runs many of them).
DEFAULT_VERIFIER_CONFIG = VerifierConfig(km_budget=20_000, time_limit_seconds=10.0)


@dataclass
class Discrepancy:
    """One broken cross-check obligation."""

    kind: str
    """``missed_violation`` — symbolic "holds" but the bounded checker
    found a replay-confirmed concrete counterexample;
    ``unconfirmed_witness`` — symbolic "violated" but the concretized
    witness failed replay validation;
    ``non_concretizable`` — symbolic "violated" with no concretizable
    witness *and* no confirming bounded counterexample (when the bounded
    checker independently finds one, a failed materialization is a known
    sampler incompleteness, not a verdict discrepancy);
    ``verifier_error`` — a checker layer (verifier, concretizer, or
    bounded search) crashed on a valid scenario."""

    detail: str = ""
    witness_json: dict | None = None
    """The confirming concrete counterexample (for missed violations)
    or the failed witness record, when one exists."""


@dataclass
class ScenarioOutcome:
    """Both checkers' verdicts on one scenario, plus the cross-check."""

    scenario: Scenario
    symbolic_status: str
    witness_status: str | None = None
    """confirmed | unconfirmed | non_concretizable | error (crashed)."""
    bounded: BoundedResult | None = None
    discrepancy: Discrepancy | None = None
    error: str = ""
    wall_seconds: float = 0.0
    coverage: tuple[str, ...] = ()
    """Canonical sorted coverage features the whole differential check
    fired (:mod:`repro.fuzz.coverage`)."""
    novelty: int = 0
    """Features this scenario fired that the campaign's frontier had not
    seen yet (0 outside campaigns)."""

    @property
    def agreed(self) -> bool:
        return self.discrepancy is None

    def one_line(self) -> str:
        bounded = self.bounded.verdict if self.bounded else "-"
        witness = self.witness_status or "-"
        flag = f"  DISCREPANCY({self.discrepancy.kind})" if self.discrepancy else ""
        return (
            f"{self.scenario.name:20s} symbolic={self.symbolic_status:15s} "
            f"witness={witness:17s} bounded={bounded:10s} "
            f"{self.wall_seconds:6.2f}s{flag}"
        )


def check_scenario(
    scenario: Scenario,
    verifier_config: VerifierConfig | None = None,
    bounded_config: BoundedConfig | None = None,
) -> ScenarioOutcome:
    """Run both checkers on one scenario and cross-check their verdicts."""
    started = time.monotonic()
    config = verifier_config or DEFAULT_VERIFIER_CONFIG
    outcome = ScenarioOutcome(scenario=scenario, symbolic_status=SYMBOLIC_ERROR)
    with COVERAGE.unit() as fired:
        _check_scenario(outcome, scenario, config, bounded_config)
    outcome.coverage = fired.features()
    outcome.wall_seconds = time.monotonic() - started
    return outcome


def _check_scenario(
    outcome: ScenarioOutcome,
    scenario: Scenario,
    config: VerifierConfig,
    bounded_config: BoundedConfig | None,
) -> None:
    result = None
    try:
        result = Verifier(scenario.has, config).verify(scenario.prop)
        outcome.symbolic_status = (
            SYMBOLIC_HOLDS if result.holds else SYMBOLIC_VIOLATED
        )
    except BudgetExceeded:
        outcome.symbolic_status = SYMBOLIC_BUDGET
    except Exception as exc:  # noqa: BLE001 — a crash on valid input is a finding
        outcome.symbolic_status = SYMBOLIC_ERROR
        outcome.error = f"{type(exc).__name__}: {exc}"

    witness: ConcreteWitness | NonConcretizable | None = None
    if outcome.symbolic_status == SYMBOLIC_VIOLATED:
        assert result is not None
        try:
            witness = concretize(
                scenario.has,
                scenario.prop,
                result,
                shrink=True,
                time_budget=config.time_limit_seconds,
            )
        except Exception as exc:  # noqa: BLE001 — a witness-layer crash is a finding
            outcome.witness_status = "error"
            outcome.error = f"concretize crashed: {type(exc).__name__}: {exc}"
        else:
            if isinstance(witness, NonConcretizable):
                outcome.witness_status = "non_concretizable"
            elif witness.confirmed:
                outcome.witness_status = "confirmed"
            else:
                outcome.witness_status = "unconfirmed"

    if outcome.symbolic_status != SYMBOLIC_ERROR:
        try:
            outcome.bounded = bounded_check(
                scenario.has, scenario.prop, scenario.databases, bounded_config
            )
        except Exception as exc:  # noqa: BLE001 — same: report, don't abort the campaign
            crash = f"bounded checker crashed: {type(exc).__name__}: {exc}"
            # keep an earlier concretize-crash message too: both layers
            # failing is two findings, and the report must show each
            outcome.error = f"{outcome.error}; {crash}" if outcome.error else crash

    try:
        outcome.discrepancy = _cross_check(outcome, witness)
    except Exception as exc:  # noqa: BLE001
        outcome.discrepancy = Discrepancy(
            "verifier_error",
            detail=f"cross-check crashed: {type(exc).__name__}: {exc}",
        )


def _cross_check(
    outcome: ScenarioOutcome,
    witness: ConcreteWitness | NonConcretizable | None,
) -> Discrepancy | None:
    if outcome.symbolic_status == SYMBOLIC_ERROR or outcome.error:
        # a crash in any checker layer on a valid scenario is a finding
        return Discrepancy("verifier_error", detail=outcome.error)
    bounded = outcome.bounded
    if (
        outcome.symbolic_status == SYMBOLIC_HOLDS
        and bounded is not None
        and bounded.verdict == VERDICT_VIOLATED
    ):
        violation = bounded.violation
        assert violation is not None
        concrete = ConcreteWitness(
            kind="lasso",
            property_name=outcome.scenario.prop.name,
            database=violation.database,
            steps=violation.steps,
            loop_start=violation.loop_start,
            raw_length=len(violation.steps),
        )
        concrete.checks = dict(violation.checks)
        # delta-debug the confirming trace (the witness machinery's own
        # minimizer) so the report carries minimal evidence; fall back to
        # the raw trace if minimization itself misbehaves
        try:
            concrete = minimize(
                outcome.scenario.has,
                outcome.scenario.prop,
                concrete,
                deadline=time.monotonic() + 5.0,
            )
        except Exception:  # noqa: BLE001
            concrete.notes.append("trace minimization crashed; raw trace kept")
        return Discrepancy(
            "missed_violation",
            detail=(
                "symbolic verdict is 'holds' but the bounded explicit-state "
                "search found a replay-confirmed concrete lasso "
                f"({len(violation.steps)} steps, loop at {violation.loop_start})"
            ),
            witness_json=concrete.to_dict(),
        )
    if outcome.symbolic_status == SYMBOLIC_VIOLATED:
        if outcome.witness_status == "non_concretizable":
            assert isinstance(witness, NonConcretizable)
            if bounded is not None and bounded.verdict == VERDICT_VIOLATED:
                # the verdict is independently confirmed by the bounded
                # checker's own concrete counterexample; the failed
                # materialization is a (known-incomplete) sampler gap,
                # not a verdict discrepancy
                return None
            return Discrepancy(
                "non_concretizable",
                detail=f"violated verdict without a concrete witness: {witness.reason}",
                witness_json=witness.to_dict(),
            )
        if outcome.witness_status == "unconfirmed":
            assert isinstance(witness, ConcreteWitness)
            failed = sorted(k for k, ok in witness.checks.items() if not ok)
            return Discrepancy(
                "unconfirmed_witness",
                detail=(
                    "concretized witness failed replay validation "
                    f"(failed checks: {', '.join(failed)})"
                ),
                witness_json=witness.to_dict(),
            )
    return None


# ----------------------------------------------------------------------
# scenario shrinking
# ----------------------------------------------------------------------
def _rebuild_task(task: Task, target: str, transform: Callable[[Task], Task | None]) -> Task | None:
    """The hierarchy with ``transform`` applied to the task named
    ``target``; None when the transform deletes the root."""
    if task.name == target:
        return transform(task)
    children = []
    changed = False
    for child in task.children:
        rebuilt = _rebuild_task(child, target, transform)
        if rebuilt is None:
            changed = True
            continue
        changed = changed or rebuilt is not child
        children.append(rebuilt)
    if not changed:
        return task
    return dataclasses.replace(task, children=tuple(children))


def _property_tasks(prop: HLTLProperty) -> set[str]:
    """Tasks referenced by service or child propositions."""
    names: set[str] = set()

    def walk(spec: HLTLSpec) -> None:
        names.add(spec.task)
        for payload in propositions(spec.formula):
            if isinstance(payload, ServiceProp):
                names.add(payload.ref.task)
            elif isinstance(payload, ChildProp):
                walk(payload.spec)

    walk(prop.root)
    return names


def _subformulas(formula: Formula) -> Iterator[Formula]:
    if isinstance(formula, NotF):
        yield formula.body
    elif isinstance(formula, (AndF, OrF)):
        yield from formula.parts
    elif isinstance(formula, Next):
        yield formula.body
    elif isinstance(formula, (Until, Release)):
        yield formula.left
        yield formula.right


def _shrink_candidates(scenario: Scenario) -> Iterator[tuple[str, HAS, HLTLProperty]]:
    """Structurally smaller (has, prop) variants, most aggressive first."""
    has, prop = scenario.has, scenario.prop
    referenced = _property_tasks(prop)
    tasks = list(has.root.walk())

    # drop a whole child subtree (unless the property observes it)
    for task in tasks:
        for child in task.children:
            if any(t.name in referenced for t in child.walk()):
                continue
            rebuilt = _rebuild_task(has.root, child.name, lambda _t: None)
            if rebuilt is not None:
                yield f"drop task {child.name}", _with_root(has, rebuilt), prop

    # drop one internal service
    for task in tasks:
        for service in task.services:
            def drop_service(t: Task, name=service.name) -> Task:
                return dataclasses.replace(
                    t, services=tuple(s for s in t.services if s.name != name)
                )

            rebuilt = _rebuild_task(has.root, task.name, drop_service)
            if rebuilt is not None:
                yield f"drop service {task.name}.{service.name}", _with_root(
                    has, rebuilt
                ), prop

    # drop a task's artifact relation (and its set updates)
    for task in tasks:
        if not task.has_set:
            continue

        def drop_set(t: Task) -> Task:
            services = tuple(
                dataclasses.replace(s, update=SetUpdate.NONE) for s in t.services
            )
            return dataclasses.replace(t, set_variables=(), services=services)

        rebuilt = _rebuild_task(has.root, task.name, drop_set)
        if rebuilt is not None:
            yield f"drop artifact relation of {task.name}", _with_root(
                has, rebuilt
            ), prop

    # replace the property by a direct temporal/boolean subformula
    for sub in _subformulas(prop.root.formula):
        smaller = HLTLProperty(
            HLTLSpec(prop.root.task, sub), name=prop.name
        )
        yield "shrink property", has, smaller


def _with_root(has: HAS, root: Task) -> HAS:
    return HAS(has.database, root, precondition=has.precondition, name=has.name)


def shrink_scenario(
    scenario: Scenario,
    kind: str,
    verifier_config: VerifierConfig | None = None,
    bounded_config: BoundedConfig | None = None,
    max_attempts: int = 40,
    deadline: float | None = None,
) -> tuple[Scenario, ScenarioOutcome | None]:
    """Greedy fixed-point shrink: accept any structural reduction that
    still reproduces a discrepancy of the same kind.  Returns the
    smallest reproducing scenario and its outcome (None when nothing
    smaller reproduced)."""
    current = scenario
    best_outcome: ScenarioOutcome | None = None
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for label, has, prop in _shrink_candidates(current):
            if attempts >= max_attempts or (
                deadline is not None and time.monotonic() > deadline
            ):
                return current, best_outcome
            try:
                validate_has(has)
                validate_property(prop, has)
            except ReproError:
                continue
            candidate = Scenario(
                seed=current.seed,
                index=current.index,
                config=current.config,
                has=has,
                prop=prop,
                databases=current.databases,
            )
            attempts += 1
            outcome = check_scenario(candidate, verifier_config, bounded_config)
            if outcome.discrepancy is not None and outcome.discrepancy.kind == kind:
                current = candidate
                best_outcome = outcome
                progress = True
                break
    return current, best_outcome


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
def _bounded_config_dict(config: BoundedConfig | None) -> dict:
    return dataclasses.asdict(config or BoundedConfig())


def discrepancy_report(
    outcome: ScenarioOutcome,
    verifier_config: VerifierConfig | None = None,
    bounded_config: BoundedConfig | None = None,
    shrunk: tuple[Scenario, ScenarioOutcome] | None = None,
) -> dict:
    """A self-contained, replayable JSON record of one discrepancy.

    Embeds the seed + GenConfig (exact regeneration), the serialized
    models (drift detection), the budgets, and — when available — the
    minimized concrete counterexample and the shrunk scenario."""
    assert outcome.discrepancy is not None
    scenario = outcome.scenario
    job = VerificationJob(
        has=scenario.has,
        prop=scenario.prop,
        config=verifier_config or DEFAULT_VERIFIER_CONFIG,
        name=scenario.name,
    )
    report = {
        "t": "fuzz_report",
        "kind": outcome.discrepancy.kind,
        "detail": outcome.discrepancy.detail,
        "name": scenario.name,
        "seed": scenario.seed,
        "index": scenario.index,
        "mutations": list(scenario.mutations),
        "coverage": list(outcome.coverage),
        "gen_config": scenario.config.to_dict(),
        "verifier_config": to_dict(verifier_config or DEFAULT_VERIFIER_CONFIG),
        "bounded_config": _bounded_config_dict(bounded_config),
        "job_key": job.key(),
        "symbolic_status": outcome.symbolic_status,
        "witness_status": outcome.witness_status,
        "bounded_verdict": outcome.bounded.verdict if outcome.bounded else None,
        "error": outcome.error,
        "has": to_dict(scenario.has),
        "prop": to_dict(scenario.prop),
        "witness": outcome.discrepancy.witness_json,
    }
    if shrunk is not None:
        shrunk_scenario, shrunk_outcome = shrunk
        report["shrunk"] = {
            "has": to_dict(shrunk_scenario.has),
            "prop": to_dict(shrunk_scenario.prop),
            "detail": shrunk_outcome.discrepancy.detail
            if shrunk_outcome.discrepancy
            else "",
            "witness": shrunk_outcome.discrepancy.witness_json
            if shrunk_outcome.discrepancy
            else None,
        }
    return report


def _entry_slug(record: Mapping[str, Any]) -> str:
    """The filename slug of a scenario record: ``s<seed>-i<index>`` for
    base scenarios (the historical layout), the full mutant label for
    mutants (which share their base's coordinates)."""
    name = str(record.get("name", ""))
    if record.get("mutations"):
        return name[len("fuzz-"):] if name.startswith("fuzz-") else name
    return f"s{record['seed']}-i{record['index']}"


def write_report(directory: Path | str, report: Mapping[str, Any]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"discrepancy-{_entry_slug(report)}.json"
    path.write_text(json.dumps(report, sort_keys=True, indent=1))
    return path


def _rebuild_scenario(
    record: Mapping[str, Any], gen_config: GenConfig, notes: list[str]
) -> Scenario:
    """The record's scenario, reconstructed for replay.

    Base scenarios regenerate from (seed, index) and are drift-checked
    against the embedded model dicts.  Mutants are not regenerable from
    their coordinates — the embedded has/prop dicts *are* the ground
    truth — so only their base's databases are regenerated."""
    base = generate_scenario(record["seed"], record["index"], gen_config)
    mutations = tuple(record.get("mutations") or ())
    if mutations:
        return Scenario(
            seed=record["seed"],
            index=record["index"],
            config=gen_config,
            has=from_dict(record["has"]),
            prop=from_dict(record["prop"]),
            databases=base.databases,
            label=str(record["name"]),
            mutations=mutations,
        )
    for key, obj in (("has", base.has), ("prop", base.prop)):
        if canonical_json(to_dict(obj)) != canonical_json(record[key]):
            notes.append(
                f"regenerated {key} differs from the record's serialized "
                "form (generator drift) — the record is not exactly "
                "reproducible"
            )
    return base


def load_report(path: Path | str) -> dict:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("t") != "fuzz_report":
        raise ValueError(f"{path}: not a fuzz discrepancy report")
    return data


def replay_report(report: Mapping[str, Any]) -> tuple[bool, ScenarioOutcome, list[str]]:
    """Regenerate the report's scenario from its seed + GenConfig and
    re-run the differential check under the recorded budgets.

    Returns ``(reproduced, outcome, notes)``: ``reproduced`` is True
    when a discrepancy of the recorded kind occurs again.  Regeneration
    must be exact — serialized-model drift against the embedded dicts is
    reported in ``notes`` and counts as not reproduced."""
    notes: list[str] = []
    gen_config = GenConfig.from_dict(report["gen_config"])
    scenario = _rebuild_scenario(report, gen_config, notes)
    verifier_config = from_dict(report["verifier_config"])
    bounded_config = BoundedConfig(**report["bounded_config"])
    outcome = check_scenario(scenario, verifier_config, bounded_config)
    reproduced = (
        not notes
        and outcome.discrepancy is not None
        and outcome.discrepancy.kind == report["kind"]
    )
    return reproduced, outcome, notes


# ----------------------------------------------------------------------
# regression corpus
# ----------------------------------------------------------------------
def corpus_entry(
    outcome: ScenarioOutcome,
    verifier_config: VerifierConfig | None = None,
    bounded_config: BoundedConfig | None = None,
) -> dict:
    """A checked-in regression record: the scenario (regenerable from
    seed + GenConfig, serialized models included for drift detection)
    plus both checkers' expected verdicts under the recorded budgets.

    Wall-clock budgets are recorded as **None** regardless of what the
    checking run used: corpus replays must box only on the
    deterministic km/expansion caps, never on runner speed.  (If the
    original run's verdict was itself wall-clock-induced, the very
    first corpus replay fails loudly — the entry was not corpus-grade.)"""
    scenario = outcome.scenario
    recorded_verifier = dataclasses.replace(
        verifier_config or DEFAULT_VERIFIER_CONFIG, time_limit_seconds=None
    )
    recorded_bounded = dataclasses.replace(
        bounded_config or BoundedConfig(), time_budget_seconds=None
    )
    job = VerificationJob(
        has=scenario.has,
        prop=scenario.prop,
        config=recorded_verifier,
        name=scenario.name,
    )
    entry: dict[str, Any] = {
        "t": "fuzz_corpus_entry",
        "name": scenario.name,
        "seed": scenario.seed,
        "index": scenario.index,
        "gen_config": scenario.config.to_dict(),
        "verifier_config": to_dict(recorded_verifier),
        "bounded_config": _bounded_config_dict(recorded_bounded),
        "job_key": job.key(),
        "has": to_dict(scenario.has),
        "prop": to_dict(scenario.prop),
        "expected": {
            "symbolic": outcome.symbolic_status,
            "witness": outcome.witness_status,
            "bounded": outcome.bounded.verdict if outcome.bounded else None,
        },
    }
    if scenario.mutations:
        # mutants are not regenerable from (seed, index): the embedded
        # model dicts are the ground truth, the trail documents the edits
        entry["mutations"] = list(scenario.mutations)
    return entry


def write_corpus_entry(directory: Path | str, entry: Mapping[str, Any]) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"scenario-{_entry_slug(entry)}.json"
    path.write_text(json.dumps(entry, sort_keys=True, indent=1) + "\n")
    return path


def corpus_entry_has(
    outcome: ScenarioOutcome,
    verifier_config: VerifierConfig | None = None,
) -> str:
    """The scenario as a readable ``.has`` document (``repro.dsl``).

    The emitted text is self-contained regression material: the system,
    the property with its ``expect:`` set to the campaign's symbolic
    verdict, the generated concrete instances, and the recorded budgets
    (wall clock stripped, same corpus-grade rule as :func:`corpus_entry`)
    — loadable by ``python -m repro verify/suite`` like any hand-written
    scenario.  A header comment records the generation coordinates; the
    body round-trips through the serializer, so the job content hash is
    the JSON corpus entry's ``job_key``."""
    from repro.dsl import render_scenario

    scenario = outcome.scenario
    recorded = dataclasses.replace(
        verifier_config or DEFAULT_VERIFIER_CONFIG, time_limit_seconds=None
    )
    expect = (
        outcome.symbolic_status
        if outcome.symbolic_status
        in (SYMBOLIC_HOLDS, SYMBOLIC_VIOLATED, SYMBOLIC_BUDGET)
        else None
    )
    bounded = outcome.bounded.verdict if outcome.bounded else "-"
    header = (
        f"# {scenario.name}: generated by `python -m repro fuzz "
        f"--export-corpus --corpus-format has`\n"
        f"# seed={scenario.seed} index={scenario.index} "
        f"symbolic={outcome.symbolic_status} bounded={bounded}\n\n"
    )
    return header + render_scenario(
        scenario.has,
        properties=[(scenario.prop, expect)],
        instances=[(f"db{k}", db) for k, db in enumerate(scenario.databases)],
        config=recorded,
    )


def write_corpus_entry_has(
    directory: Path | str,
    outcome: ScenarioOutcome,
    verifier_config: VerifierConfig | None = None,
) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    scenario = outcome.scenario
    slug = _entry_slug(
        {
            "name": scenario.name,
            "seed": scenario.seed,
            "index": scenario.index,
            "mutations": list(scenario.mutations),
        }
    )
    path = directory / f"scenario-{slug}.has"
    path.write_text(corpus_entry_has(outcome, verifier_config))
    return path


def promote_survivors(
    outcomes: list[ScenarioOutcome],
    directory: Path | str,
    verifier_config: VerifierConfig | None = None,
    limit: int | None = None,
) -> list[Path]:
    """Gallery promotion: a campaign's agreeing outcomes written as
    checked-in ``.has`` scenarios (docs/testing.md has the recipe).

    Selection is gallery-grade and deterministic:

    * both checkers agreed (no discrepancy) and the symbolic verdict is
      decisive — ``holds`` or ``violated``, never budget or error;
    * ``violated`` verdicts carry a replay-confirmed concrete witness;
    * one file per distinct job content key, so re-checks of the same
      scenario never produce duplicate gallery entries;
    * coverage-novel outcomes first (campaign novelty, ties by name),
      so a ``limit`` keeps the scenarios that earned their slot.

    Mutants keep their base's system name internally, which would
    collide once base and mutant live in the same gallery directory —
    promoted mutants are renamed to their campaign label
    (``fuzz-s<seed>-i<index>-m<k>``) before rendering."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    survivors = [
        o
        for o in outcomes
        if o.agreed
        and o.symbolic_status in (SYMBOLIC_HOLDS, SYMBOLIC_VIOLATED)
        and (
            o.symbolic_status != SYMBOLIC_VIOLATED
            or o.witness_status == "confirmed"
        )
    ]
    survivors.sort(key=lambda o: (-o.novelty, o.scenario.name))
    config = dataclasses.replace(
        verifier_config or DEFAULT_VERIFIER_CONFIG, time_limit_seconds=None
    )
    paths: list[Path] = []
    seen_jobs: set[str] = set()
    for outcome in survivors:
        scenario = outcome.scenario
        key = VerificationJob(
            has=scenario.has, prop=scenario.prop, config=config, name=scenario.name
        ).key()
        if key in seen_jobs:
            continue
        seen_jobs.add(key)
        if scenario.mutations:
            has = dataclasses.replace(scenario.has, name=scenario.name)
            prop = dataclasses.replace(scenario.prop, name=f"{scenario.name}-prop")
            scenario = dataclasses.replace(scenario, has=has, prop=prop)
            outcome = dataclasses.replace(outcome, scenario=scenario)
        slug = scenario.name
        slug = slug[len("fuzz-"):] if slug.startswith("fuzz-") else slug
        path = directory / f"fuzzed_{slug.replace('-', '_')}.has"
        path.write_text(corpus_entry_has(outcome, config))
        paths.append(path)
        if limit is not None and len(paths) >= limit:
            break
    return paths


def load_corpus_entry(path: Path | str) -> dict:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("t") != "fuzz_corpus_entry":
        raise ValueError(f"{path}: not a fuzz corpus entry")
    return data


def replay_corpus_entry(entry: Mapping[str, Any]) -> tuple[ScenarioOutcome, list[str]]:
    """Regenerate the entry's scenario and re-run both checkers under the
    recorded budgets.  Returns the outcome plus mismatch notes (empty
    when the entry reproduces exactly: byte-identical models, same job
    key, same verdicts, no discrepancy)."""
    notes: list[str] = []
    gen_config = GenConfig.from_dict(entry["gen_config"])
    scenario = _rebuild_scenario(entry, gen_config, notes)
    verifier_config = from_dict(entry["verifier_config"])
    job = VerificationJob(
        has=scenario.has,
        prop=scenario.prop,
        config=verifier_config,
        name=scenario.name,
    )
    if job.key() != entry["job_key"]:
        notes.append("job content hash drifted")
    bounded_config = BoundedConfig(**entry["bounded_config"])
    outcome = check_scenario(scenario, verifier_config, bounded_config)
    expected = entry["expected"]
    if outcome.symbolic_status != expected["symbolic"]:
        notes.append(
            f"symbolic verdict {outcome.symbolic_status!r} != expected "
            f"{expected['symbolic']!r}"
        )
    if outcome.witness_status != expected["witness"]:
        notes.append(
            f"witness status {outcome.witness_status!r} != expected "
            f"{expected['witness']!r}"
        )
    bounded_verdict = outcome.bounded.verdict if outcome.bounded else None
    if bounded_verdict != expected["bounded"]:
        notes.append(
            f"bounded verdict {bounded_verdict!r} != expected "
            f"{expected['bounded']!r}"
        )
    if outcome.discrepancy is not None:
        notes.append(f"checkers disagree: {outcome.discrepancy.kind}")
    return outcome, notes


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Aggregate record of one fuzzing campaign."""

    seed: int
    count: int
    gen_config: GenConfig
    outcomes: list[ScenarioOutcome] = field(default_factory=list)
    report_paths: list[Path] = field(default_factory=list)
    wall_seconds: float = 0.0
    guided: bool = False
    coverage: tuple[str, ...] = ()
    """The campaign's coverage frontier: every feature any scenario fired,
    canonical sorted order."""

    @property
    def discrepancies(self) -> list[ScenarioOutcome]:
        return [o for o in self.outcomes if o.discrepancy is not None]

    def coverage_map(self) -> dict:
        """The campaign-level coverage map: which verifier code regions
        the whole campaign exercised, and which scenario fired what.
        Deterministic for a fixed (seed, count, configs) — suitable for
        checking in as a coverage floor."""
        features = sorted(
            set(self.coverage).union(*(o.coverage for o in self.outcomes))
            if self.outcomes
            else self.coverage
        )
        return {
            "t": "fuzz_coverage_map",
            "seed": self.seed,
            "count": self.count,
            "guided": self.guided,
            "checked": len(self.outcomes),
            "feature_count": len(features),
            "features": features,
            "scenarios": {
                o.scenario.name: list(o.coverage) for o in self.outcomes
            },
        }

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.symbolic_status] = (
                counts.get(outcome.symbolic_status, 0) + 1
            )
        return counts

    def format_report(self) -> str:
        counts = self.status_counts()
        summary = ", ".join(f"{n} {status}" for status, n in sorted(counts.items()))
        mode = "guided" if self.guided else "uniform"
        lines = [
            f"fuzz campaign seed={self.seed} ({mode}): "
            f"{len(self.outcomes)} scenarios "
            f"({summary}) in {self.wall_seconds:.1f}s"
        ]
        if self.coverage:
            lines.append(
                f"  coverage: {len(self.coverage)}/{len(FEATURES)} features"
            )
        bounded_counts: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.bounded is not None:
                verdict = outcome.bounded.verdict
                bounded_counts[verdict] = bounded_counts.get(verdict, 0) + 1
        if bounded_counts:
            rendered = ", ".join(
                f"{n} {verdict}" for verdict, n in sorted(bounded_counts.items())
            )
            lines.append(f"  bounded reference checker: {rendered}")
        if not self.discrepancies:
            lines.append("  no discrepancies — both checkers agree everywhere")
        for outcome in self.discrepancies:
            assert outcome.discrepancy is not None
            lines.append(
                f"  DISCREPANCY {outcome.scenario.name}: "
                f"{outcome.discrepancy.kind} — {outcome.discrepancy.detail}"
            )
        for path in self.report_paths:
            lines.append(f"  report written: {path}")
        return "\n".join(lines)


def write_coverage_map(path: Path | str, campaign: CampaignReport) -> Path:
    """Serialize the campaign's coverage map; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(campaign.coverage_map(), sort_keys=True, indent=1) + "\n"
    )
    return path


def run_campaign(
    seed: int,
    count: int,
    gen_config: GenConfig | None = None,
    verifier_config: VerifierConfig | None = None,
    bounded_config: BoundedConfig | None = None,
    out_dir: Path | str | None = None,
    shrink: bool = True,
    on_outcome: Callable[[ScenarioOutcome], None] | None = None,
    guided: bool = False,
    min_novelty: int = 1,
) -> CampaignReport:
    """Generate and differentially check ``count`` scenarios.

    When ``out_dir`` is given, discrepancies are shrunk (unless
    ``shrink`` is False) and written there as replayable reports;
    without it only the outcomes are collected.

    With ``guided`` the campaign is coverage-guided: it keeps a global
    coverage frontier (the union of every checked scenario's fired
    features), scores each outcome by *novelty* (features the frontier
    had not seen), and schedules grown mutants
    (:func:`repro.fuzz.gen.grow_scenarios`) of any scenario whose
    novelty reaches ``min_novelty`` before sampling fresh scenarios.
    The total number of checks is still exactly ``count`` — guided and
    uniform campaigns with the same budget are directly comparable —
    and the schedule is deterministic for a fixed (seed, count,
    configs): mutant streams are seeded from scenario coordinates, not
    global randomness."""
    started = time.monotonic()
    gen = gen_config or GenConfig()
    campaign = CampaignReport(
        seed=seed, count=count, gen_config=gen, guided=guided
    )
    frontier: set[str] = set()
    pending: list[Scenario] = []  # grown mutants awaiting a check slot
    next_index = 0
    for slot in range(count):
        # alternate exploitation (grown mutants) with exploration (fresh
        # samples): mutants only ever take every other slot, so guided
        # campaigns keep the generator's structural diversity too.  A
        # queued mutant whose operator no longer chases anything
        # uncovered is stale — discard it without spending a check.
        uncovered = set(FEATURES) - frontier
        while pending and not (
            operator_targets(pending[0].mutations[-1]) & uncovered
        ):
            pending.pop(0)
        if pending and slot % 2 == 1:
            scenario = pending.pop(0)
        else:
            scenario = generate_scenario(seed, next_index, gen)
            next_index += 1
        outcome = check_scenario(scenario, verifier_config, bounded_config)
        outcome.novelty = len(set(outcome.coverage) - frontier)
        frontier.update(outcome.coverage)
        campaign.outcomes.append(outcome)
        if guided and outcome.novelty >= min_novelty:
            # a scenario that reached new verifier regions is a good
            # base: grow it (the shrinking edits, in reverse), chasing
            # the features the frontier is still missing
            uncovered = set(FEATURES) - frontier
            pending.extend(grow_scenarios(scenario, targets=uncovered))
        # shrinking and report assembly only pay off when the report is
        # kept; library callers without an out_dir still get the outcomes
        if outcome.discrepancy is not None and out_dir is not None:
            shrunk = None
            if shrink:
                limit = (verifier_config or DEFAULT_VERIFIER_CONFIG).time_limit_seconds
                deadline = (
                    time.monotonic() + 3 * limit if limit is not None else None
                )
                try:
                    smaller, smaller_outcome = shrink_scenario(
                        scenario,
                        outcome.discrepancy.kind,
                        verifier_config,
                        bounded_config,
                        deadline=deadline,
                    )
                except Exception:  # noqa: BLE001 — keep the campaign (and report) alive
                    smaller_outcome = None
                if smaller_outcome is not None:
                    shrunk = (smaller, smaller_outcome)
            report = discrepancy_report(
                outcome, verifier_config, bounded_config, shrunk
            )
            campaign.report_paths.append(write_report(out_dir, report))
        if on_outcome is not None:
            on_outcome(outcome)
    campaign.coverage = tuple(sorted(frontier))
    campaign.wall_seconds = time.monotonic() - started
    return campaign
