"""Bounded explicit-state reference checking of HAS properties.

An independent, brute-force oracle for the symbolic verifier: enumerate
*all* concrete runs of a HAS over a small fixed database instance — the
exact operational semantics of ``repro.runtime`` (the same successor
enumeration the simulator samples from, explored exhaustively instead of
randomly) — and look for an ultimately periodic run of the root task
that violates the property.

A violation candidate is a cycle in the global configuration graph: a
path that revisits a complete configuration (every active task's
valuation, artifact-relation contents, and segment bookkeeping, over the
whole hierarchy) after emitting at least one further root-run letter.
Such a path extends to the infinite run ``prefix·loop^ω``.  The
candidate's word is evaluated with the reference LTL evaluators, and a
hit is confirmed through :func:`repro.witness.replay.validate` — the
same replay/LTL validation contract concrete witnesses must pass — so a
reported violation is *ground truth*, independent of every line of the
symbolic machinery.

The search is bounded (root-word length, path depth, expansion and time
budgets).  ``clean`` therefore means "no violation within bounds", not
"holds"; the differential harness treats it accordingly.  Blocking
violations (a finite root word kept maximal by a child that never
returns) are out of scope here — the harness checks the symbolic
verifier's blocking verdicts through witness concretization instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.database.instance import DatabaseInstance
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import ChildProp, HLTLProperty
from repro.logic.terms import VarKind
from repro.ltl.formulas import NotF, holds_infinite_lasso, propositions
from repro.runtime import labels
from repro.runtime.state import TaskState, initial_state
from repro.runtime.transition import (
    EnumerationLimits,
    enumerate_post_valuations,
    set_update_results,
)
from repro.witness.replay import build_word, validate
from repro.witness.trace import ConcreteStep

VERDICT_VIOLATED = "violated"
VERDICT_CLEAN = "clean"
VERDICT_BOXED = "boxed"
VERDICT_UNSUPPORTED = "unsupported"


@dataclass(frozen=True)
class BoundedConfig:
    """Budgets for the explicit-state search (per database instance)."""

    max_root_steps: int = 10
    """Longest root-run word considered (the opening instant included)."""

    max_depth: int = 28
    """Longest path of global transitions explored."""

    max_expansions: int = 4_000
    """Configuration-expansion budget; exceeding it yields ``boxed``."""

    max_branch: int = 4
    """Successor cap per (task, service) pair — mirrors the simulator's
    ``max_choices_per_step``."""

    max_root_inputs: int = 4
    """Initial root valuations tried per instance."""

    time_budget_seconds: float | None = 15.0
    """Wall-clock budget across all instances; exceeding it yields
    ``boxed``."""


@dataclass(frozen=True)
class _Node:
    """One active task instance: its state plus segment bookkeeping and
    the (canonically sorted) active children — hashable, so a full
    hierarchy configuration is one nested value."""

    task: str
    valuation: frozenset  # of (Variable, Value) pairs
    set_contents: frozenset
    opened: frozenset  # children opened in the current segment
    children: tuple["_Node", ...]


@dataclass
class BoundedViolation:
    """A confirmed concrete lasso counterexample found by the search."""

    database: DatabaseInstance
    steps: list[ConcreteStep]
    loop_start: int
    checks: dict[str, bool] = field(default_factory=dict)


@dataclass
class BoundedResult:
    verdict: str
    violation: BoundedViolation | None = None
    expansions: int = 0
    lasso_candidates: int = 0
    notes: list[str] = field(default_factory=list)


def _has_child_props(prop: HLTLProperty) -> bool:
    return any(
        isinstance(payload, ChildProp)
        for payload in propositions(prop.root.formula)
    )


class _Search:
    """Exhaustive bounded DFS over global configurations of one HAS on
    one database instance."""

    def __init__(
        self,
        has: HAS,
        prop: HLTLProperty,
        db: DatabaseInstance,
        config: BoundedConfig,
        deadline: float | None,
    ):
        self.has = has
        self.prop = prop
        self.db = db
        self.config = config
        self.deadline = deadline
        self.limits = EnumerationLimits(max_results=config.max_branch)
        self.expansions = 0
        self.lasso_candidates = 0
        self.boxed = False
        self.notes: list[str] = []
        self._internal_memo: dict[tuple, list[TaskState]] = {}

    # ------------------------------------------------------------------
    def run(self) -> BoundedViolation | None:
        root = self.has.root
        for inputs in self._root_inputs():
            state = initial_state(root, inputs)
            node = _Node(
                root.name,
                frozenset(state.valuation.items()),
                frozenset(),
                frozenset(),
                (),
            )
            trace = [(labels.opening(root.name), state)]
            found = self._dfs(node, trace, {node: 1}, 0)
            if found is not None:
                return found
            if self.boxed:
                return None
        return None

    def _root_inputs(self) -> list[dict]:
        inputs = tuple(self.has.root.input_variables)
        if not inputs:
            return [{}]
        # dedicated limits: self.limits caps per-service branching at
        # max_branch, which would silently override max_root_inputs
        limits = EnumerationLimits(max_results=self.config.max_root_inputs)
        return list(
            enumerate_post_valuations(
                inputs, self.has.precondition, self.db, {}, limits
            )
        )

    # ------------------------------------------------------------------
    def _dfs(
        self,
        node: _Node,
        trace: list,
        on_path: dict[_Node, int],
        depth: int,
    ) -> BoundedViolation | None:
        if self.boxed:
            return None
        if self.expansions >= self.config.max_expansions or (
            self.deadline is not None and time.monotonic() > self.deadline
        ):
            self.boxed = True
            return None
        self.expansions += 1
        for new_node, ref in self._successors(node):
            if ref is not None:
                step_state = TaskState(
                    dict(new_node.valuation), new_node.set_contents
                )
                new_trace = trace + [(ref, step_state)]
            else:
                new_trace = trace
            seen_at = on_path.get(new_node)
            if seen_at is not None:
                if len(new_trace) > seen_at:
                    found = self._try_lasso(new_trace, seen_at)
                    if found is not None:
                        return found
                continue
            if len(new_trace) > self.config.max_root_steps:
                continue
            if depth + 1 >= self.config.max_depth:
                continue
            on_path[new_node] = len(new_trace)
            found = self._dfs(new_node, new_trace, on_path, depth + 1)
            del on_path[new_node]
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # successor generation (the simulator's move set, exhaustively)
    # ------------------------------------------------------------------
    def _successors(self, node: _Node) -> list[tuple[_Node, labels.ServiceRef | None]]:
        task = self.has.task(node.task)
        valuation = dict(node.valuation)
        state = TaskState(valuation, node.set_contents)
        active = {c.task: c for c in node.children}
        results: list[tuple[_Node, labels.ServiceRef | None]] = []

        # internal services — only when no subtask is active (restriction 4)
        if not node.children:
            for service in task.services:
                if not service.pre.evaluate(self.db, valuation):
                    continue
                for nxt in self._internal_candidates(task, service, node):
                    results.append(
                        (
                            _Node(
                                node.task,
                                frozenset(nxt.valuation.items()),
                                nxt.set_contents,
                                frozenset(),  # internal move starts a new segment
                                (),
                            ),
                            labels.internal(task.name, service.name),
                        )
                    )

        # open a child (at most once per segment — restriction 8)
        for child in task.children:
            if child.name in active or child.name in node.opened:
                continue
            if not child.opening.pre.evaluate(self.db, valuation):
                continue
            inputs = {
                child_var: valuation[parent_var]
                for child_var, parent_var in child.opening.input_map.items()
            }
            child_state = initial_state(child, inputs)
            child_node = _Node(
                child.name,
                frozenset(child_state.valuation.items()),
                frozenset(),
                frozenset(),
                (),
            )
            results.append(
                (
                    _Node(
                        node.task,
                        node.valuation,
                        node.set_contents,
                        node.opened | {child.name},
                        _sorted_children(node.children + (child_node,)),
                    ),
                    labels.opening(child.name),
                )
            )

        # close an active child whose own subtree is quiescent
        for child in task.children:
            child_node = active.get(child.name)
            if child_node is None or child_node.children:
                continue
            child_valuation = dict(child_node.valuation)
            if not child.closing.pre.evaluate(self.db, child_valuation):
                continue
            new_valuation = dict(valuation)
            for parent_var, child_var in sorted(
                child.closing.output_map.items(), key=lambda kv: kv[0].name
            ):
                old = new_valuation[parent_var]
                if parent_var.kind is VarKind.NUMERIC or old is None:
                    new_valuation[parent_var] = child_valuation[child_var]
            results.append(
                (
                    _Node(
                        node.task,
                        frozenset(new_valuation.items()),
                        node.set_contents,
                        node.opened,
                        tuple(c for c in node.children if c.task != child.name),
                    ),
                    labels.closing(child.name),
                )
            )

        # moves inside an active child — invisible in this task's run
        for child_node in node.children:
            others = tuple(c for c in node.children if c.task != child_node.task)
            for new_child, _ref in self._successors(child_node):
                results.append(
                    (
                        _Node(
                            node.task,
                            node.valuation,
                            node.set_contents,
                            node.opened,
                            _sorted_children(others + (new_child,)),
                        ),
                        None,
                    )
                )
        return results

    def _internal_candidates(
        self, task: Task, service, node: _Node
    ) -> list[TaskState]:
        memo_key = (task.name, service.name, node.valuation, node.set_contents)
        cached = self._internal_memo.get(memo_key)
        if cached is not None:
            return cached
        state = TaskState(dict(node.valuation), node.set_contents)
        preserved = {v: state.valuation[v] for v in task.input_variables}
        candidates: list[TaskState] = []
        for valuation in enumerate_post_valuations(
            task.variables, service.post, self.db, preserved, self.limits
        ):
            for adjusted, contents in set_update_results(
                task, service.update, state, valuation
            ):
                if any(adjusted[v] != preserved[v] for v in preserved):
                    continue
                if not service.post.evaluate(self.db, adjusted):
                    continue
                candidates.append(TaskState(adjusted, contents))
                if len(candidates) >= self.config.max_branch:
                    break
            if len(candidates) >= self.config.max_branch:
                break
        self._internal_memo[memo_key] = candidates
        return candidates

    # ------------------------------------------------------------------
    def _try_lasso(self, trace: list, loop_start: int) -> BoundedViolation | None:
        self.lasso_candidates += 1
        steps = [
            ConcreteStep(
                index=i,
                service=ref,
                valuation=dict(state.valuation),
                set_contents=state.set_contents,
            )
            for i, (ref, state) in enumerate(trace)
        ]
        word = build_word(self.prop, steps, self.db)
        prefix, loop = word[:loop_start], word[loop_start:]
        formula = self.prop.root.formula
        if not holds_infinite_lasso(NotF(formula), prefix, loop):
            return None
        checks, _notes = validate(
            self.has, self.prop, "lasso", self.db, steps, loop_start
        )
        if not (checks and all(checks.values())):
            failed = sorted(k for k, ok in checks.items() if not ok)
            self.notes.append(
                f"lasso candidate at depth {len(steps)} refuted by replay "
                f"validation (failed: {', '.join(failed)})"
            )
            return None
        return BoundedViolation(self.db, steps, loop_start, checks)


def _sorted_children(children: tuple[_Node, ...]) -> tuple[_Node, ...]:
    return tuple(sorted(children, key=lambda c: c.task))


def bounded_check(
    has: HAS,
    prop: HLTLProperty,
    databases: list[DatabaseInstance],
    config: BoundedConfig | None = None,
) -> BoundedResult:
    """Search every instance for a confirmed concrete lasso violation.

    Returns ``violated`` with the (replay-validated) counterexample,
    ``clean`` when the bounded space was exhausted on every instance,
    ``boxed`` when an expansion/time budget cut the search short, or
    ``unsupported`` when the property carries child-task formulas (their
    letters cannot be discharged concretely at the root)."""
    cfg = config or BoundedConfig()
    if _has_child_props(prop):
        return BoundedResult(
            VERDICT_UNSUPPORTED,
            notes=["property contains [ψ]_Tc child formulas"],
        )
    deadline = (
        time.monotonic() + cfg.time_budget_seconds
        if cfg.time_budget_seconds is not None
        else None
    )
    expansions = 0
    candidates = 0
    notes: list[str] = []
    boxed = False
    for db in databases:
        search = _Search(has, prop, db, cfg, deadline)
        violation = search.run()
        expansions += search.expansions
        candidates += search.lasso_candidates
        notes.extend(search.notes)
        if violation is not None:
            return BoundedResult(
                VERDICT_VIOLATED,
                violation=violation,
                expansions=expansions,
                lasso_candidates=candidates,
                notes=notes,
            )
        boxed = boxed or search.boxed
    return BoundedResult(
        VERDICT_BOXED if boxed else VERDICT_CLEAN,
        expansions=expansions,
        lasso_candidates=candidates,
        notes=notes,
    )
