"""Named, deliberately-injected verifier bugs.

The differential oracle is only trustworthy if it demonstrably *fires*
when the verifier is wrong.  Each mutation here patches one acceptance
path of the symbolic engine; the fuzz smoke tests (and the
``--inject-bug`` CLI flag) run a campaign under a mutation and assert
how the oracle responds.  ``drop_lasso`` and ``spurious_violation`` are
caught (missed_violation / non_concretizable); ``drop_blocking`` is the
oracle's *documented blind spot* — the bounded reference checker only
searches for lassos, so a missed blocking violation slips through
(pinned by ``tests/test_fuzz.py`` so the gap stays visible until a
blocking-direction oracle exists; see docs/testing.md).  Mutations
restore the original behavior on exit — they exist for testing the
oracle, never for production use.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.verifier.engine import Verifier
from repro.verifier.result import VerificationResult
from repro.verifier.task_vass import TaskVASS


@contextlib.contextmanager
def _patched(owner, attribute: str, value) -> Iterator[None]:
    original = getattr(owner, attribute)
    setattr(owner, attribute, value)
    try:
        yield
    finally:
        setattr(owner, attribute, original)


@contextlib.contextmanager
def _drop_lasso() -> Iterator[None]:
    """The verifier never accepts lasso counterexamples: genuinely
    violated properties are reported as holding — the bounded reference
    checker must catch the missed violation."""
    with _patched(TaskVASS, "is_lasso_accepting", lambda self, state_id: False):
        yield


@contextlib.contextmanager
def _drop_blocking() -> Iterator[None]:
    """The verifier never accepts blocking counterexamples.

    NOT currently caught by the differential oracle: the bounded
    reference checker searches for lassos only, so a wrongly-holding
    blocking scenario cross-checks as clean.  Kept (and pinned by a
    test) to document the blind spot honestly."""
    with _patched(TaskVASS, "is_blocking_accepting", lambda self, state_id: False):
        yield


@contextlib.contextmanager
def _spurious_violation() -> Iterator[None]:
    """Every 'holds' verdict is flipped to a fabricated lasso violation
    with no symbolic trace: witness concretization cannot confirm it, so
    the harness must flag the unconfirmable verdict."""
    original = Verifier.verify

    def verify(self, prop):
        result = original(self, prop)
        if result.holds:
            return VerificationResult(
                holds=False,
                property_name=prop.name,
                witness_kind="lasso",
                stats=result.stats,
            )
        return result

    with _patched(Verifier, "verify", verify):
        yield


MUTATIONS = {
    "drop_lasso": _drop_lasso,
    "drop_blocking": _drop_blocking,
    "spurious_violation": _spurious_violation,
}


def mutation_names() -> tuple[str, ...]:
    return tuple(sorted(MUTATIONS))


@contextlib.contextmanager
def inject(name: str) -> Iterator[None]:
    """Apply the named mutation for the duration of the context."""
    try:
        mutation = MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r} (known: {', '.join(mutation_names())})"
        ) from None
    with mutation():
        yield
