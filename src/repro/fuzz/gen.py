"""Deterministic, seed-driven generation of random HAS scenarios.

A *scenario* is a complete verification problem: a random FK-acyclic
database schema, a random task hierarchy with internal services and
opening/closing conditions, a random HLTL-FO property over the root
task, and a handful of small concrete database instances for the bounded
reference checker.  Everything is derived from ``(seed, index)`` through
one ``random.Random`` stream consumed in a fixed order, so the same pair
always produces byte-identical serialized models — across processes and
regardless of ``PYTHONHASHSEED`` (the generator never iterates sets).

Sizes are controlled by :class:`GenConfig`.  Generated systems always
pass :func:`repro.has.restrictions.validate_has` and generated
properties always pass :func:`repro.hltl.formulas.validate_property`;
surface features the verifier rejects (global variables, set atoms,
existentials) are never produced.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace
from fractions import Fraction
from typing import Any, Mapping

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import const as linconst, var as linvar
from repro.database.instance import DatabaseInstance, Identifier
from repro.database.schema import (
    AttributeKind,
    DatabaseSchema,
    Relation,
    foreign_key,
    numeric,
)
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.restrictions import validate_has
from repro.has.services import SetUpdate
from repro.hltl.formulas import (
    HLTLProperty,
    HLTLSpec,
    child as child_prop,
    cond,
    service as service_prop,
    validate_property,
)
from repro.logic.conditions import And, Condition, Eq, Not, Or, RelationAtom, TRUE
from repro.logic.terms import Const, NULL, Variable, VarKind, id_var, num_var
from repro.logic.conditions import ArithAtom
from repro.ltl.formulas import (
    Always,
    AndF,
    Eventually,
    Formula,
    Next,
    NotF,
    OrF,
    Until,
)
from repro.runtime.labels import observable_services
from repro.service.serialize import to_dict


@dataclass(frozen=True)
class GenConfig:
    """Size knobs for scenario generation (all bounds inclusive)."""

    max_relations: int = 3
    """Relations in the FK-acyclic schema (at least 2 are generated)."""

    max_numeric_attrs: int = 2
    """Numeric attributes per relation (at least 1)."""

    max_fk_attrs: int = 2
    """Foreign keys per relation (referencing strictly later relations,
    so the schema is acyclic by construction)."""

    max_depth: int = 2
    """Height of the task hierarchy (1 = a root with no children)."""

    max_children: int = 2
    """Child tasks per task."""

    max_id_vars: int = 2
    """ID artifact variables per task (at least 1)."""

    max_num_vars: int = 2
    """Numeric artifact variables per task (at least 1)."""

    max_services: int = 3
    """Internal services per task (at least 1)."""

    set_weight: float = 0.25
    """Probability that a task owns an artifact relation ``S^T``."""

    arith_weight: float = 0.5
    """Probability that a scenario's conditions use linear arithmetic."""

    root_input_weight: float = 0.5
    """Probability that the root task declares input variables (with a
    precondition Π over them)."""

    property_depth: int = 2
    """Nesting depth of the temporal structure of the property."""

    child_prop_weight: float = 0.0
    """Probability weight for ``[ψ]_Tc`` child-formula propositions.
    Defaults to 0 because the bounded reference checker discharges child
    formulas only against closed child runs; keep at 0 for exact
    differential oracles, raise it for exploratory (nightly) campaigns."""

    rows_per_relation: int = 2
    """Rows per relation in each generated concrete instance."""

    numeric_pool: tuple[int, ...] = (0, 1, 2, 5)
    """Values numeric attributes and constants are drawn from."""

    instances: int = 2
    """Concrete database instances generated per scenario."""

    def to_dict(self) -> dict:
        data = asdict(self)
        data["numeric_pool"] = list(self.numeric_pool)
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "GenConfig":
        fields = dict(data)
        if "numeric_pool" in fields:
            fields["numeric_pool"] = tuple(fields["numeric_pool"])
        return GenConfig(**fields)


@dataclass
class Scenario:
    """One generated verification problem plus its concrete instances.

    A *base* scenario is fully regenerable from ``(seed, index, config)``.
    A *mutant* — produced by :func:`grow_scenarios` during a guided
    campaign — additionally carries the ``mutations`` edit trail and a
    distinguishing ``label``; its models are no longer derivable from
    the seed alone, so serialized records embed them as ground truth."""

    seed: int
    index: int
    config: GenConfig
    has: HAS
    prop: HLTLProperty
    databases: list[DatabaseInstance] = field(default_factory=list)
    label: str | None = None
    """Display/corpus name override (mutants only)."""
    mutations: tuple[str, ...] = ()
    """Grow-operator labels applied on top of the base scenario, in
    order; empty for base scenarios."""

    @property
    def name(self) -> str:
        return self.label or f"fuzz-s{self.seed}-i{self.index}"

    def payload(self) -> dict:
        """The scenario's serialized form (regenerable from seed+config
        for base scenarios; the model dicts are included so drift is
        detectable, and they are the ground truth for mutants)."""
        data = {
            "t": "fuzz_scenario",
            "name": self.name,
            "seed": self.seed,
            "index": self.index,
            "gen_config": self.config.to_dict(),
            "has": to_dict(self.has),
            "prop": to_dict(self.prop),
        }
        if self.mutations:
            data["mutations"] = list(self.mutations)
        return data


def _stream(seed: int, index: int) -> random.Random:
    # mix seed and index into one integer seed; int seeding is stable
    # across processes and Python versions (unlike hash()-based seeding)
    return random.Random((seed * 1_000_003 + index) * 2_654_435_761 % (2**63))


# ----------------------------------------------------------------------
# schema + concrete instances
# ----------------------------------------------------------------------
def _generate_schema(rng: random.Random, cfg: GenConfig) -> DatabaseSchema:
    count = rng.randint(2, max(2, cfg.max_relations))
    relations = []
    for i in range(count):
        attrs = [numeric(f"a{j}") for j in range(rng.randint(1, cfg.max_numeric_attrs))]
        targets = list(range(i + 1, count))
        fk_count = min(len(targets), rng.randint(0, cfg.max_fk_attrs))
        for position, target in enumerate(sorted(rng.sample(targets, fk_count))):
            attrs.append(foreign_key(f"f{position}", f"R{target}"))
        relations.append(Relation(f"R{i}", tuple(attrs)))
    return DatabaseSchema(tuple(relations))


def _generate_database(
    rng: random.Random, schema: DatabaseSchema, cfg: GenConfig
) -> DatabaseInstance:
    db = DatabaseInstance(schema)
    ids: dict[str, list[Identifier]] = {}
    # referenced relations are strictly later in the declaration order, so
    # building back-to-front keeps every foreign key resolvable
    for relation in reversed(schema.relations):
        ids[relation.name] = []
        for row in range(rng.randint(1, max(1, cfg.rows_per_relation))):
            values: list = [f"{relation.name.lower()}_{row}"]
            for attr in relation.attributes:
                if attr.kind is AttributeKind.NUMERIC:
                    values.append(Fraction(rng.choice(cfg.numeric_pool)))
                else:
                    values.append(rng.choice(ids[attr.references]))
            ids[relation.name].append(db.add(relation.name, *values))
    db.validate()
    return db


# ----------------------------------------------------------------------
# conditions
# ----------------------------------------------------------------------
def _relation_atom(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    id_vars: tuple[Variable, ...],
    num_vars: tuple[Variable, ...],
) -> RelationAtom:
    relation = rng.choice(schema.relations)
    args: list = [rng.choice(id_vars)]
    for attr in relation.attributes:
        if attr.kind is AttributeKind.NUMERIC:
            if rng.random() < 0.6:
                args.append(rng.choice(num_vars))
            else:
                args.append(Const(Fraction(rng.choice(cfg.numeric_pool))))
        else:
            args.append(rng.choice(id_vars))
    return RelationAtom(relation.name, tuple(args))


def _arith_atom(
    rng: random.Random, cfg: GenConfig, num_vars: tuple[Variable, ...]
) -> ArithAtom:
    expr = linvar(rng.choice(num_vars))
    if len(num_vars) > 1 and rng.random() < 0.4:
        other = rng.choice(num_vars)
        expr = expr - linvar(other)
    rel = rng.choice((Rel.GE, Rel.LE, Rel.GT, Rel.LT, Rel.EQ, Rel.NE))
    bound = linconst(Fraction(rng.choice(cfg.numeric_pool)))
    return ArithAtom(compare(expr, rel, bound))


def _atom(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    id_vars: tuple[Variable, ...],
    num_vars: tuple[Variable, ...],
    with_arith: bool,
) -> Condition:
    kinds = ["null", "notnull", "rel", "numconst"]
    if len(id_vars) > 1:
        kinds.append("ideq")
    if with_arith:
        kinds.extend(["arith", "arith"])
    kind = rng.choice(kinds)
    if kind == "null":
        return Eq(rng.choice(id_vars), NULL)
    if kind == "notnull":
        return Not(Eq(rng.choice(id_vars), NULL))
    if kind == "ideq":
        left, right = rng.sample(list(id_vars), 2)
        return Eq(left, right)
    if kind == "numconst":
        return Eq(rng.choice(num_vars), Const(Fraction(rng.choice(cfg.numeric_pool))))
    if kind == "arith":
        return _arith_atom(rng, cfg, num_vars)
    return _relation_atom(rng, cfg, schema, id_vars, num_vars)


def _condition(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    id_vars: tuple[Variable, ...],
    num_vars: tuple[Variable, ...],
    with_arith: bool,
    true_weight: float = 0.3,
) -> Condition:
    if rng.random() < true_weight:
        return TRUE
    atoms = [
        _atom(rng, cfg, schema, id_vars, num_vars, with_arith)
        for _ in range(rng.randint(1, 2))
    ]
    if len(atoms) == 1:
        return atoms[0]
    return (And if rng.random() < 0.7 else Or)(*atoms)


def _post_condition(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    id_vars: tuple[Variable, ...],
    num_vars: tuple[Variable, ...],
    with_arith: bool,
) -> Condition:
    """Post-conditions bias toward an anchored relation atom so services
    actually navigate the database (pure random conditions are usually
    unsatisfiable, which still makes a valid — if dull — scenario)."""
    roll = rng.random()
    if roll < 0.15:
        return TRUE
    parts: list[Condition] = [_relation_atom(rng, cfg, schema, id_vars, num_vars)]
    if rng.random() < 0.5:
        parts.append(_atom(rng, cfg, schema, id_vars, num_vars, with_arith))
    return And(*parts) if len(parts) > 1 else parts[0]


# ----------------------------------------------------------------------
# tasks
# ----------------------------------------------------------------------
def _pick_var_map(
    rng: random.Random,
    from_vars: tuple[Variable, ...],
    to_vars: tuple[Variable, ...],
    max_pairs: int,
) -> dict[Variable, Variable]:
    """A random 1-1 kind-preserving map ``from → to`` (distinct values)."""
    mapping: dict[Variable, Variable] = {}
    for kind in (VarKind.ID, VarKind.NUMERIC):
        sources = [v for v in from_vars if v.kind is kind]
        targets = [v for v in to_vars if v.kind is kind]
        pairs = rng.randint(0, min(len(sources), len(targets), max_pairs))
        if pairs:
            chosen_sources = rng.sample(sources, pairs)
            chosen_targets = rng.sample(targets, pairs)
            mapping.update(zip(chosen_sources, chosen_targets))
    return mapping


def _generate_task(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    counter: list[int],
    depth_left: int,
    with_arith: bool,
    parent: tuple[tuple[Variable, ...], tuple[Variable, ...]] | None,
) -> Task:
    """Generate one task (and, recursively, its children).

    ``parent`` is ``(parent_variables, parent_input_variables)`` for
    non-root tasks — needed for the opening guard scope and for
    restriction 3 on the closing's output map."""
    name = f"T{counter[0]}"
    counter[0] += 1
    ids = tuple(id_var(f"{name}_i{k}") for k in range(rng.randint(1, cfg.max_id_vars)))
    nums = tuple(
        num_var(f"{name}_n{k}") for k in range(rng.randint(1, cfg.max_num_vars))
    )
    variables = ids + nums

    if parent is None:
        input_map: dict[Variable, Variable] = {}
        if rng.random() < cfg.root_input_weight:
            count = rng.randint(1, len(variables))
            input_map = {v: v for v in rng.sample(list(variables), count)}
        opening = OpeningService(pre=TRUE, input_map=input_map)
    else:
        parent_vars, _parent_inputs = parent
        parent_ids = tuple(v for v in parent_vars if v.kind is VarKind.ID)
        parent_nums = tuple(v for v in parent_vars if v.kind is VarKind.NUMERIC)
        pre = _condition(
            rng, cfg, schema, parent_ids, parent_nums, with_arith, true_weight=0.5
        )
        input_map = _pick_var_map(rng, variables, parent_vars, max_pairs=2)
        opening = OpeningService(pre=pre, input_map=input_map)
    my_inputs = tuple(input_map.keys())

    children: list[Task] = []
    if depth_left > 1:
        for _ in range(rng.randint(0, cfg.max_children)):
            children.append(
                _generate_task(
                    rng,
                    cfg,
                    schema,
                    counter,
                    depth_left - 1,
                    with_arith,
                    parent=(variables, my_inputs),
                )
            )

    if parent is None:
        closing = ClosingService()  # the root never returns
    else:
        parent_vars, parent_inputs = parent
        returnable = tuple(v for v in parent_vars if v not in set(parent_inputs))
        output_map = _pick_var_map(rng, returnable, variables, max_pairs=2)
        close_pre = _condition(
            rng, cfg, schema, ids, nums, with_arith, true_weight=0.5
        )
        closing = ClosingService(pre=close_pre, output_map=output_map)

    set_variables: tuple[Variable, ...] = ()
    if rng.random() < cfg.set_weight:
        set_variables = tuple(rng.sample(list(ids), rng.randint(1, len(ids))))

    services = []
    for k in range(rng.randint(1, cfg.max_services)):
        # the first service keeps an open guard so every task can act
        pre = (
            TRUE
            if k == 0
            else _condition(rng, cfg, schema, ids, nums, with_arith, true_weight=0.4)
        )
        post = _post_condition(rng, cfg, schema, ids, nums, with_arith)
        update = SetUpdate.NONE
        if set_variables:
            update = rng.choices(
                (SetUpdate.NONE, SetUpdate.INSERT, SetUpdate.RETRIEVE, SetUpdate.BOTH),
                weights=(5, 2, 2, 1),
            )[0]
        services.append(
            InternalService(name=f"{name}_s{k}", pre=pre, post=post, update=update)
        )

    return Task(
        name=name,
        variables=variables,
        set_variables=set_variables,
        services=tuple(services),
        opening=opening,
        closing=closing,
        children=tuple(children),
    )


def _precondition(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    root: Task,
    with_arith: bool,
) -> Condition:
    inputs = root.input_variables
    if not inputs or rng.random() < 0.5:
        return TRUE
    input_ids = tuple(v for v in inputs if v.kind is VarKind.ID)
    input_nums = tuple(v for v in inputs if v.kind is VarKind.NUMERIC)
    if not input_ids and not input_nums:
        return TRUE
    # the atom pool needs at least one variable of each referenced kind
    if not input_ids:
        return _arith_atom(rng, cfg, input_nums) if with_arith else TRUE
    if not input_nums:
        return Eq(rng.choice(input_ids), NULL) if rng.random() < 0.5 else Not(
            Eq(rng.choice(input_ids), NULL)
        )
    return _condition(rng, cfg, schema, input_ids, input_nums, with_arith, 0.2)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
def _atom_formula(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    has_root: Task,
    with_arith: bool,
) -> Formula:
    root_ids = tuple(v for v in has_root.variables if v.kind is VarKind.ID)
    root_nums = tuple(v for v in has_root.variables if v.kind is VarKind.NUMERIC)
    roll = rng.random()
    if roll < cfg.child_prop_weight and has_root.children:
        target = rng.choice(has_root.children)
        inner_ids = tuple(v for v in target.variables if v.kind is VarKind.ID)
        inner_nums = tuple(v for v in target.variables if v.kind is VarKind.NUMERIC)
        body = cond(_condition(rng, cfg, schema, inner_ids, inner_nums, with_arith, 0.1))
        return child_prop(target.name, Eventually(body))
    if roll < cfg.child_prop_weight + 0.3:
        refs = observable_services(has_root)
        return service_prop(rng.choice(refs))
    return cond(_condition(rng, cfg, schema, root_ids, root_nums, with_arith, 0.1))


def _formula(
    rng: random.Random,
    cfg: GenConfig,
    schema: DatabaseSchema,
    has_root: Task,
    with_arith: bool,
    depth: int,
) -> Formula:
    if depth <= 0:
        return _atom_formula(rng, cfg, schema, has_root, with_arith)
    op = rng.choices(
        ("always", "eventually", "until", "next", "and", "or", "not", "atom"),
        weights=(4, 3, 1, 1, 2, 2, 1, 2),
    )[0]
    sub = lambda: _formula(rng, cfg, schema, has_root, with_arith, depth - 1)  # noqa: E731
    if op == "always":
        return Always(sub())
    if op == "eventually":
        return Eventually(sub())
    if op == "until":
        return Until(sub(), sub())
    if op == "next":
        return Next(sub())
    if op == "and":
        return AndF(sub(), sub())
    if op == "or":
        return OrF(sub(), sub())
    if op == "not":
        return NotF(sub())
    return _atom_formula(rng, cfg, schema, has_root, with_arith)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def generate_scenario(
    seed: int, index: int = 0, config: GenConfig | None = None
) -> Scenario:
    """Generate scenario ``index`` of the campaign seeded with ``seed``.

    Deterministic: the same ``(seed, index, config)`` triple always
    yields byte-identical serialized models and databases."""
    cfg = config or GenConfig()
    rng = _stream(seed, index)
    schema = _generate_schema(rng, cfg)
    with_arith = rng.random() < cfg.arith_weight
    counter = [0]
    depth = rng.randint(1, max(1, cfg.max_depth))
    root = _generate_task(rng, cfg, schema, counter, depth, with_arith, parent=None)
    precondition = _precondition(rng, cfg, schema, root, with_arith)
    name = f"fuzz-s{seed}-i{index}"
    has = HAS(schema, root, precondition=precondition, name=name)
    validate_has(has)
    formula = _formula(rng, cfg, schema, root, with_arith, cfg.property_depth)
    prop = HLTLProperty(HLTLSpec(root.name, formula), name=f"{name}-prop")
    validate_property(prop, has)
    databases = [
        _generate_database(rng, schema, cfg) for _ in range(max(1, cfg.instances))
    ]
    return Scenario(
        seed=seed, index=index, config=cfg, has=has, prop=prop, databases=databases
    )


# ----------------------------------------------------------------------
# grow operators (guided campaigns)
# ----------------------------------------------------------------------
def _replace_task(task: Task, target: str, transform) -> Task:
    """The hierarchy with ``transform`` applied to the task named
    ``target`` (the shrinking machinery's rebuild, growing instead)."""
    if task.name == target:
        return transform(task)
    children = tuple(_replace_task(c, target, transform) for c in task.children)
    if children == task.children:
        return task
    return replace(task, children=children)


def _mutant_stream(scenario: Scenario, salt: int) -> random.Random:
    """A deterministic RNG for one grow attempt: distinct per base
    coordinates, per edit-trail depth, and per ``salt``, and independent
    of the generation stream (mutating never perturbs base scenarios)."""
    mix = (
        (scenario.seed * 1_000_003 + scenario.index) * 2_654_435_761
        + (len(scenario.mutations) * 97 + salt + 1) * 1_000_000_007
    )
    return random.Random(mix % (2**63))


def _fresh_task_counter(root: Task) -> list[int]:
    """A generation counter starting past every existing ``T<n>`` name."""
    highest = -1
    for task in root.walk():
        name = task.name
        if name.startswith("T") and name[1:].isdigit():
            highest = max(highest, int(name[1:]))
    return [highest + 1]


#: Which coverage features each grow operator can plausibly reach —
#: the heuristic a guided campaign uses to pick mutations that chase
#: *uncovered* verifier regions instead of mutating blindly.
_GROW_TARGETS: dict[str, frozenset[str]] = {
    "add service": frozenset(
        {
            "sim:check:internal",
            "km:dup_edge",
            "fm:unsat",
            "fm:diseq_split",
            "store:absorb:numeric",
            "store:absorb:disequality",
        }
    ),
    "add child": frozenset(
        {
            "sim:check:open_child",
            "sim:check:close_child",
            "sim:check:self_close",
            "sim:check:blocking_segment",
            "engine:summary:computed",
            "engine:summary:output",
            "engine:summary:blocking",
            "engine:summary:lasso",
            "engine:witness:blocking",
            "km:succ_disabled",
        }
    ),
    "grow set": frozenset(
        {
            "km:omega_accel",
            "km:budget_box",
            "engine:budget:boxed",
            "witness:set_stabilized",
        }
    ),
    "wrap always": frozenset({"ltl:expand:release", "engine:verdict:violated"}),
    "wrap eventually": frozenset({"ltl:expand:until", "engine:verdict:holds"}),
    "wrap next": frozenset({"ltl:expand:next"}),
    "conjoin": frozenset(
        {
            "ltl:expand:and",
            "ltl:expand:contradiction",
            "engine:verdict:violated",
        }
    ),
    "disjoin": frozenset({"ltl:expand:or", "engine:verdict:holds"}),
    "until guard": frozenset({"ltl:expand:until", "ltl:expand:or"}),
}


def _grow_candidates(
    scenario: Scenario, rng: random.Random
) -> list[tuple[str, HAS, HLTLProperty, frozenset[str]]]:
    """Every single-edit grown variant of the scenario, unvalidated,
    with the coverage features the edit plausibly targets.

    These are the harness's shrinking edit operators in reverse — add a
    service, add a child task, grow an artifact relation, wrap or extend
    the property — which is what keeps guided mutation inside the same
    scenario space the generator samples and the shrinker reduces over."""
    has, prop, cfg = scenario.has, scenario.prop, scenario.config
    schema = has.database
    with_arith = rng.random() < max(cfg.arith_weight, 0.5)
    out: list[tuple[str, HAS, HLTLProperty, frozenset[str]]] = []
    tasks = list(has.root.walk())

    for task in tasks:
        ids = tuple(v for v in task.variables if v.kind is VarKind.ID)
        nums = tuple(v for v in task.variables if v.kind is VarKind.NUMERIC)

        # add one internal service (reverse of "drop service")
        existing = {s.name for s in task.services}
        k = len(task.services)
        while f"{task.name}_s{k}" in existing:
            k += 1
        update = SetUpdate.NONE
        if task.set_variables:
            update = rng.choices(
                (SetUpdate.NONE, SetUpdate.INSERT, SetUpdate.RETRIEVE, SetUpdate.BOTH),
                weights=(2, 2, 2, 1),
            )[0]
        service = InternalService(
            name=f"{task.name}_s{k}",
            pre=_condition(rng, cfg, schema, ids, nums, with_arith, true_weight=0.4),
            post=_post_condition(rng, cfg, schema, ids, nums, with_arith),
            update=update,
        )
        out.append(
            (
                f"add service {task.name}.{service.name}",
                _with_root(
                    has,
                    _replace_task(
                        has.root,
                        task.name,
                        lambda t, s=service: replace(t, services=t.services + (s,)),
                    ),
                ),
                prop,
                _GROW_TARGETS["add service"],
            )
        )

        # add one leaf child task (reverse of "drop task")
        counter = _fresh_task_counter(has.root)
        child = _generate_task(
            rng,
            cfg,
            schema,
            counter,
            depth_left=1,
            with_arith=with_arith,
            parent=(task.variables, task.input_variables),
        )
        out.append(
            (
                f"add child {child.name} under {task.name}",
                _with_root(
                    has,
                    _replace_task(
                        has.root,
                        task.name,
                        lambda t, c=child: replace(t, children=t.children + (c,)),
                    ),
                ),
                prop,
                _GROW_TARGETS["add child"],
            )
        )

        # grow an artifact relation (reverse of "drop artifact relation")
        if not task.set_variables and ids:
            set_vars = tuple(rng.sample(list(ids), rng.randint(1, len(ids))))

            def grow_set(t: Task, sv=set_vars, r=rng) -> Task:
                services = list(t.services)
                if services:
                    pick = r.randrange(len(services))
                    services[pick] = replace(
                        services[pick],
                        update=r.choice((SetUpdate.INSERT, SetUpdate.BOTH)),
                    )
                return replace(t, set_variables=sv, services=tuple(services))

            out.append(
                (
                    f"grow artifact relation of {task.name}",
                    _with_root(has, _replace_task(has.root, task.name, grow_set)),
                    prop,
                    _GROW_TARGETS["grow set"],
                )
            )

    # wrap or extend the property (reverse of "shrink property")
    formula = prop.root.formula
    atom = _atom_formula(rng, cfg, schema, has.root, with_arith)
    for label, grown, targets in (
        ("wrap property in always", Always(formula), _GROW_TARGETS["wrap always"]),
        (
            "wrap property in eventually",
            Eventually(formula),
            _GROW_TARGETS["wrap eventually"],
        ),
        ("wrap property in next", Next(formula), _GROW_TARGETS["wrap next"]),
        ("conjoin property with an atom", AndF(formula, atom), _GROW_TARGETS["conjoin"]),
        ("disjoin property with an atom", OrF(formula, atom), _GROW_TARGETS["disjoin"]),
        (
            "guard property behind an until",
            Until(atom, formula),
            _GROW_TARGETS["until guard"],
        ),
    ):
        out.append(
            (
                label,
                has,
                HLTLProperty(HLTLSpec(prop.root.task, grown), name=prop.name),
                targets,
            )
        )
    return out


def _with_root(has: HAS, root: Task) -> HAS:
    return HAS(has.database, root, precondition=has.precondition, name=has.name)


def operator_targets(mutation_label: str) -> frozenset[str]:
    """The coverage features the grow operator behind ``mutation_label``
    plausibly reaches (empty for unrecognized labels).  Lets a campaign
    decide whether a queued mutant still chases anything uncovered."""
    for prefix, key in (
        ("add service ", "add service"),
        ("add child ", "add child"),
        ("grow artifact relation ", "grow set"),
        ("wrap property in always", "wrap always"),
        ("wrap property in eventually", "wrap eventually"),
        ("wrap property in next", "wrap next"),
        ("conjoin property", "conjoin"),
        ("disjoin property", "disjoin"),
        ("guard property behind an until", "until guard"),
    ):
        if mutation_label.startswith(prefix):
            return _GROW_TARGETS[key]
    return frozenset()


def grow_scenarios(
    scenario: Scenario,
    limit: int = 4,
    salt: int = 0,
    targets: set[str] | frozenset[str] | None = None,
) -> list[Scenario]:
    """Up to ``limit`` validated single-edit mutants of ``scenario``.

    Guided campaigns call this on coverage-novel survivors: each mutant
    applies one *grow* operator — the shrinking machinery's edit
    operators in reverse — so mutation explores strictly richer
    structure near a scenario the registry proved interesting.

    ``targets`` (typically the campaign's *uncovered* coverage features)
    biases selection: candidates whose operator plausibly reaches more
    of the targets are preferred, so mutation chases the regions the
    campaign has not seen instead of re-firing what it has.

    Deterministic: the same (scenario coordinates, edit trail, ``salt``,
    ``targets``) always yields the same mutants, in the same order,
    regardless of ``PYTHONHASHSEED``.  Mutants carry a ``label``
    (``<base>-m<k>``) and the ``mutations`` trail; they are no longer
    regenerable from the seed, so serialized records treat their
    embedded models as ground truth (see :meth:`Scenario.payload`)."""
    rng = _mutant_stream(scenario, salt)
    candidates = _grow_candidates(scenario, rng)
    rng.shuffle(candidates)
    if targets:
        # stable sort: most-targeted first, shuffle order breaks ties
        candidates.sort(key=lambda c: -len(c[3] & targets))
    mutants: list[Scenario] = []
    for label, has, prop, _targets in candidates:
        if len(mutants) >= max(0, limit):
            break
        try:
            validate_has(has)
            validate_property(prop, has)
        except Exception:  # noqa: BLE001 — an invalid grown variant is just skipped
            continue
        mutants.append(
            Scenario(
                seed=scenario.seed,
                index=scenario.index,
                config=scenario.config,
                has=has,
                prop=prop,
                databases=scenario.databases,
                label=f"{scenario.name}-m{len(mutants)}",
                mutations=scenario.mutations + (label,),
            )
        )
    return mutants
