"""HLTL-FO formula structure (Definition 12).

The proposition payloads of the underlying LTL formulas are:

* :class:`CondProp` — a quantifier-free FO condition over the task's
  variables, the global variables ȳ, and (surface syntax) set atoms;
* :class:`ServiceProp` — a service of ``Σ^obs_T``;
* :class:`ChildProp` — ``[ψ]_{Tc}``: the run of the child task opened at
  the current position satisfies ψ.

``∀ȳ`` quantification and set atoms are surface features eliminated by
Lemma 30 (``repro.transform.simplify``); the verifier accepts properties
without global variables and set atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import ConditionError, SpecificationError
from repro.has.system import HAS
from repro.has.task import Task
from repro.logic.conditions import Atom, Condition
from repro.logic.terms import Variable, VarKind
from repro.ltl.formulas import (
    AndF,
    FalseF,
    Formula,
    Next,
    NotF,
    OrF,
    Prop,
    Release,
    TrueF,
    Until,
    propositions,
)
from repro.runtime.labels import ServiceRef


@dataclass(frozen=True)
class SetAtom(Atom):
    """``S^T(z̄)`` with z̄ among the global ID variables (Definition 12).

    Surface syntax only: Lemma 30 compiles these away before verification.
    Concrete evaluation happens against the set contents supplied by the
    tree evaluator.
    """

    task: str
    args: tuple[Variable, ...]

    def __post_init__(self) -> None:
        for variable in self.args:
            if variable.kind is not VarKind.ID:
                raise ConditionError(f"set atom argument {variable!r} must be an ID variable")

    def evaluate(self, db, valuation) -> bool:  # pragma: no cover - needs set context
        raise ConditionError(
            "SetAtom requires set contents; evaluate via the tree evaluator "
            "or eliminate it with repro.transform.simplify"
        )

    def variables(self) -> frozenset[Variable]:
        return frozenset(self.args)

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        return SetAtom(self.task, tuple(mapping.get(v, v) for v in self.args))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(v.name for v in self.args)
        return f"S_{self.task}({inner})"


@dataclass(frozen=True)
class CondProp:
    """Proposition payload: an FO condition on the current instance."""

    condition: Condition

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⟨{self.condition!r}⟩"


@dataclass(frozen=True)
class ServiceProp:
    """Proposition payload: the current service is ``ref``."""

    ref: ServiceRef

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"⟨{self.ref!r}⟩"


@dataclass(frozen=True)
class HLTLSpec:
    """A basic HLTL-FO formula ``[ϕ]_T`` of Ψ(T, ȳ)."""

    task: str
    formula: Formula

    def child_specs(self) -> Iterator["ChildProp"]:
        for payload in propositions(self.formula):
            if isinstance(payload, ChildProp):
                yield payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.formula!r}]_{self.task}"


@dataclass(frozen=True)
class ChildProp:
    """Proposition payload ``[ψ]_{Tc}``: true at positions where the task
    opens ``Tc`` and the resulting child run satisfies ψ."""

    spec: HLTLSpec

    @property
    def task(self) -> str:
        return self.spec.task

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.spec)


@dataclass(frozen=True)
class HLTLProperty:
    """``∀ȳ [ϕ_f]_{T1}`` — the top-level property (Definition 12)."""

    root: HLTLSpec
    global_variables: tuple[Variable, ...] = ()
    name: str = "property"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.global_variables:
            names = ", ".join(v.name for v in self.global_variables)
            return f"∀{names}. {self.root!r}"
        return repr(self.root)


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def cond(condition: Condition) -> Formula:
    return Prop(CondProp(condition))


def service(ref: ServiceRef) -> Formula:
    return Prop(ServiceProp(ref))


def child(task: str, formula: Formula) -> Formula:
    return Prop(ChildProp(HLTLSpec(task, formula)))


# ----------------------------------------------------------------------
# static validation
# ----------------------------------------------------------------------
def validate_property(prop: HLTLProperty, has: HAS) -> None:
    """Check the scoping discipline of Definition 12: conditions of the
    formula at task T use only x̄^T ∪ ȳ; service propositions are in
    Σ^obs_T; child formulas refer to actual children of T."""
    if prop.root.task != has.root.name:
        raise SpecificationError(
            f"property root is [{prop.root.task}] but the HAS root is {has.root.name!r}"
        )
    _validate_spec(prop.root, has, set(prop.global_variables))


def _validate_spec(spec: HLTLSpec, has: HAS, global_vars: set[Variable]) -> None:
    task = has.task(spec.task)
    allowed = set(task.variables) | global_vars
    child_names = {c.name for c in task.children}
    observable = {task.name} | child_names
    for payload in propositions(spec.formula):
        if isinstance(payload, CondProp):
            stray = payload.condition.variables() - allowed
            if stray:
                names = ", ".join(sorted(v.name for v in stray))
                raise SpecificationError(
                    f"[{spec.task}]: condition uses out-of-scope variables {{{names}}}"
                )
            _validate_set_atoms(payload.condition, global_vars, spec.task)
        elif isinstance(payload, ServiceProp):
            if payload.ref.task not in observable:
                raise SpecificationError(
                    f"[{spec.task}]: service {payload.ref!r} is not in Σ^obs"
                )
        elif isinstance(payload, ChildProp):
            if payload.task not in child_names:
                raise SpecificationError(
                    f"[{spec.task}]: [ψ]_{payload.task} is not a child task"
                )
            _validate_spec(payload.spec, has, global_vars)
        else:
            raise SpecificationError(
                f"[{spec.task}]: unsupported proposition payload {payload!r}"
            )


def _validate_set_atoms(condition: Condition, global_vars: set[Variable], where: str) -> None:
    try:
        atoms = condition.atoms()
    except ConditionError:
        return
    for atom in atoms:
        if isinstance(atom, SetAtom):
            stray = set(atom.args) - global_vars
            if stray:
                raise SpecificationError(
                    f"[{where}]: set atom arguments must be global variables"
                )


def uses_arithmetic(prop: HLTLProperty) -> bool:
    """True when any condition in the property has a non-equality atom."""
    from repro.logic.conditions import ArithAtom

    def spec_uses(spec: HLTLSpec) -> bool:
        for payload in propositions(spec.formula):
            if isinstance(payload, CondProp):
                try:
                    atoms = payload.condition.atoms()
                except ConditionError:
                    return True
                for atom in atoms:
                    if isinstance(atom, ArithAtom) and not atom.is_pure_equality:
                        return True
            elif isinstance(payload, ChildProp):
                if spec_uses(payload.spec):
                    return True
        return False

    return spec_uses(prop.root)
