"""Plain (non-hierarchical) LTL-FO over global runs (Appendix B.4).

Used to state the undecidability frontier of Theorem 11: LTL-FO (even
propositional LTL over Σ) on global runs is undecidable for HAS, which is
why the paper adopts HLTL-FO.  This module provides the semantics of
LTL-FO on (finite prefixes of) global runs so the Theorem-11 construction
is executable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.database.instance import DatabaseInstance
from repro.hltl.formulas import CondProp, ServiceProp
from repro.logic.conditions import Condition
from repro.ltl.formulas import Formula, Letter, holds_finite, propositions
from repro.runtime.global_run import GlobalConfig, Stage


@dataclass(frozen=True)
class StageProp:
    """Proposition: task ``task`` is currently in stage ``stage``."""

    task: str
    stage: Stage

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"stg({self.task})={self.stage.value}"


@dataclass(frozen=True)
class LTLFOProperty:
    """An LTL-FO formula over global runs.

    ``task_of`` assigns each FO condition to the task whose variables it
    reads: per Appendix B.4 a condition proposition holds only while that
    task is active.
    """

    formula: Formula
    task_of: dict[CondProp, str]

    def __hash__(self) -> int:  # pragma: no cover - convenience
        return hash(self.formula)


def evaluate_ltlfo(
    prop: LTLFOProperty,
    run: Sequence[GlobalConfig],
    db: DatabaseInstance,
) -> bool:
    """Finite-trace evaluation of an LTL-FO property on a global run prefix."""
    if not run:
        return False
    word: list[Letter] = []
    for config in run:
        letter: dict = {}
        for payload in propositions(prop.formula):
            if isinstance(payload, ServiceProp):
                letter[payload] = payload.ref == config.service
            elif isinstance(payload, StageProp):
                letter[payload] = config.stages.get(payload.task) is payload.stage
            elif isinstance(payload, CondProp):
                task = prop.task_of.get(payload)
                active = task is None or config.stages.get(task) is Stage.ACTIVE
                letter[payload] = active and _evaluate(payload.condition, db, config)
            else:
                raise TypeError(f"unsupported payload {payload!r}")
        word.append(letter)
    return holds_finite(prop.formula, word)


def _evaluate(condition: Condition, db: DatabaseInstance, config: GlobalConfig) -> bool:
    return condition.evaluate(db, config.valuations)
