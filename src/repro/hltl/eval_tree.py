"""Evaluation of HLTL-FO on trees of local runs (Section 3).

A local run of task T induces a word over the propositions of the formula
at T; ``[ψ]_{Tc}`` propositions hold exactly at the positions opening a
child run that recursively satisfies ψ.  Finite (complete) runs use the
finite-trace semantics of Appendix B.2; a global valuation instantiates
the ∀-quantified global variables.

Only finite trees can be evaluated concretely; the simulator produces run
*prefixes*, which this evaluator treats with finite semantics — adequate
for cross-validating violations of safety-shaped properties against the
verifier, and exact for complete (returning / blocking) runs.
"""

from __future__ import annotations

from typing import Mapping

from repro.database.instance import DatabaseInstance, Value
from repro.errors import ConditionError
from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    HLTLSpec,
    ServiceProp,
    SetAtom,
)
from repro.logic.conditions import Condition
from repro.logic.terms import Variable
from repro.ltl.formulas import Letter, holds_finite, propositions
from repro.runtime.labels import ServiceKind
from repro.runtime.tree import RunTree, RunTreeNode


def evaluate_on_tree(
    prop: HLTLProperty | HLTLSpec,
    tree: RunTree | RunTreeNode,
    db: DatabaseInstance,
    global_valuation: Mapping[Variable, Value] | None = None,
) -> bool:
    """Evaluate a property (for one valuation of its global variables) or a
    bare spec on a tree of local runs."""
    node = tree.root if isinstance(tree, RunTree) else tree
    spec = prop.root if isinstance(prop, HLTLProperty) else prop
    return _evaluate_spec(spec, node, db, dict(global_valuation or {}))


def _evaluate_spec(
    spec: HLTLSpec,
    node: RunTreeNode,
    db: DatabaseInstance,
    global_valuation: dict[Variable, Value],
) -> bool:
    if node.run.task.name != spec.task:
        raise ConditionError(
            f"spec is over task {spec.task!r} but the run is of "
            f"{node.run.task.name!r}"
        )
    word = _word_of(spec, node, db, global_valuation)
    if not word:
        return False
    return holds_finite(spec.formula, word)


def _word_of(
    spec: HLTLSpec,
    node: RunTreeNode,
    db: DatabaseInstance,
    global_valuation: dict[Variable, Value],
) -> list[Letter]:
    payloads = propositions(spec.formula)
    word: list[Letter] = []
    for index, step in enumerate(node.run.steps):
        letter: dict = {}
        for payload in payloads:
            if isinstance(payload, ServiceProp):
                letter[payload] = payload.ref == step.service
            elif isinstance(payload, CondProp):
                letter[payload] = _eval_condition(
                    payload.condition, db, step, global_valuation
                )
            elif isinstance(payload, ChildProp):
                value = False
                opens_child = (
                    step.service.kind is ServiceKind.OPENING
                    and step.service.task == payload.task
                )
                if opens_child and index in node.children:
                    value = _evaluate_spec(
                        payload.spec, node.children[index], db, global_valuation
                    )
                letter[payload] = value
            else:
                raise ConditionError(f"unsupported payload {payload!r}")
        word.append(letter)
    return word


def _eval_condition(
    condition: Condition,
    db: DatabaseInstance,
    step,
    global_valuation: dict[Variable, Value],
) -> bool:
    valuation = dict(step.state.valuation)
    valuation.update(global_valuation)
    set_atoms = _collect_set_atoms(condition)
    if not set_atoms:
        return condition.evaluate(db, valuation)
    assignment = {}
    for atom in condition.atoms():
        if isinstance(atom, SetAtom):
            values = tuple(valuation.get(v) for v in atom.args)
            assignment[atom] = values in step.state.set_contents
        else:
            assignment[atom] = atom.evaluate(db, valuation)
    return condition.evaluate_abstract(assignment)


def _collect_set_atoms(condition: Condition) -> list[SetAtom]:
    try:
        return [a for a in condition.atoms() if isinstance(a, SetAtom)]
    except ConditionError:
        return []
