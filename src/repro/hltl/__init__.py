"""HLTL-FO: hierarchical LTL-FO (Section 3, Definition 12).

An HLTL-FO property over a HAS is ``∀ȳ [ϕ_f]_{T1}`` where ``ϕ_f`` is an
LTL formula whose propositions are FO conditions over the task's variables
(plus the global variables ȳ and set atoms) or recursively ``[ψ]_{Tc}``
formulas over child tasks.
"""

from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    HLTLSpec,
    ServiceProp,
    SetAtom,
    cond,
    service,
    child,
)
from repro.hltl.eval_tree import evaluate_on_tree
from repro.hltl.ltlfo import LTLFOProperty, StageProp, evaluate_ltlfo

__all__ = [
    "ChildProp",
    "CondProp",
    "HLTLProperty",
    "HLTLSpec",
    "ServiceProp",
    "SetAtom",
    "cond",
    "service",
    "child",
    "evaluate_on_tree",
    "LTLFOProperty",
    "StageProp",
    "evaluate_ltlfo",
]
