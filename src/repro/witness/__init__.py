"""Concrete counterexamples: materialization, replay validation, and
trace minimization for VIOLATED verdicts (``repro.witness``).

The verifier answers ``Γ ⊨ φ`` symbolically; this package turns its
symbolic witness paths into evidence a user can run:

* :func:`concretize` — the one-call pipeline: sample concrete rationals
  and identifiers consistent with every constraint store on the witness
  path (:mod:`repro.witness.materialize`), confirm the resulting run
  against the concrete semantics and the reference LTL evaluators
  (:mod:`repro.witness.replay`), then delta-debug it down to a minimal
  trace (:mod:`repro.witness.minimize`).

The result is either a :class:`~repro.witness.trace.ConcreteWitness`
(with its validation checklist) or a
:class:`~repro.witness.trace.NonConcretizable` naming the obstacle —
never a silent failure.
"""

from __future__ import annotations

import time

from repro.errors import ReproError
from repro.fuzz.coverage import COVERAGE
from repro.has.system import HAS
from repro.hltl.formulas import HLTLProperty
from repro.obs import trace as obs_trace
from repro.perf.phases import PHASES
from repro.verifier.result import VerificationResult, WitnessStep
from repro.witness.materialize import materialize
from repro.witness.minimize import minimize
from repro.witness.replay import validate
from repro.witness.trace import (
    ConcreteStep,
    ConcreteWitness,
    NonConcretizable,
    render_value,
)

__all__ = [
    "ConcreteStep",
    "ConcreteWitness",
    "NonConcretizable",
    "concretize",
    "attach_to_result",
    "render_value",
]


def concretize(
    has: HAS,
    prop: HLTLProperty,
    result: VerificationResult,
    shrink: bool = True,
    time_budget: float | None = None,
) -> ConcreteWitness | NonConcretizable:
    """Materialize, validate, and (optionally) minimize a counterexample
    for a VIOLATED verification result.

    ``time_budget`` (seconds) bounds the minimization passes — they stop
    accepting candidates once it is spent, keeping post-verdict work
    within the same order as the verification budget itself.

    Each of the three passes runs under its own trace span and phase
    timer (``materialize`` / ``replay`` / ``minimize`` — see
    docs/observability.md), so a slow concretization is attributable."""
    with obs_trace.span("witness.materialize") as extra:
        token = PHASES.begin("materialize")
        try:
            outcome = materialize(has, result)
            if isinstance(outcome, NonConcretizable):
                extra["status"] = "non_concretizable"
                return outcome
            db_builder, steps, loop_start, notes = outcome
            try:
                database = db_builder.build()
            except ReproError as exc:
                extra["status"] = "non_concretizable"
                return NonConcretizable(
                    f"materialized rows form no valid instance: {exc}",
                    property_name=result.property_name,
                    kind=result.witness_kind,
                )
            extra["status"] = "materialized"
            extra["steps"] = len(steps)
        finally:
            PHASES.end("materialize", token)
    witness = ConcreteWitness(
        kind=result.witness_kind,
        property_name=result.property_name,
        database=database,
        steps=steps,
        loop_start=loop_start,
        raw_length=len(steps),
        notes=list(notes),
    )
    with obs_trace.span("witness.replay") as extra:
        token = PHASES.begin("replay")
        try:
            checks, check_notes = validate(
                has, prop, witness.kind, database, steps, loop_start
            )
        finally:
            PHASES.end("replay", token)
        witness.checks = checks
        witness.notes.extend(check_notes)
        if witness.confirmed:
            COVERAGE.hit("witness:confirmed")
        extra["confirmed"] = witness.confirmed
    if witness.confirmed and shrink:
        with obs_trace.span("witness.minimize") as extra:
            token = PHASES.begin("minimize")
            try:
                deadline = (
                    time.monotonic() + time_budget
                    if time_budget is not None
                    else None
                )
                saved_notes = witness.notes
                witness = minimize(has, prop, witness, deadline)
                witness.notes = saved_notes
            finally:
                PHASES.end("minimize", token)
            extra["steps"] = len(witness.steps)
    return witness


def attach_to_result(result: VerificationResult, witness: ConcreteWitness) -> None:
    """Replace the result's symbolic witness steps with binding-rich ones
    derived from the concrete (minimized) trace."""
    steps = []
    root_task = witness.steps[0].service.task if witness.steps else ""
    for step in witness.steps[1:]:  # position 0 is the opening instant
        bindings = tuple(sorted(
            (name, "null" if value is None else str(value))
            for name, value in step.bindings_rendered().items()
        ))
        detail = "⊥" if step.assumed_nonreturning else ""
        steps.append(
            WitnessStep(
                task=root_task,
                service=repr(step.service),
                detail=detail,
                bindings=bindings,
            )
        )
    result.witness = steps
    result.loop_start = (
        witness.loop_start - 1 if witness.loop_start is not None else None
    )
