"""Concrete counterexample traces: the data model of ``repro.witness``.

A :class:`ConcreteWitness` is a violation the user can hold in their
hands: a finite database instance, a step-by-step run of the root task
with full variable bindings and artifact-relation contents, the index
where a lasso starts repeating, and the record of which independent
checks confirmed it.  A :class:`NonConcretizable` records *why* a
symbolic witness could not be turned into one (the honest answer when
over-approximation, ω-acceleration, or unimplemented corners get in the
way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Mapping

from repro.database.instance import DatabaseInstance, Identifier, Value
from repro.hltl.formulas import HLTLSpec
from repro.logic.terms import Variable
from repro.runtime.labels import ServiceRef
from repro.runtime.state import SetTuple


def render_value(value: Value) -> Any:
    """JSON-friendly rendering: ids as ``"REL#label"``, rationals as exact
    strings, null as ``None``."""
    if value is None:
        return None
    if isinstance(value, Identifier):
        return f"{value.relation}#{value.label}"
    fraction = Fraction(value)
    return str(fraction)


@dataclass
class ConcreteStep:
    """One instant of the concrete root run."""

    index: int
    service: ServiceRef
    valuation: dict[Variable, Value]
    set_contents: frozenset[SetTuple] = frozenset()
    child_beta: Mapping[HLTLSpec, bool] | None = None
    """At child-opening steps: the guessed truth assignment β over the
    child's Φ_T formulas (the part of the witness that rests on the
    memoized child summary rather than an explicit child run)."""
    assumed_nonreturning: bool = False
    """True when this step opens a child whose summary was taken in its
    never-returning (⊥) outcome."""

    def bindings_rendered(self) -> dict[str, Any]:
        return {
            variable.name: render_value(value)
            for variable, value in sorted(
                self.valuation.items(), key=lambda kv: kv[0].name
            )
        }

    def to_dict(self) -> dict:
        data: dict[str, Any] = {
            "index": self.index,
            "service": repr(self.service),
            "bindings": self.bindings_rendered(),
        }
        if self.set_contents:
            # tuples may hold nulls (None); sort on a None-safe key
            data["set_contents"] = sorted(
                ([render_value(v) for v in tup] for tup in self.set_contents),
                key=lambda rendered: [(value is None, value) for value in rendered],
            )
        if self.child_beta:
            data["child_beta"] = {
                repr(spec): value
                for spec, value in sorted(
                    self.child_beta.items(), key=lambda kv: repr(kv[0])
                )
            }
        if self.assumed_nonreturning:
            data["assumed_nonreturning"] = True
        return data


def database_to_dict(db: DatabaseInstance) -> dict:
    """The instance as plain JSON: relation → list of attribute dicts."""
    out: dict[str, list] = {}
    for relation in db.schema:
        names = relation.attribute_names  # ID first, then declared attrs
        rows = []
        for row in sorted(db.rows(relation.name), key=repr):
            rows.append(
                {name: render_value(value) for name, value in zip(names, row)}
            )
        out[relation.name] = rows
    return out


@dataclass
class ConcreteWitness:
    """A materialized, independently validated counterexample run."""

    kind: str  # "lasso" | "blocking"
    property_name: str
    database: DatabaseInstance
    steps: list[ConcreteStep]
    loop_start: int | None = None
    """Index into ``steps`` of the first position of the repeated segment
    (None for blocking witnesses)."""
    checks: dict[str, bool] = field(default_factory=dict)
    raw_length: int = 0
    """Length of the materialized run before minimization (one entry per
    instant, the opening included)."""
    notes: list[str] = field(default_factory=list)

    @property
    def confirmed(self) -> bool:
        return bool(self.checks) and all(self.checks.values())

    def to_dict(self) -> dict:
        return {
            "status": "confirmed" if self.confirmed else "unconfirmed",
            "kind": self.kind,
            "property": self.property_name,
            "database": database_to_dict(self.database),
            "steps": [step.to_dict() for step in self.steps],
            "loop_start": self.loop_start,
            "checks": dict(sorted(self.checks.items())),
            "raw_length": self.raw_length,
            "minimized_length": len(self.steps),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Human-readable trace for the ``repro explain`` CLI."""
        lines = [
            f"property {self.property_name!r} VIOLATED — concrete "
            f"{self.kind} counterexample "
            f"({'confirmed' if self.confirmed else 'UNCONFIRMED'}; "
            f"{len(self.steps)} steps, raw materialized run {self.raw_length})"
        ]
        lines.append("database:")
        for relation, rows in database_to_dict(self.database).items():
            if not rows:
                continue
            for row in rows:
                rendered = ", ".join(f"{k}={v}" for k, v in row.items())
                lines.append(f"    {relation}({rendered})")
        lines.append("run:")
        previous: dict[Variable, Value] = {}
        for step in self.steps:
            marker = (
                "↻ " if self.loop_start is not None and step.index == self.loop_start
                else "  "
            )
            changed = {
                variable: value
                for variable, value in step.valuation.items()
                if previous.get(variable, "∄") != value
            }
            rendered = ", ".join(
                f"{v.name}={'null' if val is None else render_value(val)}"
                for v, val in sorted(changed.items(), key=lambda kv: kv[0].name)
            )
            suffix = f"  {{{rendered}}}" if rendered else ""
            extra = " (child assumed never to return)" if step.assumed_nonreturning else ""
            lines.append(f"  {marker}{step.index:3d}. {step.service!r}{suffix}{extra}")
            if step.set_contents:
                tuples = sorted(
                    "(" + ", ".join(str(render_value(v)) for v in tup) + ")"
                    for tup in step.set_contents
                )
                lines.append(f"        S = {{{', '.join(tuples)}}}")
            previous = step.valuation
        if self.loop_start is not None:
            lines.append(
                f"  (steps {self.loop_start}…{len(self.steps) - 1} repeat forever)"
            )
        for check, ok in sorted(self.checks.items()):
            lines.append(f"  check {check}: {'ok' if ok else 'FAILED'}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


@dataclass
class NonConcretizable:
    """The structured record of a failed concretization attempt."""

    reason: str
    property_name: str = ""
    kind: str = ""

    @property
    def confirmed(self) -> bool:
        return False

    def to_dict(self) -> dict:
        return {
            "status": "non_concretizable",
            "kind": self.kind,
            "property": self.property_name,
            "reason": self.reason,
        }

    def render(self) -> str:
        return (
            f"property {self.property_name!r} VIOLATED — symbolic "
            f"{self.kind or 'run'} witness could not be concretized: {self.reason}"
        )
