"""Sampling concrete values from symbolic constraint stores.

A consistent :class:`~repro.symbolic.store.ConstraintStore` denotes a
non-empty set of isomorphism types over infinite domains; this module
picks one concrete realization:

* every non-null ID class becomes an :class:`Identifier` of its anchoring
  relation (fresh by default — distinct classes are always allowed to be
  distinct — or pinned by the caller for values that persist across
  steps);
* navigation edges become database rows: ``id.attr = value`` facts
  accumulate in a :class:`DatabaseBuilder`, which detects conflicts and
  later fills unconstrained attributes with defaults;
* the store's linear constraints (plus pins and already-decided row
  values) go through :func:`repro.arith.fm.sample_solution` for exact
  rational witnesses.

Everything is deterministic: iteration orders are sorted, identifiers are
numbered in assignment order, and no randomness is involved — re-running
a concretization yields byte-identical output (the batch-service parity
invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.arith.constraints import Constraint, Rel
from repro.arith.fm import sample_solution
from repro.arith.linexpr import LinExpr
from repro.database.instance import DatabaseInstance, Identifier, Value
from repro.database.schema import AttributeKind, DatabaseSchema
from repro.symbolic.nodes import ConstNode, NULL, Node, Sort
from repro.symbolic.store import ConstraintStore


class SamplingError(Exception):
    """A store admitted no concrete realization under the given pins (in a
    sound pipeline this signals an over-approximation or a pin conflict,
    not a verifier bug)."""


_UNSET = object()


class DatabaseBuilder:
    """Accumulates concrete rows across per-segment samples.

    Attribute values arrive incrementally (each sampled store contributes
    the navigations it knows about); :meth:`build` fills the remaining
    attributes with defaults — 0 for numerics, a canonical per-relation
    default row for foreign keys — and returns a validated instance.
    """

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self.rows: dict[Identifier, dict[str, Value]] = {}
        self._counter = 0
        self._defaults: dict[str, Identifier] = {}

    def snapshot(self) -> tuple:
        """Cheap state capture for transactional sampling attempts."""
        return (
            {ident: dict(attrs) for ident, attrs in self.rows.items()},
            self._counter,
            dict(self._defaults),
        )

    def restore(self, snapshot: tuple) -> None:
        rows, counter, defaults = snapshot
        self.rows = {ident: dict(attrs) for ident, attrs in rows.items()}
        self._counter = counter
        self._defaults = defaults

    def new_id(self, relation: str) -> Identifier:
        self._counter += 1
        ident = Identifier(relation, f"w{self._counter}")
        self.rows.setdefault(ident, {})
        return ident

    def ensure_row(self, ident: Identifier) -> None:
        self.rows.setdefault(ident, {})

    def get_attr(self, ident: Identifier, attr: str):
        return self.rows.get(ident, {}).get(attr, _UNSET)

    def set_attr(self, ident: Identifier, attr: str, value: Value) -> bool:
        """Record ``ident.attr = value``; False on conflict."""
        row = self.rows.setdefault(ident, {})
        current = row.get(attr, _UNSET)
        if current is _UNSET:
            row[attr] = value
            return True
        return current == value

    def _default_target(self, relation: str) -> Identifier:
        ident = self._defaults.get(relation)
        if ident is None:
            ident = self.new_id(relation)
            # memoize before recursing so FK cycles terminate (the default
            # row of a self-referencing relation points at itself)
            self._defaults[relation] = ident
            self._fill_row(ident)
        return ident

    def _fill_row(self, ident: Identifier) -> None:
        row = self.rows.setdefault(ident, {})
        for attribute in self.schema.relation(ident.relation).attributes:
            if attribute.name in row:
                continue
            if attribute.kind is AttributeKind.NUMERIC:
                row[attribute.name] = Fraction(0)
            else:
                assert attribute.references is not None
                row[attribute.name] = self._default_target(attribute.references)

    def build(self) -> DatabaseInstance:
        for ident in sorted(self.rows, key=repr):
            self._fill_row(ident)
        db = DatabaseInstance(self.schema)
        for ident in sorted(self.rows, key=repr):
            relation = self.schema.relation(ident.relation)
            values = [self.rows[ident][a.name] for a in relation.attributes]
            db.add(ident.relation, ident, *values)
        db.validate()
        return db


@dataclass
class StoreSample:
    """One concrete realization of a store: a value per class root."""

    store: ConstraintStore
    values: dict[Node, Value] = field(default_factory=dict)

    def value_of(self, node: Node) -> Value:
        root = self.store.find(node)
        if root in self.values:
            return self.values[root]
        if isinstance(root, ConstNode):
            return root.value
        raise SamplingError(f"no sampled value for {node!r}")


def sample_store(
    store: ConstraintStore,
    db: DatabaseBuilder,
    fixed: Mapping[Node, Value] | None = None,
) -> StoreSample:
    """Realize ``store`` concretely, extending ``db`` with the rows its
    navigations describe.

    ``fixed`` pins class roots to given values (persistent inputs, lasso
    seams, retrieved tuples).  Raises :class:`SamplingError` when no
    realization respects the pins and the rows decided so far.
    """
    pins: dict[Node, Value] = {}
    for node, value in (fixed or {}).items():
        root = store.find(node)
        current = pins.get(root, _UNSET)
        if current is not _UNSET and current != value:
            raise SamplingError(
                f"conflicting pins for {root!r}: {current!r} vs {value!r}"
            )
        pins[root] = value

    roots = store.class_roots()
    id_roots = [r for r in roots if store.sort_of(r) is Sort.ID]
    numeric_roots = [r for r in roots if store.sort_of(r) is Sort.NUMERIC]

    # propagate already-decided foreign keys into pins: when a pinned id's
    # row already fixes ``id.attr`` (an earlier segment decided it), the
    # store's navigation child must reuse that value, transitively
    worklist = [r for r in id_roots if isinstance(pins.get(r), Identifier)]
    while worklist:
        root = worklist.pop()
        ident = pins[root]
        assert isinstance(ident, Identifier)
        relation = store.schema.relation(ident.relation)
        for attr, child in store.navigation_children(root):
            attribute = relation.attribute(attr)
            if attribute.kind is AttributeKind.NUMERIC:
                continue
            known = db.get_attr(ident, attr)
            if known is _UNSET:
                continue
            child_root = store.find(child)
            current = pins.get(child_root, _UNSET)
            if current is _UNSET:
                pins[child_root] = known
                worklist.append(child_root)
            elif current != known:
                raise SamplingError(
                    f"{ident!r}.{attr} already {known!r}, pinned to {current!r}"
                )

    # ------------------------------------------------------------------
    # 1. identifiers for ID classes
    # ------------------------------------------------------------------
    ids: dict[Node, Value] = {}
    null_root = store.find(NULL)

    def assign_id(root: Node) -> Value:
        if root in ids:
            return ids[root]
        pinned = pins.get(root, _UNSET)
        status = store.null_status(root)
        if pinned is not _UNSET:
            if pinned is None and status is False:
                raise SamplingError(f"{root!r} pinned null but known non-null")
            if isinstance(pinned, Identifier):
                if status is True:
                    raise SamplingError(f"{root!r} pinned to an id but known null")
                anchor = store.anchor_of(root)
                if anchor is not None and anchor != pinned.relation:
                    raise SamplingError(
                        f"{root!r} anchored to {anchor!r}, pinned to {pinned!r}"
                    )
                if pinned.relation in store.excluded_anchors(root):
                    raise SamplingError(f"{root!r} excludes relation {pinned.relation!r}")
                db.ensure_row(pinned)
            ids[root] = pinned
            return pinned
        if status is True or root is null_root:
            ids[root] = None
            return None
        allowed = store.allowed_anchors(root)
        if not allowed:
            if status is False:
                raise SamplingError(f"{root!r} is non-null but excluded everywhere")
            ids[root] = None
            return None
        # fresh identifiers keep distinct classes distinct, which realizes
        # every undecided equality/disequality consistently
        ident = db.new_id(allowed[0])
        ids[root] = ident
        return ident

    for root in id_roots:
        assign_id(root)

    # distinctness double-check against explicit disequalities (pins may
    # have identified classes the store keeps apart)
    for pair in store.disequalities():
        members = list(pair)
        if len(members) == 2 and all(m in ids for m in members):
            if ids[members[0]] == ids[members[1]]:
                raise SamplingError(
                    f"pinned values identify classes required distinct: {members!r}"
                )

    # ------------------------------------------------------------------
    # 2. navigation edges: ID-valued attributes, and numeric row pins
    # ------------------------------------------------------------------
    numeric_pins: list[tuple[Node, Fraction]] = []
    numeric_row_slots: list[tuple[Identifier, str, Node]] = []
    for root in id_roots:
        ident = ids.get(root)
        if not isinstance(ident, Identifier):
            continue
        relation = store.schema.relation(ident.relation)
        for attr, child in store.navigation_children(root):
            child_root = store.find(child)
            attribute = relation.attribute(attr)
            if attribute.kind is AttributeKind.NUMERIC:
                known = db.get_attr(ident, attr)
                if known is not _UNSET:
                    numeric_pins.append((child_root, Fraction(known)))
                else:
                    numeric_row_slots.append((ident, attr, child_root))
            else:
                known = db.get_attr(ident, attr)
                value = ids.get(child_root, _UNSET)
                if known is not _UNSET:
                    if value is _UNSET:
                        ids[child_root] = known
                    elif value != known:
                        raise SamplingError(
                            f"{ident!r}.{attr} already {known!r}, store needs {value!r}"
                        )
                else:
                    if value is _UNSET or value is None:
                        raise SamplingError(
                            f"{ident!r}.{attr}: foreign key target unresolved"
                        )
                    if not db.set_attr(ident, attr, value):
                        raise SamplingError(f"{ident!r}.{attr}: row conflict")

    # ------------------------------------------------------------------
    # 3. numeric classes via Fourier–Motzkin
    # ------------------------------------------------------------------
    constraints = list(store.numeric_constraints())
    for root, value in numeric_pins:
        constraints.append(Constraint(LinExpr({root: 1}, -value), Rel.EQ))
    for root in numeric_roots:
        pinned = pins.get(root, _UNSET)
        if pinned is not _UNSET:
            constraints.append(
                Constraint(LinExpr({root: 1}, -Fraction(pinned)), Rel.EQ)
            )
    solution = sample_solution(constraints)
    if solution is None:
        raise SamplingError(
            "numeric constraints unsatisfiable under pins and decided rows"
        )
    values: dict[Node, Value] = dict(ids)
    for root in numeric_roots:
        if isinstance(root, ConstNode):
            values[root] = root.value
        elif root in solution:
            values[root] = solution[root]
        else:
            pinned = pins.get(root, _UNSET)
            values[root] = Fraction(pinned) if pinned is not _UNSET else Fraction(0)

    # write the freshly decided numeric row values back
    for ident, attr, child_root in numeric_row_slots:
        if not db.set_attr(ident, attr, values[child_root]):
            raise SamplingError(f"{ident!r}.{attr}: numeric row conflict")

    return StoreSample(store=store, values=values)
