"""Witness materialization: symbolic KM path → concrete run + database.

The verifier's witness is a path (plus, for lassos, an ordered cycle)
through the root task's symbolic VASS, each state a partial isomorphism
type.  Materialization walks that path and produces a single concrete
realization — a finite database instance and per-step variable
valuations — such that every transition is legal under the concrete
semantics of Definition 8.

The walk is organized around *segments*: maximal step intervals with no
internal service after the first position.  Within a segment the
symbolic stores form a refinement chain sharing node identity, so one
sample of the segment's final store yields consistent values for every
step in it (openings and closings provably leave the state unchanged).
Across segments only three kinds of facts persist, and each is pinned
explicitly when sampling:

* input variables (and everything navigable from them) — sampled once
  from the *anchor* store, the maximal store of the path, and pinned
  everywhere else, with row attributes flowing through the shared
  :class:`~repro.witness.sampling.DatabaseBuilder`;
* the artifact relation — insertions take the previous step's concrete
  ``s̄`` tuple, retrievals pin ``s̄`` to a previously stored tuple;
* the lasso seam — the final position's variables are pinned to the
  cycle-entry values so the produced run is genuinely ultimately
  periodic.

Because Karp–Miller interning dedupes states across derivation branches,
the stored KM path does not guarantee node-identity chaining; the walk
therefore *re-derives* every transition through
:meth:`~repro.verifier.task_vass.TaskVASS.successor_states`, matching on
step tag and canonical state key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.fuzz.coverage import COVERAGE
from repro.has.system import HAS
from repro.logic.terms import Variable, VarKind
from repro.runtime import labels
from repro.runtime.labels import ServiceRef
from repro.runtime.state import SetTuple
from repro.symbolic.apply import apply_condition
from repro.symbolic.store import ConstraintStore
from repro.symbolic.tstypes import impose_ts_type
from repro.vass.karp_miller import thaw
from repro.verifier.result import SymbolicTrace, VerificationResult
from repro.verifier.task_vass import BOT, StepTag, SymState
from repro.witness.sampling import (
    DatabaseBuilder,
    SamplingError,
    StoreSample,
    sample_store,
)
from repro.witness.trace import ConcreteStep, ConcreteWitness, NonConcretizable

#: Cap on condition branches / retrieval candidates tried per segment.
_MAX_ATTEMPTS = 24


class _Fail(Exception):
    """Internal control flow: abort materialization with a reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class _Position:
    index: int
    service: ServiceRef
    state: SymState
    tag: StepTag | None


@dataclass
class _Segment:
    start: int
    end: int  # inclusive
    next_tag: StepTag | None = None
    store: ConstraintStore | None = None  # refined final store
    records: list[dict[Variable, object]] = field(default_factory=list)
    sample: StoreSample | None = None
    forced: dict[Variable, object] = field(default_factory=dict)
    """Values for variables with no store node (unconstrained): seam
    variables freely set to their cycle-entry value."""


def _default(variable: Variable):
    return None if variable.kind is VarKind.ID else Fraction(0)


def apply_set_update(
    update,
    current: frozenset[SetTuple],
    inserted: SetTuple,
    retrieved: SetTuple,
) -> frozenset[SetTuple] | None:
    """Definition 8's δ on concrete artifact-relation contents; None when
    the retrieval has no matching stored tuple.  The single witness-side
    implementation — materialization and minimization both use it, while
    ``runtime.transition`` stays the *independent* checker replay
    validation runs against."""
    pool = current | {inserted} if update.inserts else current
    if update.retrieves:
        if retrieved not in pool:
            return None
        pool = pool - {retrieved}
    return frozenset(pool)


# ----------------------------------------------------------------------
# path re-derivation
# ----------------------------------------------------------------------
def _derive_positions(trace: SymbolicTrace) -> list[_Position]:
    vass = trace.vass
    start_state = vass.state(trace.start.state)
    positions = [
        _Position(0, labels.opening(vass.task.name), start_state, None)
    ]
    current = start_state
    prev_node = trace.start
    for tag, node in list(trace.path) + list(trace.cycle):
        target_key = vass.state(node.state).key
        vector = thaw(prev_node.vector)
        match = None
        for _delta, successor, candidate in vass.successor_states(current, vector):
            if candidate == tag and successor.key == target_key:
                match = successor
                break
        if match is None:
            raise _Fail(f"could not re-derive witness step {tag!r}")
        positions.append(_Position(len(positions), tag.service, match, tag))
        current = match
        prev_node = node
    return positions


def _split_segments(positions: list[_Position], loop_start: int | None) -> list[_Segment]:
    starts = [0] + [
        p.index for p in positions[1:] if p.service.is_internal
    ]
    segments = []
    for i, s in enumerate(starts):
        e = (starts[i + 1] - 1) if i + 1 < len(starts) else len(positions) - 1
        segments.append(_Segment(start=s, end=e))
    for i, segment in enumerate(segments):
        if i + 1 < len(segments):
            segment.next_tag = positions[segments[i + 1].start].tag
        elif loop_start is not None:
            segment.next_tag = positions[loop_start].tag
    return segments


# ----------------------------------------------------------------------
# per-segment structure
# ----------------------------------------------------------------------
def _effective_nodes(
    positions: list[_Position], segment: _Segment, task
) -> list[dict[Variable, object]]:
    """The value node of each task variable at each position of the
    segment: bindings carry forward through openings/closings, child
    returns rebind their targets, and first uses apply retroactively
    (the value was constant since the segment's first instant)."""
    records: list[dict[Variable, object]] = []
    current: dict[Variable, object] = {}
    for index in range(segment.start, segment.end + 1):
        position = positions[index]
        store = position.state.store
        if index == segment.start:
            current = {}
            for v in task.variables:
                node = store.binding_of(v)
                if node is not None:
                    current[v] = node
        else:
            service = position.service
            if service.is_closing and service.task != task.name:
                child = task.child(service.task)
                for parent_var in child.closing.output_map:
                    node = store.binding_of(parent_var)
                    if node is not None:
                        current[parent_var] = node
            for v in task.variables:
                if v not in current:
                    node = store.binding_of(v)
                    if node is not None:
                        current[v] = node
                        for earlier in records:
                            earlier.setdefault(v, node)
        records.append(dict(current))
    return records


def _refined_store_candidates(
    segment: _Segment, positions: list[_Position], task, vass
):
    """The segment's final store, refined so the *next* internal service's
    pre-condition (and TS-type snapshot, when it inserts) definitely holds
    — one candidate per consistent refinement branch."""
    store = positions[segment.end].state.store
    tag = segment.next_tag
    if tag is None or not tag.service.is_internal:
        yield store.copy()
        return
    service = task.service(tag.service.name)
    produced = 0
    for branch in itertools.islice(
        apply_condition(store, service.pre), _MAX_ATTEMPTS
    ):
        refined = branch
        if tag.inserted is not None:
            refined = impose_ts_type(branch, tag.inserted, vass.slots, fresh_slots=())
            if refined is None:
                continue
        produced += 1
        yield refined
    if not produced:
        raise _Fail(
            f"pre-condition of {tag.service!r} admits no consistent refinement"
        )


def _valuation_at(
    record: Mapping[Variable, object],
    sample: StoreSample,
    task,
    forced: Mapping[Variable, object] | None = None,
) -> dict[Variable, object]:
    valuation = {}
    for variable in task.variables:
        node = record.get(variable)
        if node is None:
            if forced and variable in forced:
                valuation[variable] = forced[variable]
            else:
                valuation[variable] = _default(variable)
        else:
            valuation[variable] = sample.value_of(node)
    return valuation


# ----------------------------------------------------------------------
# the materializer
# ----------------------------------------------------------------------
class Materializer:
    def __init__(self, has: HAS, trace: SymbolicTrace):
        self.has = has
        self.trace = trace
        self.vass = trace.vass
        self.task = trace.vass.task
        self.db = DatabaseBuilder(has.database)
        self.notes: list[str] = []

    # ------------------------------------------------------------------
    def run(self) -> tuple[DatabaseBuilder, list[ConcreteStep], int | None]:
        positions = _derive_positions(self.trace)
        n_path = len(self.trace.path)
        loop_start = n_path + 1 if self.trace.cycle else None
        segments = _split_segments(positions, loop_start)
        for segment in segments:
            segment.records = _effective_nodes(positions, segment, self.task)

        anchor_index = self._anchor_index(segments, n_path if self.trace.cycle else None)
        anchor = segments[anchor_index]
        self._sample_segment(anchor, positions, pins={})
        assert anchor.sample is not None
        anchor_record = anchor.records[-1]
        input_values = {
            v: anchor.sample.value_of(anchor_record[v])
            for v in self.task.input_variables
            if v in anchor_record
        }
        seam_values = None
        if self.trace.cycle:
            seam_record = anchor.records[n_path - anchor.start]
            seam_values = _valuation_at(seam_record, anchor.sample, self.task)

        # walk segments in order, sampling and extracting valuations
        valuations: list[dict[Variable, object]] = [
            {} for _ in positions
        ]
        set_contents: list[frozenset[SetTuple]] = [frozenset() for _ in positions]
        current_set: frozenset[SetTuple] = frozenset()
        for seg_index, segment in enumerate(segments):
            pins: dict = {}
            seam: Mapping[Variable, object] | None = None
            if segment is not anchor:
                for v, value in input_values.items():
                    node = segment.records[-1].get(v)
                    if node is not None:
                        pins[node] = value
                if (
                    seam_values is not None
                    and seg_index == len(segments) - 1
                ):
                    seam = seam_values
            current_set = self._sample_with_sets(
                segment,
                positions,
                valuations,
                pins,
                current_set,
                is_anchor=segment is anchor,
                seam_values=seam,
            )
            # extract valuations and set contents for the segment
            assert segment.sample is not None
            for index in range(segment.start, segment.end + 1):
                record = segment.records[index - segment.start]
                valuations[index] = _valuation_at(
                    record, segment.sample, self.task, segment.forced
                )
            current_set = self._update_sets(
                segment, positions, valuations, set_contents, current_set
            )

        steps = []
        for position in positions:
            child_beta = None
            assumed = False
            service = position.service
            if service.is_opening and service.task != self.task.name:
                status = position.state.status_of(service.task)
                if status != ("init",) and status[0] == "active":
                    child_beta = dict(status[1])
                    assumed = status[2] == BOT
            steps.append(
                ConcreteStep(
                    index=position.index,
                    service=service,
                    valuation=valuations[position.index],
                    set_contents=set_contents[position.index],
                    child_beta=child_beta,
                    assumed_nonreturning=assumed,
                )
            )
        return self.db, steps, loop_start

    # ------------------------------------------------------------------
    def _anchor_index(self, segments: list[_Segment], seam: int | None) -> int:
        """The segment holding the maximal store: the cycle-entry position
        for lassos (every fact of the loop flows back into it), the final
        position for blocking witnesses."""
        target = seam if seam is not None else segments[-1].end
        for index, segment in enumerate(segments):
            if segment.start <= target <= segment.end:
                return index
        raise _Fail("anchor position outside every segment")

    # ------------------------------------------------------------------
    def _sample_segment(
        self,
        segment: _Segment,
        positions: list[_Position],
        pins: dict,
        seam_values: Mapping[Variable, object] | None = None,
    ) -> None:
        """Sample the segment's refined final store, trying refinement
        branches transactionally against the shared database builder.

        ``seam_values`` (lasso exit segments only) pins the final
        position to the cycle-entry valuation.  Pin nodes are resolved
        against each *refined* candidate — the next service's
        pre-condition may be what binds a seam variable in the first
        place — and a variable with no node even after refinement is
        unconstrained, so it is freely *forced* to its entry value."""
        failures: list[str] = []
        for candidate in _refined_store_candidates(
            segment, positions, self.task, self.vass
        ):
            attempt = dict(pins)
            if seam_values is not None:
                record = segment.records[-1]
                forced: dict[Variable, object] = {}
                for variable, value in seam_values.items():
                    node = record.get(variable)
                    if node is None:
                        node = candidate.binding_of(variable)
                    if node is not None:
                        attempt[node] = value
                    elif value != _default(variable):
                        forced[variable] = value
            snapshot = self.db.snapshot()
            try:
                segment.sample = sample_store(candidate, self.db, attempt)
                segment.store = candidate
                if seam_values is not None:
                    COVERAGE.hit("witness:seam_pin")
                    segment.forced = forced
                self._absorb_refined_bindings(segment, candidate)
                return
            except SamplingError as exc:
                failures.append(str(exc))
                self.db.restore(snapshot)
        raise _Fail(
            f"segment [{segment.start}..{segment.end}] admits no concrete "
            f"realization: {failures[-1] if failures else 'no candidates'}"
        )

    def _absorb_refined_bindings(
        self, segment: _Segment, store: ConstraintStore
    ) -> None:
        """Bindings introduced by the next-pre refinement must reach the
        segment's valuations: a variable left unconstrained by the segment's
        own stores (services reassign non-input variables freely) may be
        equated to a value by the *next* service's pre-condition, and
        defaulting it to null would make the replayed pre-condition fail.
        Such a variable was never rebound inside the segment (a child-return
        overwrite always leaves a store binding), so its refined node applies
        to every position of the segment."""
        last = segment.records[-1]
        for variable in self.task.variables:
            if variable in last:
                continue
            node = store.binding_of(variable)
            if node is not None:
                for record in segment.records:
                    record.setdefault(variable, node)

    def _sample_with_sets(
        self,
        segment: _Segment,
        positions: list[_Position],
        valuations: list[dict[Variable, object]],
        pins: dict,
        current_set: frozenset[SetTuple],
        is_anchor: bool,
        seam_values: Mapping[Variable, object] | None = None,
    ) -> frozenset[SetTuple]:
        """Sample the segment; when its leading internal service retrieves
        from the artifact relation, pin ``s̄`` to each stored tuple in turn
        until one realization works."""
        if is_anchor and segment.sample is not None:
            return current_set
        lead = positions[segment.start]
        retrieves = False
        if lead.tag is not None and lead.service.is_internal:
            service = self.task.service(lead.service.name)
            retrieves = service.update.retrieves and self.task.has_set
        if not retrieves:
            self._sample_segment(segment, positions, pins, seam_values)
            return current_set
        # candidate pool: current contents plus (for BOTH) the tuple being
        # inserted, which is the previous position's s̄ value
        pool = set(current_set)
        service = self.task.service(lead.service.name)
        if service.update.inserts:
            previous = valuations[segment.start - 1]
            pool.add(tuple(previous[v] for v in self.task.set_variables))
        errors: list[str] = []
        record = segment.records[0]
        for candidate_tuple in sorted(pool, key=repr):
            attempt = dict(pins)
            ok = True
            for variable, value in zip(self.task.set_variables, candidate_tuple):
                node = record.get(variable)
                if node is None:
                    ok = value == _default(variable)
                    if not ok:
                        break
                else:
                    attempt[node] = value
            if not ok:
                continue
            try:
                self._sample_segment(segment, positions, attempt, seam_values)
                return current_set
            except _Fail as exc:
                errors.append(exc.reason)
        raise _Fail(
            "retrieval cannot be matched to any stored tuple"
            + (f" ({errors[-1]})" if errors else "")
        )

    def _update_sets(
        self,
        segment: _Segment,
        positions: list[_Position],
        valuations: list[dict[Variable, object]],
        set_contents: list[frozenset[SetTuple]],
        current_set: frozenset[SetTuple],
    ) -> frozenset[SetTuple]:
        for index in range(segment.start, segment.end + 1):
            position = positions[index]
            if (
                index > 0
                and position.service.is_internal
                and self.task.has_set
            ):
                service = self.task.service(position.service.name)
                inserted = tuple(
                    valuations[index - 1][v] for v in self.task.set_variables
                )
                retrieved = tuple(
                    valuations[index][v] for v in self.task.set_variables
                )
                updated = apply_set_update(
                    service.update, current_set, inserted, retrieved
                )
                if updated is None:
                    raise _Fail(
                        f"step {index}: retrieved tuple {retrieved!r} was never "
                        f"stored (ω-accelerated counter, or a retrieval leading "
                        f"the anchor segment, which is sampled unpinned)"
                    )
                current_set = updated
            set_contents[index] = current_set
        return current_set


def materialize(
    has: HAS, result: VerificationResult
) -> tuple[DatabaseBuilder, list[ConcreteStep], int | None, list[str]] | NonConcretizable:
    """Concretize a VIOLATED result's symbolic trace.

    Returns ``(db_builder, steps, loop_start, notes)`` on success, or a
    :class:`NonConcretizable` explaining what stood in the way.
    """
    trace = result.symbolic_trace
    kind = result.witness_kind
    if result.holds:
        raise ValueError("cannot materialize a witness for a held property")
    if trace is None:
        return NonConcretizable(
            "no symbolic trace attached (result crossed a process or "
            "serialization boundary)",
            property_name=result.property_name,
            kind=kind,
        )
    materializer = Materializer(has, trace)
    try:
        db, steps, loop_start = materializer.run()
    except _Fail as exc:
        return NonConcretizable(
            exc.reason, property_name=result.property_name, kind=kind
        )
    except SamplingError as exc:
        return NonConcretizable(
            str(exc), property_name=result.property_name, kind=kind
        )
    return db, steps, loop_start, materializer.notes
