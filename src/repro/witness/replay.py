"""Replay validation: confirm a concrete witness independently.

Two checks, both deliberately *outside* the symbolic machinery that
produced the witness:

1. **Concrete semantics** — the materialized run is driven through
   :func:`repro.runtime.simulator.replay_root_run`, which validates every
   transition against the Definition 8/9 checkers (pre/post conditions
   evaluated on the concrete database, input preservation, artifact-
   relation bookkeeping, segment discipline).  For lassos the loop seam
   is additionally checked for exact state periodicity.

2. **Reference LTL semantics** — the run's word (one letter per instant,
   propositions evaluated concretely) must satisfy the *negated* property
   under the textbook evaluators: :func:`holds_finite` for blocking
   witnesses, :func:`holds_infinite_lasso` for lassos.

Child-task propositions ``[ψ]_Tc`` are the one assumption a root-level
replay cannot discharge: their letter values come from the β guessed
against the memoized child summary, and are reported as such.
"""

from __future__ import annotations

from repro.errors import RunError
from repro.fuzz.coverage import COVERAGE
from repro.has.system import HAS
from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    ServiceProp,
)
from repro.ltl.formulas import (
    Letter,
    NotF,
    holds_finite,
    holds_infinite_lasso,
    propositions,
)
from repro.runtime.simulator import replay_root_run
from repro.runtime.state import TaskState
from repro.witness.trace import ConcreteStep, ConcreteWitness


def build_word(
    prop: HLTLProperty, steps: list[ConcreteStep], db
) -> list[Letter]:
    """One letter per step: conditions evaluated on the concrete state and
    database, service observations from the step's service, child
    propositions from the guessed β recorded at the opening."""
    payloads = propositions(prop.root.formula)
    word: list[Letter] = []
    for step in steps:
        letter: dict = {}
        for payload in payloads:
            if isinstance(payload, ServiceProp):
                letter[payload] = payload.ref == step.service
            elif isinstance(payload, CondProp):
                letter[payload] = payload.condition.evaluate(db, step.valuation)
            elif isinstance(payload, ChildProp):
                value = False
                if (
                    step.service.is_opening
                    and step.service.task == payload.task
                    and step.child_beta is not None
                ):
                    value = bool(step.child_beta.get(payload.spec, False))
                letter[payload] = value
            else:
                raise RunError(f"unsupported proposition payload {payload!r}")
        word.append(letter)
    return word


def _second_unrolling(
    task, plan, steps: list[ConcreteStep], loop_start: int
):
    """``plan`` extended by one more loop iteration, with artifact-relation
    contents recomputed forward (the prescribed loop states carry the
    *first* iteration's contents, which differ when the loop inserts).

    Returns ``(unrolled_plan, stabilized)`` where ``stabilized`` is True
    when the recomputed contents end where the first iteration ended —
    the induction step making every further unrolling identical; or
    ``(None, False)`` when a retrieval cannot be satisfied."""
    from repro.witness.materialize import apply_set_update

    current = steps[-1].set_contents
    extra = []
    for offset in range(loop_start, len(steps)):
        step = steps[offset]
        if step.service.is_internal and task.has_set:
            service = task.service(step.service.name)
            previous = steps[offset - 1] if offset > loop_start else steps[-1]
            inserted = tuple(previous.valuation[v] for v in task.set_variables)
            retrieved = tuple(step.valuation[v] for v in task.set_variables)
            current = apply_set_update(service.update, current, inserted, retrieved)
            if current is None:
                return None, False
        extra.append(
            (step.service, TaskState(dict(step.valuation), current))
        )
    return plan + extra, current == steps[-1].set_contents


def validate(
    has: HAS,
    prop: HLTLProperty,
    kind: str,
    db,
    steps: list[ConcreteStep],
    loop_start: int | None,
) -> tuple[dict[str, bool], list[str]]:
    """Run both independent checks; returns (checks, failure notes)."""
    checks: dict[str, bool] = {}
    notes: list[str] = []

    # 1. concrete run legality (Definitions 8/9 via the simulator replay)
    plan = [
        (step.service, TaskState(dict(step.valuation), step.set_contents))
        for step in steps
    ]
    try:
        replay_root_run(has, db, plan)
        checks["simulator_replay"] = True
    except RunError as exc:
        checks["simulator_replay"] = False
        notes.append(f"replay rejected the run: {exc}")

    if kind == "blocking":
        # the run is maximal only because of a pending child that never
        # returns: the final instant must have open children, all of them
        # opened under the never-returning (⊥) summary outcome — this
        # mirrors the engine's blocking acceptance and stops minimization
        # from stripping the blocking structure
        open_children: dict[str, ConcreteStep] = {}
        root_name = has.root.name
        for step in steps:
            if step.service.is_opening and step.service.task != root_name:
                open_children[step.service.task] = step
            elif step.service.is_closing and step.service.task != root_name:
                open_children.pop(step.service.task, None)
        shaped = bool(open_children) and all(
            step.assumed_nonreturning for step in open_children.values()
        )
        checks["blocking_shape"] = shaped
        if not shaped:
            notes.append(
                "final instant lacks an open never-returning child "
                "(the finite word would not be maximal)"
            )

    if kind == "lasso":
        if loop_start is None or not 0 < loop_start < len(steps):
            checks["lasso_seam"] = False
            notes.append("lasso witness without a valid loop_start")
        else:
            entry = steps[loop_start - 1]
            exit_ = steps[-1]
            # The valuation must repeat exactly at the seam.  The artifact
            # relation need not: a loop may insert tuples every iteration
            # (the symbolic cycle is a coverability cycle, counters may
            # grow), and since verified properties carry no set atoms the
            # run's word is periodic regardless of S.  What must hold is
            # *stabilization*: replaying the loop once more — with set
            # contents recomputed forward — reaches the same state again,
            # so the run is genuinely ultimately periodic from the second
            # unrolling on.
            periodic = dict(entry.valuation) == dict(exit_.valuation)
            checks["lasso_seam"] = periodic
            if not periodic:
                notes.append(
                    "loop exit valuation differs from loop entry valuation "
                    "(the run is not ultimately periodic)"
                )
            # replaying a second loop unrolling also catches structural
            # bookkeeping the state equality misses (e.g. a child left
            # open across the seam would be reopened while active)
            if periodic:
                unrolled, stabilized = _second_unrolling(
                    has.root, plan, steps, loop_start
                )
                if unrolled is None:
                    checks["loop_unrolling"] = False
                    notes.append(
                        "second loop unrolling has an unsatisfiable "
                        "artifact-relation retrieval"
                    )
                elif not stabilized:
                    checks["loop_unrolling"] = False
                    notes.append(
                        "artifact relation does not stabilize after one "
                        "extra loop unrolling (the loop is not repeatable)"
                    )
                else:
                    if entry.set_contents != exit_.set_contents:
                        # the artifact relation grew across the seam: the
                        # run is periodic only by the stabilization rule
                        COVERAGE.hit("witness:set_stabilized")
                    try:
                        replay_root_run(has, db, unrolled)
                        checks["loop_unrolling"] = True
                    except RunError as exc:
                        checks["loop_unrolling"] = False
                        notes.append(f"second loop unrolling is illegal: {exc}")

    # 2. reference LTL evaluation of the negated property
    word = build_word(prop, steps, db)
    negated = NotF(prop.root.formula)
    if kind == "lasso" and loop_start is not None and 0 < loop_start < len(steps):
        prefix, loop = word[:loop_start], word[loop_start:]
        violates = holds_infinite_lasso(negated, prefix, loop)
        original = holds_infinite_lasso(prop.root.formula, prefix, loop)
    else:
        violates = holds_finite(negated, word)
        original = holds_finite(prop.root.formula, word)
    checks["ltl_reference"] = bool(violates) and not original
    if not violates:
        notes.append("reference LTL evaluator does not confirm ¬ξ on the run")
    if any(step.assumed_nonreturning or step.child_beta for step in steps):
        notes.append(
            "child-task formulas are discharged against memoized child "
            "summaries (β guesses), not explicit child runs"
        )
    return checks, notes


def revalidate(has: HAS, prop: HLTLProperty, witness: ConcreteWitness) -> bool:
    """Full re-check of an (edited) witness; used by minimization."""
    checks, _notes = validate(
        has, prop, witness.kind, witness.database, witness.steps, witness.loop_start
    )
    witness.checks = checks
    return all(checks.values())
