"""Trace minimization: delta-debugging a confirmed concrete witness.

Three reduction passes, each validated by the full replay pipeline
(concrete transition legality **and** reference LTL violation), so every
accepted edit preserves the counterexample property:

* **step dropping** — remove contiguous chunks of steps (largest first,
  then smaller), which subsumes stutter-merging since internal services
  re-derive their successor state from scratch;
* **value shrinking** — rewrite sampled numeric values toward zero
  (0, then ±1), applied consistently across valuations, the database,
  and artifact-relation tuples;
* **row pruning** — drop database rows the run never touches.

Minimization only ever removes or simplifies, so the result is never
longer than the raw symbolic path.
"""

from __future__ import annotations

from fractions import Fraction

import time

from repro.database.instance import DatabaseInstance, Identifier
from repro.errors import InstanceError
from repro.fuzz.coverage import COVERAGE
from repro.has.system import HAS
from repro.hltl.formulas import HLTLProperty
from repro.witness.materialize import apply_set_update
from repro.witness.replay import revalidate
from repro.witness.trace import ConcreteStep, ConcreteWitness

#: Upper bound on accepted shrink edits (defensive, not usually reached).
_MAX_EDITS = 200


def _expired(deadline: float | None) -> bool:
    return deadline is not None and time.monotonic() > deadline


def _recompute_sets(task, steps: list[ConcreteStep]) -> list | None:
    """Artifact-relation contents implied by the (edited) step list, or
    None when a retrieval no longer has its tuple."""
    current: frozenset = frozenset()
    out = []
    for i, step in enumerate(steps):
        if i > 0 and step.service.is_internal and task.has_set:
            service = task.service(step.service.name)
            inserted = tuple(steps[i - 1].valuation[v] for v in task.set_variables)
            retrieved = tuple(step.valuation[v] for v in task.set_variables)
            updated = apply_set_update(service.update, current, inserted, retrieved)
            if updated is None:
                return None
            current = updated
        out.append(current)
    return out


def _renumbered(task, steps: list[ConcreteStep], db, kind, prop_name, loop_start, raw):
    sets = _recompute_sets(task, steps)
    if sets is None:
        return None
    rebuilt = [
        ConcreteStep(
            index=i,
            service=s.service,
            valuation=dict(s.valuation),
            set_contents=sets[i],
            child_beta=s.child_beta,
            assumed_nonreturning=s.assumed_nonreturning,
        )
        for i, s in enumerate(steps)
    ]
    return ConcreteWitness(
        kind=kind,
        property_name=prop_name,
        database=db,
        steps=rebuilt,
        loop_start=loop_start,
        raw_length=raw,
    )


def _drop_chunks(
    has: HAS,
    prop: HLTLProperty,
    witness: ConcreteWitness,
    deadline: float | None = None,
) -> ConcreteWitness:
    task = has.root
    current = witness
    size = max(1, len(current.steps) // 2)
    while size >= 1 and not _expired(deadline):
        shrunk = False
        start = 1  # the opening instant is structural
        while start + size <= len(current.steps) and not _expired(deadline):
            loop_start = current.loop_start
            if loop_start is not None:
                in_prefix = start + size <= loop_start
                in_loop = start >= loop_start and size < len(current.steps) - loop_start
                if not (in_prefix or in_loop):
                    start += 1
                    continue
                new_loop = loop_start - (size if in_prefix else 0)
            else:
                new_loop = None
            steps = current.steps[:start] + current.steps[start + size:]
            candidate = _renumbered(
                task, steps, current.database, current.kind,
                current.property_name, new_loop, current.raw_length,
            )
            if candidate is not None and revalidate(has, prop, candidate):
                COVERAGE.hit("witness:shrink:chunk")
                current = candidate
                shrunk = True
                # same start index now names the next chunk
            else:
                start += 1
        if not shrunk:
            size //= 2
        elif size > len(current.steps):
            size = max(1, len(current.steps) // 2)
    return current


def _rebuild_database(db: DatabaseInstance, substitute, keep=None) -> DatabaseInstance | None:
    out = DatabaseInstance(db.schema)
    try:
        for relation in db.schema:
            for row in db.rows(relation.name):
                ident = row[0]
                if keep is not None and ident not in keep:
                    continue
                values = [substitute(v) for v in row[1:]]
                out.add(relation.name, ident, *values)
        out.validate()
    except InstanceError:
        return None
    return out


def _substituted(witness: ConcreteWitness, old: Fraction, new: Fraction):
    def sub(value):
        if not isinstance(value, Identifier) and value is not None:
            if Fraction(value) == old:
                return new
        return value

    db = _rebuild_database(witness.database, sub)
    if db is None:
        return None
    steps = [
        ConcreteStep(
            index=s.index,
            service=s.service,
            valuation={v: sub(val) for v, val in s.valuation.items()},
            set_contents=frozenset(
                tuple(sub(v) for v in tup) for tup in s.set_contents
            ),
            child_beta=s.child_beta,
            assumed_nonreturning=s.assumed_nonreturning,
        )
        for s in witness.steps
    ]
    return ConcreteWitness(
        kind=witness.kind,
        property_name=witness.property_name,
        database=db,
        steps=steps,
        loop_start=witness.loop_start,
        raw_length=witness.raw_length,
    )


def _numeric_values(witness: ConcreteWitness) -> set[Fraction]:
    values: set[Fraction] = set()
    for step in witness.steps:
        for value in step.valuation.values():
            if value is not None and not isinstance(value, Identifier):
                values.add(Fraction(value))
    for relation in witness.database.schema:
        for row in witness.database.rows(relation.name):
            for value in row[1:]:
                if value is not None and not isinstance(value, Identifier):
                    values.add(Fraction(value))
    return values


def _shrink_one(
    has: HAS,
    prop: HLTLProperty,
    witness: ConcreteWitness,
    value: Fraction,
    deadline: float | None = None,
) -> ConcreteWitness | None:
    """The witness with ``value`` rewritten as close to zero as replay
    allows: 0 and ±1 first, then the truncation toward zero, then an
    integer bisection for the smallest surviving magnitude."""

    def attempt(target: Fraction) -> ConcreteWitness | None:
        if target == value:
            return None
        candidate = _substituted(witness, value, target)
        if candidate is not None and revalidate(has, prop, candidate):
            return candidate
        return None

    sign = 1 if value > 0 else -1
    for target in (Fraction(0), Fraction(sign)):
        shrunk = attempt(target)
        if shrunk is not None:
            return shrunk
    truncated = Fraction(int(value))  # toward zero
    best: tuple[Fraction, ConcreteWitness] | None = None
    if truncated != value and abs(truncated) >= 1:
        shrunk = attempt(truncated)
        if shrunk is not None:
            best = (truncated, shrunk)
    # smallest passing integer magnitude in [2, hi)
    hi = int(abs(best[0] if best else value))
    lo = 2
    probes = 0
    while lo < hi and probes < 24 and not _expired(deadline):
        probes += 1
        mid = (lo + hi) // 2
        shrunk = attempt(Fraction(sign * mid))
        if shrunk is not None:
            best = (Fraction(sign * mid), shrunk)
            hi = mid
        else:
            lo = mid + 1
    return best[1] if best else None


def _shrink_values(
    has: HAS,
    prop: HLTLProperty,
    witness: ConcreteWitness,
    deadline: float | None = None,
) -> ConcreteWitness:
    current = witness
    edits = 0
    progress = True
    while progress and edits < _MAX_EDITS and not _expired(deadline):
        progress = False
        for value in sorted(_numeric_values(current), key=lambda v: (-abs(v), v)):
            if value == 0 or abs(value) == 1:
                continue
            shrunk = _shrink_one(has, prop, current, value, deadline)
            if shrunk is not None:
                COVERAGE.hit("witness:shrink:numeric")
                current = shrunk
                progress = True
                edits += 1
                break
    return current


def _prune_rows(
    has: HAS,
    prop: HLTLProperty,
    witness: ConcreteWitness,
    deadline: float | None = None,
) -> ConcreteWitness:
    current = witness
    identity = lambda v: v  # noqa: E731
    for relation in current.database.schema:
        for row in sorted(current.database.rows(relation.name), key=repr):
            if _expired(deadline):
                return current
            ident = row[0]
            referenced = any(
                value == ident
                for step in current.steps
                for value in step.valuation.values()
            ) or any(
                value == ident
                for step in current.steps
                for tup in step.set_contents
                for value in tup
            )
            if referenced:
                continue
            keep = {
                r[0]
                for rel in current.database.schema
                for r in current.database.rows(rel.name)
            } - {ident}
            db = _rebuild_database(current.database, identity, keep)
            if db is None:
                continue
            candidate = ConcreteWitness(
                kind=current.kind,
                property_name=current.property_name,
                database=db,
                steps=current.steps,
                loop_start=current.loop_start,
                raw_length=current.raw_length,
            )
            if revalidate(has, prop, candidate):
                COVERAGE.hit("witness:shrink:rows")
                current = candidate
    return current


def minimize(
    has: HAS,
    prop: HLTLProperty,
    witness: ConcreteWitness,
    deadline: float | None = None,
) -> ConcreteWitness:
    """Shrink a confirmed witness while replay still confirms it.

    ``deadline`` (a ``time.monotonic()`` instant) bounds the work: each
    pass stops accepting candidates once it passes, returning the best
    witness found so far — which is always still validated."""
    current = _drop_chunks(has, prop, witness, deadline)
    current = _shrink_values(has, prop, current, deadline)
    current = _prune_rows(has, prop, current, deadline)
    revalidate(has, prop, current)
    return current
