"""RB-VASS: VASS with reset arcs and bounded lossiness (Appendix B.3).

The undecidability of LTL(-FO) over HAS (Theorem 11) is proved by
reduction from repeated state reachability of RB-VASS with lossiness
bound 1 [Mayr 2003].  This module gives RB-VASS an executable semantics
(used to sanity-check the Theorem-11 construction on small instances).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

State = Hashable
RESET = "r"  # action component: reset the counter to 0


@dataclass(frozen=True)
class RBAction:
    """``(p, ā, q)`` with ā ∈ {−1, +1, r}^d."""

    source: State
    delta: tuple  # entries: -1 | +1 | RESET
    target: State


@dataclass
class RBVASS:
    """Reset VASS with lossiness bound 1: after applying an action, each
    non-reset counter may additionally drop by one, nondeterministically."""

    dimension: int
    states: set[State] = field(default_factory=set)
    actions: list[RBAction] = field(default_factory=list)

    def add_action(self, source: State, delta: Sequence, target: State) -> RBAction:
        if len(delta) != self.dimension:
            raise ValueError("bad action dimension")
        for entry in delta:
            if entry not in (-1, 1, RESET):
                raise ValueError(f"bad action entry {entry!r}")
        action = RBAction(source, tuple(delta), target)
        self.states.add(source)
        self.states.add(target)
        self.actions.append(action)
        return action

    def successors(
        self, state: State, counters: tuple[int, ...]
    ) -> Iterator[tuple[State, tuple[int, ...]]]:
        """All successor configurations (lossiness included)."""
        for action in self.actions:
            if action.source != state:
                continue
            base: list[int | None] = []
            feasible = True
            loss_positions: list[int] = []
            for index, entry in enumerate(action.delta):
                if entry == RESET:
                    base.append(0)
                    continue
                value = counters[index] + entry
                if value < 0:
                    feasible = False
                    break
                base.append(value)
                loss_positions.append(index)
            if not feasible:
                continue
            # lossiness bound 1: each non-reset counter may drop by one more
            droppable = [i for i in loss_positions if base[i] > 0]
            for drop_set in _subsets(droppable):
                result = list(base)
                for index in drop_set:
                    result[index] -= 1
                yield action.target, tuple(result)  # type: ignore[arg-type]

    def repeated_reachable_bounded(
        self, start: State, target: State, counter_cap: int, max_steps: int = 100_000
    ) -> bool:
        """Semi-decision: is there a run visiting ``target`` twice with a
        non-decreasing counter vector, exploring counters up to a cap?

        The general problem is undecidable (that is the point of Theorem
        11); the bounded search is used only to sanity-check instances.
        """
        seen: set[tuple[State, tuple[int, ...]]] = set()
        zero = tuple([0] * self.dimension)
        stack: list[tuple[State, tuple[int, ...], list]] = [(start, zero, [])]
        steps = 0
        while stack and steps < max_steps:
            steps += 1
            state, counters, visits = stack.pop()
            if state == target:
                for earlier in visits:
                    if all(a <= b for a, b in zip(earlier, counters)):
                        return True
                visits = visits + [counters]
            key = (state, counters)
            if key in seen:
                continue
            seen.add(key)
            for next_state, next_counters in self.successors(state, counters):
                if all(value <= counter_cap for value in next_counters):
                    stack.append((next_state, next_counters, visits))
        return False


def _subsets(items: list[int]) -> Iterator[tuple[int, ...]]:
    for size in range(len(items) + 1):
        yield from itertools.combinations(items, size)
