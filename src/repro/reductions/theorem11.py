"""The Theorem 11 construction (Appendix B.3, Figure 2): from an RB-VASS
``(Q, A)`` and states (q0, qf), build a HAS Γ and an LTL formula Φ over Σ
such that qf is repeatedly reachable iff some global run of Γ satisfies Φ.

The HAS (Figure 2):

* root task T1 with children P0, P1 … Pd;
* P0 holds a numeric variable ``s`` (the RB-VASS state) with one service
  σ_q per state q;
* each Pi (i ≥ 1) has one no-op service σ_ri (the *reset* signal) and a
  child Ci with an artifact relation Si whose size encodes counter i —
  services σ+_i / σ−_i insert/retrieve, and closing/reopening Ci resets
  Si to ∅ (the paper's encoding of reset arcs; the ±1 lossiness comes
  from insertion collisions and double retrievals).

Φ forces the services of sibling tasks to follow the action structure of
the RB-VASS — a *cross-sibling* coordination that HLTL-FO deliberately
cannot express, which is the heart of the undecidability argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.database.schema import DatabaseSchema, Relation
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.services import SetUpdate
from repro.hltl.formulas import CondProp, ServiceProp
from repro.hltl.ltlfo import LTLFOProperty
from repro.logic.conditions import Eq, TRUE
from repro.logic.terms import Const, id_var, num_var
from repro.ltl.formulas import (
    Always,
    AndF,
    Eventually,
    Formula,
    Next,
    OrF,
    Prop,
    TrueF,
)
from repro.reductions.rb_vass import RBVASS, RESET
from repro.runtime import labels


@dataclass
class Theorem11Artifacts:
    """The output of the construction: the HAS and the LTL property."""

    has: HAS
    formula: LTLFOProperty
    state_index: dict  # RB-VASS state -> numeric constant


def theorem11_construction(
    rb: RBVASS, q0, qf
) -> Theorem11Artifacts:
    """Build (Γ, Φ) per Lemma 25."""
    schema = DatabaseSchema((Relation("R", ()),))
    state_index = {state: i for i, state in enumerate(sorted(rb.states, key=repr))}

    # P0: the state holder
    s_var = num_var("p0_s")
    state_services = tuple(
        InternalService(
            f"sigma_{state_index[state]}",
            pre=TRUE,
            post=Eq(s_var, Const(state_index[state])),
        )
        for state in sorted(rb.states, key=repr)
    )
    p0 = Task(
        name="P0",
        variables=(s_var,),
        services=state_services,
        opening=OpeningService(pre=TRUE, input_map={}),
        closing=ClosingService(),
    )

    counter_tasks = []
    for index in range(rb.dimension):
        x = id_var(f"c{index}_x")
        insert = InternalService(
            f"plus_{index}", pre=TRUE, post=TRUE, update=SetUpdate.INSERT
        )
        retrieve = InternalService(
            f"minus_{index}", pre=TRUE, post=TRUE, update=SetUpdate.RETRIEVE
        )
        c_task = Task(
            name=f"C{index}",
            variables=(x,),
            set_variables=(x,),
            services=(insert, retrieve),
            opening=OpeningService(pre=TRUE, input_map={}),
            closing=ClosingService(pre=TRUE, output_map={}),
        )
        reset = InternalService(f"reset_{index}", pre=TRUE, post=TRUE)
        p_task = Task(
            name=f"P{index + 1}",
            variables=(num_var(f"p{index + 1}_pad"),),
            services=(reset,),
            opening=OpeningService(pre=TRUE, input_map={}),
            closing=ClosingService(),
            children=(c_task,),
        )
        counter_tasks.append(p_task)

    root = Task(
        name="T1",
        variables=(num_var("t1_pad"),),
        services=(),
        opening=OpeningService(),
        closing=ClosingService(),
        children=(p0,) + tuple(counter_tasks),
    )
    has = HAS(schema, root, name="theorem11")

    formula = _build_formula(rb, has, state_index, qf)
    return Theorem11Artifacts(has, formula, state_index)


def _sigma(state_index: dict, state) -> Formula:
    return Prop(ServiceProp(labels.internal("P0", f"sigma_{state_index[state]}")))


def _build_formula(rb: RBVASS, has: HAS, state_index: dict, qf) -> LTLFOProperty:
    """Φ = Φ_init ∧ ⋀_p G(σ_p → ⋁_{α∈α(p)} ϕ(α)) ∧ G F σ_qf."""

    def phi_action(action) -> Formula:
        # φ_{d+1} = X σ_q ; compose down from dimension d to 1
        current: Formula = Next(_sigma(state_index, action.target))
        for index in range(rb.dimension - 1, -1, -1):
            entry = action.delta[index]
            plus = Prop(ServiceProp(labels.internal(f"C{index}", f"plus_{index}")))
            minus = Prop(ServiceProp(labels.internal(f"C{index}", f"minus_{index}")))
            reset = Prop(ServiceProp(labels.internal(f"P{index + 1}", f"reset_{index}")))
            close_c = Prop(ServiceProp(labels.closing(f"C{index}")))
            open_c = Prop(ServiceProp(labels.opening(f"C{index}")))
            if entry == 1:
                current = AndF(plus, Next(current))
            elif entry == -1:
                once = AndF(minus, Next(current))
                twice = AndF(minus, Next(AndF(minus, Next(current))))
                current = OrF(once, twice)
            else:  # RESET: close C_i, signal, reopen
                current = AndF(
                    close_c, Next(AndF(reset, Next(AndF(open_c, Next(current)))))
                )
        return Next(current)

    conjuncts: list[Formula] = []
    # Φ_init: all tasks opened, then some σ_q0 — abstracted as "eventually
    # a state service fires" with the first being q0
    init = Eventually(
        OrF(*(_sigma(state_index, s) for s in sorted(rb.states, key=repr)))
    )
    conjuncts.append(init)
    for state in sorted(rb.states, key=repr):
        outgoing = [a for a in rb.actions if a.source == state]
        body: Formula = (
            OrF(*(phi_action(a) for a in outgoing)) if outgoing else TrueF()
        )
        conjuncts.append(Always(_sigma(state_index, state).implies(body)))
    conjuncts.append(Always(Eventually(_sigma(state_index, qf))))
    formula = AndF(*conjuncts)
    return LTLFOProperty(formula, task_of={})


def formula_size(formula: Formula) -> int:
    """Node count of an LTL formula (the scaling measure of experiment F2)."""
    from repro.ltl.formulas import NotF, Release, Until

    if isinstance(formula, (Prop, TrueF)):
        return 1
    if isinstance(formula, (AndF, OrF)):
        return 1 + sum(formula_size(p) for p in formula.parts)
    if isinstance(formula, (Next, NotF)):
        return 1 + formula_size(formula.body)
    if isinstance(formula, (Until, Release)):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    return 1
