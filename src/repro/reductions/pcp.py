"""Post's Correspondence Problem instances (Theorem 24's reduction source).

A PCP instance is a list of pairs (uᵢ, vᵢ) of words; a *solution* is a
non-empty index sequence i₁…iₖ with u_{i₁}…u_{iₖ} = v_{i₁}…v_{iₖ}.
The problem is undecidable [Post 1947]; Theorem 24 reduces it to
verification of HAS with any one of the eight restrictions lifted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class PCPInstance:
    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("PCP instances need at least one pair")
        for u, v in self.pairs:
            if not (u or v):
                raise ValueError("pairs cannot both be empty")

    def apply(self, indices: Sequence[int]) -> tuple[str, str]:
        top = "".join(self.pairs[i][0] for i in indices)
        bottom = "".join(self.pairs[i][1] for i in indices)
        return top, bottom

    def is_solution(self, indices: Sequence[int]) -> bool:
        if not indices:
            return False
        top, bottom = self.apply(indices)
        return top == bottom

    @property
    def alphabet(self) -> frozenset[str]:
        letters: set[str] = set()
        for u, v in self.pairs:
            letters.update(u)
            letters.update(v)
        return frozenset(letters)


def solve_pcp_bounded(
    instance: PCPInstance, max_length: int
) -> tuple[int, ...] | None:
    """Breadth-first search for a solution up to ``max_length`` indices.

    PCP is undecidable in general; the bounded solver exists to label the
    generated HAS instances (solvable / not within the bound) in tests and
    benchmarks.  Prunes by prefix compatibility.
    """
    # state: the outstanding difference (suffix of the longer word, +side)
    start = ("", 0)  # (difference, +1 top ahead / -1 bottom ahead / 0 equal)
    frontier: list[tuple[str, int, tuple[int, ...]]] = [("", 0, ())]
    seen: set[tuple[str, int]] = {start}
    while frontier:
        next_frontier: list[tuple[str, int, tuple[int, ...]]] = []
        for difference, side, indices in frontier:
            if len(indices) >= max_length:
                continue
            for index, (u, v) in enumerate(instance.pairs):
                top = (difference if side > 0 else "") + u
                bottom = (difference if side < 0 else "") + v
                if top.startswith(bottom):
                    new_diff, new_side = top[len(bottom):], 1
                elif bottom.startswith(top):
                    new_diff, new_side = bottom[len(top):], -1
                else:
                    continue
                new_indices = indices + (index,)
                if not new_diff:
                    return new_indices
                key = (new_diff, new_side)
                if key not in seen:
                    seen.add(key)
                    next_frontier.append((new_diff, new_side, new_indices))
        frontier = next_frontier
    return None


def classic_unsolvable() -> PCPInstance:
    """A small instance with no solution (length mismatch invariant)."""
    return PCPInstance((("ab", "abb"), ("b", "bb")))


def classic_solvable() -> PCPInstance:
    """The textbook solvable instance: solution (2, 1, 3) → bba|ab|aa... .

    pairs: (a, baa), (ab, aa), (bba, bb); solution [3,2,3,1] 1-indexed.
    """
    return PCPInstance((("a", "baa"), ("ab", "aa"), ("bba", "bb")))
