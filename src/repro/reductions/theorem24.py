"""Theorem 24: lifting any of the eight restrictions is undecidable.

The proofs reduce PCP to verification of ``HAS(i)`` — HAS with restriction
``i`` lifted.  This module makes the reductions *tangible*:

* :func:`lifted_restriction_systems` documents, for every restriction,
  what the lifted model would allow and how a PCP instance is encoded
  (the chain-extraction idea sketched in Appendix E);
* for restriction (2) — the one the paper sketches in detail — we build
  the *database layout* of the encoding explicitly: a linked list of
  cells spelling a candidate PCP solution, which a HAS(2) could traverse
  by repeatedly overwriting non-null parent variables;
* the strict validator (``repro.has.restrictions``) rejects restriction-3
  violations statically, and the runtime checkers reject runs violating
  the semantic restrictions, which the tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.database.instance import DatabaseInstance, Identifier
from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.reductions.pcp import PCPInstance

RESTRICTIONS = {
    1: "internal transitions propagate only the task's input parameters",
    2: "returns overwrite only null parent ID variables",
    3: "returned parent variables are disjoint from the parent's inputs",
    4: "internal transitions require all active subtasks to have returned",
    5: "each task has exactly one artifact relation",
    6: "the artifact relation is reset to empty when the task closes",
    7: "the inserted/retrieved tuple is the fixed s̄^T",
    8: "each subtask is called at most once between internal transitions",
}


@dataclass(frozen=True)
class LiftedRestriction:
    """Description of one HAS(i) reduction."""

    index: int
    restriction: str
    mechanism: str
    uses_arithmetic: bool


def lifted_restriction_systems() -> tuple[LiftedRestriction, ...]:
    """The per-restriction reduction mechanisms (Section 6 / Appendix E)."""
    return (
        LiftedRestriction(
            1,
            RESTRICTIONS[1],
            "propagating a non-input cursor variable across internal "
            "transitions walks an unbounded FK chain; the chain's labels "
            "spell a PCP solution",
            False,
        ),
        LiftedRestriction(
            2,
            RESTRICTIONS[2],
            "a child called repeatedly overwrites the parent's non-null "
            "cursor with the next cell of the chain (Appendix E) — "
            "unbounded data flow through a single variable",
            False,
        ),
        LiftedRestriction(
            3,
            RESTRICTIONS[3],
            "returning into the parent's inputs lets the next call see a "
            "moved cursor, same chain walk",
            False,
        ),
        LiftedRestriction(
            4,
            RESTRICTIONS[4],
            "interleaving internal transitions with an active child leaks "
            "intermediate cursors between the two, composing two walks",
            False,
        ),
        LiftedRestriction(
            5,
            RESTRICTIONS[5],
            "two artifact relations implement a queue (two stacks), i.e. a "
            "Turing tape",
            False,
        ),
        LiftedRestriction(
            6,
            RESTRICTIONS[6],
            "a persistent artifact relation carries unbounded state across "
            "repeated child invocations",
            False,
        ),
        LiftedRestriction(
            7,
            RESTRICTIONS[7],
            "inserting varying tuples encodes position-indexed chain cells",
            False,
        ),
        LiftedRestriction(
            8,
            RESTRICTIONS[8],
            "unboundedly many child calls per segment, with numeric "
            "accumulation across calls, count matched word lengths — the "
            "only reduction needing arithmetic (liftable without numeric "
            "variables at no cost, as the paper notes)",
            True,
        ),
    )


def pcp_chain_schema() -> DatabaseSchema:
    """The database layout of the Appendix-E encoding: CELL is a linked
    list whose ``letter``/``pair`` attributes spell a candidate solution."""
    return DatabaseSchema(
        (
            Relation(
                "CELL",
                (
                    numeric("letter"),
                    numeric("pair_index"),
                    numeric("side"),  # 1 = top word u_i, 2 = bottom word v_i
                    foreign_key("next", "CELL"),
                ),
            ),
        )
    )


def encode_candidate(
    instance: PCPInstance, indices: list[int]
) -> DatabaseInstance:
    """A CELL chain spelling the candidate solution ``indices``.

    A HAS(2) (restriction 2 lifted) can walk this chain with a repeatedly
    re-called child task overwriting the parent's cursor, verifying that
    the top and bottom spellings agree — which is exactly how the
    Theorem 24 proof extracts unbounded words from the database.
    """
    letters = sorted(instance.alphabet)
    letter_code = {letter: Fraction(i + 1) for i, letter in enumerate(letters)}
    db = DatabaseInstance(pcp_chain_schema())
    cells: list[tuple[str, Fraction, Fraction, Fraction]] = []
    for position, index in enumerate(indices):
        u, v = instance.pairs[index]
        for offset, letter in enumerate(u):
            cells.append(
                (f"t{position}_{offset}", letter_code[letter], Fraction(index), Fraction(1))
            )
        for offset, letter in enumerate(v):
            cells.append(
                (f"b{position}_{offset}", letter_code[letter], Fraction(index), Fraction(2))
            )
    # link each cell to the next (the last cell points to itself)
    for position, (label, letter, pair, side) in enumerate(cells):
        next_label = cells[position + 1][0] if position + 1 < len(cells) else label
        db.add("CELL", label, letter, pair, side, next_label)
    db.validate()
    return db


def chain_spells_solution(db: DatabaseInstance, instance: PCPInstance) -> bool:
    """Decode the chain back and check the PCP solution condition — the
    check a HAS(2) performs along its walk."""
    letters = sorted(instance.alphabet)
    code_letter = {Fraction(i + 1): letter for i, letter in enumerate(letters)}
    top: list[str] = []
    bottom: list[str] = []
    rows = sorted(db.rows("CELL"), key=lambda r: r[0].label)
    for row in rows:
        _ident, letter, _pair, side, _next = row
        if side == Fraction(1):
            top.append(code_letter[Fraction(letter)])
        else:
            bottom.append(code_letter[Fraction(letter)])
    return bool(top) and top == bottom
