"""Executable reductions: Theorem 11 (RB-VASS → HAS + LTL) and Theorem 24
(PCP → HAS with a lifted restriction)."""

from repro.reductions.rb_vass import RBVASS, RBAction, RESET
from repro.reductions.theorem11 import theorem11_construction, Theorem11Artifacts
from repro.reductions.pcp import PCPInstance, solve_pcp_bounded
from repro.reductions.theorem24 import lifted_restriction_systems, LiftedRestriction

__all__ = [
    "RBVASS",
    "RBAction",
    "RESET",
    "theorem11_construction",
    "Theorem11Artifacts",
    "PCPInstance",
    "solve_pcp_bounded",
    "lifted_restriction_systems",
    "LiftedRestriction",
]
