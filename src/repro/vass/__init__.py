"""Vector Addition Systems with States (Section 4.2).

Provides explicit VASS (for the Theorem-11 machinery and benchmarks) and a
generic Karp–Miller engine over *implicit* VASS — transition systems whose
states and actions are generated lazily, which is how the verifier
explores the per-task systems ``V(T, β)`` without materializing their
astronomically large state spaces.
"""

from repro.vass.vass import VASS, Action
from repro.vass.karp_miller import (
    KMGraph,
    KMNode,
    OMEGA,
    build_km_graph,
    reachable,
    repeated_reachable,
)

__all__ = [
    "VASS",
    "Action",
    "KMGraph",
    "KMNode",
    "OMEGA",
    "build_km_graph",
    "reachable",
    "repeated_reachable",
]
