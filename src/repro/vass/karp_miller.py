"""Karp–Miller coverability over implicit VASS.

The engine works against any object providing

* ``successors(state) -> Iterator[(delta: Mapping[dim, int], next_state,
  tag)]`` — lazily generated actions (``tag`` is caller metadata carried
  into witnesses);

dimensions are arbitrary hashable keys (the verifier uses TS-isomorphism
types) and vectors are sparse mappings; absent dimensions are 0.

Classic Karp–Miller acceleration introduces ω on path-ancestor domination,
guaranteeing termination when the control-state space is finite.  The
resulting *KM graph* (nodes merged on equal labels) answers:

* **state reachability / coverability** — a node satisfying the target
  predicate exists (Lemma 21's returning and blocking paths);
* **repeated state reachability** — an accepting node lies on a cycle of
  the KM graph: non-ω coordinates are exact in KM labels, so any KM cycle
  has zero net effect on them, and ω coordinates are pumpable
  (Habermehl [33], Blockelet–Schmitz [14]) — Lemma 21's lasso paths.

Engineering notes (docs/performance.md): exact duplicate successor edges
are dropped on insertion, and the frontier discipline is pluggable
(:class:`_Frontier` — LIFO reference order, FIFO, or covering-first).
The graph over *labels* is order-independent; the spanning tree, and
with it the witness paths, is not — which is why callers wanting
reproducible witnesses keep the default order.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Protocol

from repro.errors import BudgetExceeded
from repro.fuzz.coverage import COVERAGE
from repro.obs import trace
from repro.obs.attribution import ATTRIBUTION

OMEGA = math.inf

#: Emit a ``km_progress`` trace event every this many expansions (when a
#: trace is active).  Count-based, not time-based, so the trace content
#: stays deterministic for a deterministic exploration.
PROGRESS_EVERY = 1_000
Dim = Hashable
SparseVector = dict[Dim, float]  # values: non-negative ints or OMEGA
FrozenVector = frozenset


class ImplicitVASS(Protocol):
    def successors(
        self, state: Hashable, vector: Mapping[Dim, float]
    ) -> Iterator[tuple[Mapping[Dim, int], Hashable, object]]:
        ...


def freeze(vector: Mapping[Dim, float]) -> FrozenVector:
    return frozenset((k, v) for k, v in vector.items() if v != 0)


def thaw(vector: FrozenVector) -> SparseVector:
    return dict(vector)


def dominates(big: Mapping[Dim, float], small: Mapping[Dim, float]) -> bool:
    """big ≥ small componentwise (missing = 0; ω ≥ everything)."""
    for dim, value in small.items():
        if big.get(dim, 0) < value:
            return False
    return True


@dataclass
class KMNode:
    state: Hashable
    vector: FrozenVector
    payload: object = None
    parent: "KMNode | None" = None
    parent_tag: object = None
    index: int = 0
    depth: int = 0
    successors: list[tuple[object, "KMNode"]] = field(default_factory=list)

    @property
    def label(self) -> tuple:
        return (self.state, self.vector)

    def path_from_root(self) -> list["KMNode"]:
        path: list[KMNode] = []
        node: KMNode | None = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path


@dataclass
class KMGraph:
    roots: list[KMNode]
    nodes: list[KMNode]
    by_label: dict[tuple, KMNode]
    budget_exhausted: bool = False


class _Frontier:
    """The unexpanded-node worklist under one of three disciplines.

    * ``lifo`` — depth-first, the reference order (deterministic, and the
      order every recorded witness in the test suite was produced under);
    * ``fifo`` — breadth-first;
    * ``covering`` — prefer nodes with more ω coordinates, then larger
      finite counter sums, then insertion order.  ω-rich labels dominate
      the most configurations, so expanding them first tends to reach
      covering labels (and further accelerations) earlier, shrinking the
      constructed graph on workloads with deep counter growth.

    All three disciplines build the same *set* of reachable labels when
    run to completion; they differ in which tree — and therefore which
    witness path and which truncation point under a budget — is found
    first.  The verifier keeps ``lifo`` as its default so verdicts and
    witnesses stay reproducible run-over-run (see docs/performance.md).
    """

    __slots__ = ("order", "_items", "_seq")

    def __init__(self, order: str):
        if order not in ("lifo", "fifo", "covering"):
            raise ValueError(f"unknown frontier order {order!r}")
        self.order = order
        # deque for fifo: list.pop(0) would make breadth-first quadratic
        # in the frontier size
        self._items: list | deque = deque() if order == "fifo" else []
        self._seq = 0

    def push(self, node: KMNode) -> None:
        if self.order == "covering":
            vector = node.vector
            omegas = sum(1 for _d, v in vector if v is OMEGA)
            finite = sum(v for _d, v in vector if v is not OMEGA)
            heapq.heappush(self._items, (-omegas, -finite, self._seq, node))
            self._seq += 1
        else:
            self._items.append(node)

    def pop(self) -> KMNode:
        if self.order == "covering":
            return heapq.heappop(self._items)[-1]
        if self.order == "fifo":
            return self._items.popleft()
        return self._items.pop()

    def __bool__(self) -> bool:
        return bool(self._items)

    def __len__(self) -> int:
        return len(self._items)


def build_km_graph(
    system: ImplicitVASS,
    start: Hashable | Iterable[tuple[Hashable, Mapping[Dim, int], object]],
    budget: int = 50_000,
    stop_on: Callable[[KMNode], bool] | None = None,
    order: str = "lifo",
    progress_label: str = "",
) -> KMGraph:
    """Construct the Karp–Miller graph from the start configuration(s).

    ``start`` is either a single control state (counters 0) or an iterable
    of (state, vector, payload) triples.  ``stop_on`` short-circuits the
    construction once a node satisfies it (used for plain reachability).
    ``order`` picks the frontier discipline (:class:`_Frontier`).
    ``progress_label`` names this exploration in the periodic
    ``km_progress`` trace events (one every :data:`PROGRESS_EVERY`
    expansions while a trace is active — the ``--progress`` heartbeat's
    raw feed); it never affects the constructed graph.

    Duplicate successor edges — the same tag leading to the same label
    from the same node, which condition case-splitting produces freely —
    are deduplicated on insertion: they carry no extra reachability,
    cycle, or witness information, and dropping them keeps the stored
    graph (and every traversal over it) proportional to the *distinct*
    transition structure.
    """
    if isinstance(start, (list, tuple)) or hasattr(start, "__next__"):
        starts = list(start)  # type: ignore[arg-type]
    else:
        starts = [(start, {}, None)]
    graph = KMGraph(roots=[], nodes=[], by_label={})
    worklist = _Frontier(order)
    for state, vector, payload in starts:
        node = KMNode(state=state, vector=freeze(vector), payload=payload)
        node.index = len(graph.nodes)
        graph.roots.append(node)
        graph.nodes.append(node)
        label = node.label
        if label not in graph.by_label:
            graph.by_label[label] = node
            worklist.push(node)
        if stop_on is not None and stop_on(node):
            return graph
    expansions = 0
    while worklist:
        node = worklist.pop()
        if expansions >= budget:
            graph.budget_exhausted = True
            COVERAGE.hit("km:budget_box")
            break
        expansions += 1
        ATTRIBUTION.record_expansion(node.parent_tag, node.depth)
        if expansions % PROGRESS_EVERY == 0 and trace.enabled():
            trace.event(
                "km_progress",
                label=progress_label,
                expansions=expansions,
                nodes=len(graph.nodes),
                frontier=len(worklist),
            )
        current = thaw(node.vector)
        seen_edges: set[tuple] = set()
        for delta, next_state, tag in system.successors(node.state, current):
            next_vector = dict(current)
            enabled = True
            for dim, change in delta.items():
                value = next_vector.get(dim, 0)
                if value is OMEGA:
                    continue
                value += change
                if value < 0:
                    enabled = False
                    break
                next_vector[dim] = value
            if not enabled:
                COVERAGE.hit("km:succ_disabled")
                continue
            ATTRIBUTION.record_successor(tag)
            # acceleration against path ancestors
            ancestor = node
            while ancestor is not None:
                if ancestor.state == next_state:
                    avector = thaw(ancestor.vector)
                    if dominates(next_vector, avector) and freeze(next_vector) != ancestor.vector:
                        COVERAGE.hit("km:omega_accel")
                        for dim, value in next_vector.items():
                            if value is not OMEGA and value > avector.get(dim, 0):
                                next_vector[dim] = OMEGA
                        for dim in avector:
                            if next_vector.get(dim, 0) is not OMEGA:
                                if next_vector.get(dim, 0) > avector.get(dim, 0):
                                    next_vector[dim] = OMEGA
                ancestor = ancestor.parent
            label = (next_state, freeze(next_vector))
            existing = graph.by_label.get(label)
            if existing is not None:
                COVERAGE.hit("km:cover_prune")
                edge_key = (tag, existing.index)
                try:
                    duplicate = edge_key in seen_edges
                    if not duplicate:
                        seen_edges.add(edge_key)
                except TypeError:  # unhashable caller tag: keep every edge
                    duplicate = False
                if not duplicate:
                    node.successors.append((tag, existing))
                else:
                    COVERAGE.hit("km:dup_edge")
                continue
            child = KMNode(
                state=next_state,
                vector=label[1],
                payload=None,
                parent=node,
                parent_tag=tag,
                depth=node.depth + 1,
            )
            child.index = len(graph.nodes)
            graph.nodes.append(child)
            graph.by_label[label] = child
            try:
                seen_edges.add((tag, child.index))
            except TypeError:
                pass
            node.successors.append((tag, child))
            worklist.push(child)
            if stop_on is not None and stop_on(child):
                return graph
    return graph


#: Expansions between a scout worker's dominance-pruning rounds (each
#: round drops queued nodes strictly dominated by an already-discovered
#: label of the same state — sound for the scout because it only changes
#: *which* work warms the caches, never the replayed sequential graph).
SCOUT_PRUNE_EVERY = 256

#: Idle-worker backoff while waiting for stealable work (seconds).
_SCOUT_IDLE_SLEEP = 0.0002


@dataclass
class ScoutStats:
    """What one parallel scout pass did (observational only — scout
    output never feeds the verdict; see :func:`scout_km_graph`)."""

    workers: int
    expansions: int = 0
    nodes: int = 0
    steals: int = 0
    prunes: int = 0
    stopped_early: bool = False
    budget_exhausted: bool = False
    per_worker_expansions: list[int] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


def scout_km_graph(
    system: ImplicitVASS,
    start: Hashable | Iterable[tuple[Hashable, Mapping[Dim, int], object]],
    budget: int = 50_000,
    stop_on: Callable[[KMNode], bool] | None = None,
    workers: int = 2,
    progress_label: str = "",
) -> ScoutStats:
    """Work-stealing parallel Karp–Miller *scout*: explore the covering
    set with ``workers`` threads, sharing covering checks through one
    label map, and throw the tree away.

    The scout exists to warm the process-global content-keyed caches
    (FM projections/sat, canonical keys, successor computations) that a
    subsequent *sequential replay* of the same exploration then hits —
    the replay, not the scout, produces the graph, so verdicts and
    witnesses stay byte-identical to sequential output by construction
    (docs/performance.md, "Parallel exploration").  Consequences of
    being observational:

    * workers expand disjoint subtrees from per-worker LIFO deques and
      steal FIFO from the opposite end when idle (oldest → shallowest →
      biggest stolen subtree);
    * the shared label map deduplicates concurrently discovered labels
      (first writer wins; the loser's subtree is simply not re-expanded);
    * every :data:`SCOUT_PRUNE_EVERY` expansions a worker runs a pruning
      round against the global per-state vector index, dropping queued
      nodes strictly dominated by a known label — sound here precisely
      because the scout's tree is discarded;
    * ``stop_on`` and budget exhaustion cancel all workers via a shared
      event;
    * worker exceptions are recorded in ``errors`` and cancel the pass,
      never propagate — a failed scout just means cold caches.

    ω-acceleration runs against path ancestors exactly as in
    :func:`build_km_graph`, so the scout terminates on the same systems
    the sequential construction terminates on.  Progress is reported via
    ``km_progress`` trace events carrying a ``worker`` id.  Coverage and
    attribution hooks at the KM level are deliberately *not* fired from
    the scout (the replay fires them once, keeping observational streams
    close to sequential); hooks inside ``system.successors`` still fire
    on scout threads, which is why the registries they touch must be
    thread-safe (see docs/performance.md's thread-safety audit).
    """
    if workers < 2:
        raise ValueError("scout_km_graph needs workers >= 2; use build_km_graph")
    if isinstance(start, (list, tuple)) or hasattr(start, "__next__"):
        starts = list(start)  # type: ignore[arg-type]
    else:
        starts = [(start, {}, None)]
    stats = ScoutStats(workers=workers, per_worker_expansions=[0] * workers)
    lock = threading.Lock()  # guards by_label / by_state / shared counters
    cancel = threading.Event()
    by_label: dict[tuple, KMNode] = {}
    by_state: dict[Hashable, list[FrozenVector]] = {}
    deques: list[deque] = [deque() for _ in range(workers)]
    shared = {"expansions": 0, "pending": 0}

    for slot, (state, vector, payload) in enumerate(starts):
        node = KMNode(state=state, vector=freeze(vector), payload=payload)
        label = node.label
        if label in by_label:
            continue
        by_label[label] = node
        by_state.setdefault(node.state, []).append(node.vector)
        shared["pending"] += 1
        deques[slot % workers].append(node)
        if stop_on is not None and stop_on(node):
            stats.stopped_early = True
            cancel.set()

    def take(me: int) -> KMNode | None:
        try:
            return deques[me].pop()  # own end: LIFO, depth-first
        except IndexError:
            pass
        for offset in range(1, workers):
            try:
                node = deques[(me + offset) % workers].popleft()  # steal FIFO
            except IndexError:
                continue
            with lock:
                stats.steals += 1
            return node
        return None

    def prune(me: int) -> None:
        """Drop queued nodes strictly dominated by a known same-state
        label (the periodic global pruning round)."""
        kept: list[KMNode] = []
        dropped = 0
        with lock:
            while True:
                try:
                    node = deques[me].pop()
                except IndexError:
                    break
                vector = thaw(node.vector)
                dominated = any(
                    other != node.vector and dominates(thaw(other), vector)
                    for other in by_state.get(node.state, ())
                )
                if dominated:
                    dropped += 1
                    shared["pending"] -= 1
                else:
                    kept.append(node)
            # kept was drained newest-first; restore original order
            deques[me].extend(reversed(kept))
            stats.prunes += dropped

    def work(me: int) -> None:
        since_prune = 0
        while not cancel.is_set():
            node = take(me)
            if node is None:
                with lock:
                    if shared["pending"] == 0:
                        return
                time.sleep(_SCOUT_IDLE_SLEEP)
                continue
            with lock:
                if shared["expansions"] >= budget:
                    stats.budget_exhausted = True
                    shared["pending"] -= 1
                    cancel.set()
                    return
                shared["expansions"] += 1
                stats.per_worker_expansions[me] += 1
            since_prune += 1
            mine = stats.per_worker_expansions[me]
            if mine % PROGRESS_EVERY == 0 and trace.enabled():
                with lock:
                    total, frontier = shared["expansions"], shared["pending"]
                trace.event(
                    "km_progress",
                    label=progress_label,
                    worker=me,
                    expansions=total,
                    nodes=len(by_label),
                    frontier=frontier,
                )
            current = thaw(node.vector)
            for delta, next_state, tag in system.successors(node.state, current):
                if cancel.is_set():
                    break
                next_vector = dict(current)
                enabled = True
                for dim, change in delta.items():
                    value = next_vector.get(dim, 0)
                    if value is OMEGA:
                        continue
                    value += change
                    if value < 0:
                        enabled = False
                        break
                    next_vector[dim] = value
                if not enabled:
                    continue
                # acceleration against path ancestors (as build_km_graph)
                ancestor = node
                while ancestor is not None:
                    if ancestor.state == next_state:
                        avector = thaw(ancestor.vector)
                        if (
                            dominates(next_vector, avector)
                            and freeze(next_vector) != ancestor.vector
                        ):
                            for dim, value in next_vector.items():
                                if value is not OMEGA and value > avector.get(dim, 0):
                                    next_vector[dim] = OMEGA
                            for dim in avector:
                                if next_vector.get(dim, 0) is not OMEGA:
                                    if next_vector.get(dim, 0) > avector.get(dim, 0):
                                        next_vector[dim] = OMEGA
                    ancestor = ancestor.parent
                label = (next_state, freeze(next_vector))
                with lock:
                    if label in by_label:  # covering check: first writer wins
                        continue
                    child = KMNode(
                        state=next_state,
                        vector=label[1],
                        parent=node,
                        parent_tag=tag,
                        depth=node.depth + 1,
                    )
                    child.index = len(by_label)
                    by_label[label] = child
                    by_state.setdefault(next_state, []).append(label[1])
                    shared["pending"] += 1
                deques[me].append(child)
                if stop_on is not None and stop_on(child):
                    stats.stopped_early = True
                    cancel.set()
                    break
            with lock:
                shared["pending"] -= 1
            if since_prune >= SCOUT_PRUNE_EVERY:
                since_prune = 0
                prune(me)

    def run(me: int) -> None:
        try:
            work(me)
        except BaseException as exc:  # cold caches beat a crashed job
            with lock:
                stats.errors.append(f"{type(exc).__name__}: {exc}")
            cancel.set()

    threads = [
        threading.Thread(target=run, args=(k,), name=f"km-scout-{k}", daemon=True)
        for k in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats.expansions = shared["expansions"]
    stats.nodes = len(by_label)
    return stats


def reachable(
    system: ImplicitVASS,
    start,
    target: Callable[[KMNode], bool],
    budget: int = 50_000,
) -> KMNode | None:
    """First KM node satisfying ``target`` (coverability witness), or None.

    Raises :class:`BudgetExceeded` when the budget ran out before the
    construction finished *and* no target was found (the answer would be
    unsound otherwise)."""
    graph = build_km_graph(system, start, budget=budget, stop_on=target)
    for node in graph.nodes:
        if target(node):
            return node
    if graph.budget_exhausted:
        raise BudgetExceeded("Karp–Miller budget exhausted", len(graph.nodes))
    return None


def repeated_reachable(
    system: ImplicitVASS,
    start,
    accepting: Callable[[KMNode], bool],
    budget: int = 50_000,
) -> tuple[KMNode, list[KMNode]] | None:
    """An accepting node on a cycle of the KM graph, with the cycle.

    Returns (node, cycle_nodes) or None; raises BudgetExceeded when the
    graph construction was truncated without an answer.
    """
    from repro.vass.repeated import accepting_cycle

    graph = build_km_graph(system, start, budget=budget)
    found = accepting_cycle(graph, accepting)
    if found is not None:
        return found
    if graph.budget_exhausted:
        raise BudgetExceeded("Karp–Miller budget exhausted", len(graph.nodes))
    return None


def witness_path(node: KMNode) -> list[tuple[object, KMNode]]:
    """The (tag, node) steps from a root to ``node``."""
    steps: list[tuple[object, KMNode]] = []
    current = node
    while current.parent is not None:
        steps.append((current.parent_tag, current))
        current = current.parent
    steps.reverse()
    return steps


def rooted_witness_path(node: KMNode) -> tuple[KMNode, list[tuple[object, KMNode]]]:
    """The start configuration plus the (tag, node) steps reaching ``node``.

    Same steps as :func:`witness_path`, with the root KM node (whose state
    holds the initial symbolic store) returned explicitly — witness
    concretization needs it for the run's first instant."""
    steps = witness_path(node)
    root = steps[0][1].parent if steps else node
    assert root is not None and root.parent is None
    return root, steps
