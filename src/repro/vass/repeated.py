"""Accepting-cycle detection on Karp–Miller graphs (repeated reachability).

Factored out of :func:`repro.vass.karp_miller.repeated_reachable` so the
verifier can reuse a graph it already built for several queries.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.vass.karp_miller import KMGraph, KMNode


def strongly_connected_components(graph: KMGraph) -> list[list[KMNode]]:
    """Tarjan's algorithm, iterative."""
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[KMNode] = []
    counter = [0]
    sccs: list[list[KMNode]] = []

    def strongconnect(root: KMNode) -> None:
        work: list[tuple[KMNode, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index_of[node.index] = counter[0]
                lowlink[node.index] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node.index)
            advanced = False
            while child_idx < len(node.successors):
                _tag, child = node.successors[child_idx]
                child_idx += 1
                if child.index not in index_of:
                    work.append((node, child_idx))
                    work.append((child, 0))
                    advanced = True
                    break
                if child.index in on_stack:
                    lowlink[node.index] = min(
                        lowlink[node.index], index_of[child.index]
                    )
            if advanced:
                continue
            if lowlink[node.index] == index_of[node.index]:
                component: list[KMNode] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member.index)
                    component.append(member)
                    if member is node:
                        break
                sccs.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent.index] = min(
                    lowlink[parent.index], lowlink[node.index]
                )

    for node in graph.nodes:
        if node.index not in index_of:
            strongconnect(node)
    return sccs


def accepting_cycle(
    graph: KMGraph, accepting: Callable[[KMNode], bool]
) -> tuple[KMNode, list[KMNode]] | None:
    """A node satisfying ``accepting`` lying on a cycle, if any.

    Non-ω coordinates are exact in KM labels, so every KM cycle is
    realizable arbitrarily often (ω coordinates are pumpable); an
    accepting node on a cycle therefore witnesses repeated reachability.
    """
    for component in strongly_connected_components(graph):
        members = {n.index for n in component}
        has_cycle = len(component) > 1 or any(
            child.index in members
            for n in component
            for _tag, child in n.successors
        )
        if not has_cycle:
            continue
        for node in component:
            if accepting(node):
                return node, component
    return None


def cycle_path(
    node: KMNode, component: list[KMNode]
) -> list[tuple[object, KMNode]]:
    """An ordered cycle through ``node`` inside its SCC.

    Returns the edge list ``[(tag, target), …]`` of a shortest cycle that
    leaves ``node`` and returns to it (for a self-loop: a single edge).
    :func:`accepting_cycle` reports the SCC as an unordered member list;
    witnesses need the actual edge sequence, which this BFS reconstructs.
    Raises ``ValueError`` when ``node`` lies on no cycle of the component
    (the caller picked a node outside an SCC with a cycle).
    """
    members = {n.index for n in component}
    # BFS over component edges from node's successors back to node
    back: dict[int, tuple[KMNode, object, KMNode]] = {}
    frontier: deque[KMNode] = deque()
    for tag, child in node.successors:
        if child.index not in members:
            continue
        if child is node:
            return [(tag, child)]
        if child.index not in back:
            back[child.index] = (node, tag, child)
            frontier.append(child)
    while frontier:
        current = frontier.popleft()
        for tag, child in current.successors:
            if child.index not in members:
                continue
            if child is node:
                steps: list[tuple[object, KMNode]] = [(tag, child)]
                walk = current
                while walk is not node:
                    source, source_tag, target = back[walk.index]
                    steps.append((source_tag, target))
                    walk = source
                steps.reverse()
                return steps
            if child.index not in back:
                back[child.index] = (current, tag, child)
                frontier.append(child)
    raise ValueError("node lies on no cycle of the given component")
