"""Explicit VASS: finite states, integer action vectors.

A run is a sequence ``(q0, z̄0) … (qn, z̄n)`` with ``z̄0 = 0``, every
``z̄i ∈ ℕ^d``, and each step adding an action vector.  The two decision
problems of Section 4.2 — state reachability and state repeated
reachability — are answered through the Karp–Miller engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

State = Hashable
Vector = tuple[int, ...]


@dataclass(frozen=True)
class Action:
    """``(p, ā, q)``: from state p, add ā, go to state q."""

    source: State
    delta: Vector
    target: State


@dataclass
class VASS:
    """An explicit VASS ``(Q, A)`` of fixed dimension."""

    dimension: int
    states: set[State] = field(default_factory=set)
    actions: list[Action] = field(default_factory=list)

    def add_state(self, state: State) -> State:
        self.states.add(state)
        return state

    def add_action(self, source: State, delta: Sequence[int], target: State) -> Action:
        if len(delta) != self.dimension:
            raise ValueError(
                f"action dimension {len(delta)} != VASS dimension {self.dimension}"
            )
        self.states.add(source)
        self.states.add(target)
        action = Action(source, tuple(int(x) for x in delta), target)
        self.actions.append(action)
        return action

    def outgoing(self, state: State) -> list[Action]:
        return [a for a in self.actions if a.source == state]

    # ------------------------------------------------------------------
    # the implicit-VASS interface used by the Karp–Miller engine
    # ------------------------------------------------------------------
    def initial(self, state: State) -> Iterator[tuple[State, dict[int, int]]]:
        yield state, {}

    def successors(
        self, state: State, vector: Mapping[int, float] | None = None
    ) -> Iterator[tuple[Mapping[int, int], State, object]]:
        for action in self.outgoing(state):
            delta = {
                index: value
                for index, value in enumerate(action.delta)
                if value != 0
            }
            yield delta, action.target, action

    def reachable_states(
        self, start: State, budget: int = 100_000
    ) -> set[State]:
        """All control states coverable from (start, 0̄)."""
        from repro.vass.karp_miller import build_km_graph

        graph = build_km_graph(self, start, budget=budget)
        return {node.state for node in graph.nodes}
