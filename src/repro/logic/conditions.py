"""Quantifier-free FO conditions and their evaluation (Section 2).

A condition is a boolean combination of three atom kinds:

* :class:`Eq` — equality between two terms of the same sort; ``null`` may
  only be compared with ID terms;
* :class:`RelationAtom` — ``R(x, ā)`` over a database relation, arguments
  in the relation's attribute order (ID first); false when any argument is
  null or the identified tuple does not exist / does not match;
* :class:`ArithAtom` — a linear constraint over numeric variables (an atom
  of the interpreted relations ``C``).

:class:`Exists` is supported natively by the verifier for positive
occurrences (bound variables become anonymous symbolic values — the
paper's "simulate ∃FO by adding variables", done internally); the static
desugaring of ``repro.transform`` remains available.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Iterator, Mapping

from repro.arith.constraints import Constraint, Rel
from repro.arith.linexpr import LinExpr
from repro.database.instance import DatabaseInstance, Identifier, Value
from repro.database.schema import AttributeKind
from repro.errors import ConditionError
from repro.logic.terms import (
    NULL,
    Const,
    NullTerm,
    Term,
    Variable,
    WildcardTerm,
    is_id_term,
    is_numeric_term,
)

Valuation = Mapping[Variable, Value]


class Condition:
    """Base class for conditions; immutable and hashable."""

    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        raise NotImplementedError

    # -- structure -----------------------------------------------------
    def variables(self) -> frozenset[Variable]:
        raise NotImplementedError

    def atoms(self) -> frozenset["Atom"]:
        """All atoms occurring in the condition."""
        raise NotImplementedError

    def evaluate_abstract(self, assignment: Mapping["Atom", bool]) -> bool:
        """Evaluate given a truth assignment to the atoms."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[Variable, Variable]) -> "Condition":
        raise NotImplementedError

    # -- sugar ---------------------------------------------------------
    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)

    def implies(self, other: "Condition") -> "Condition":
        return Implies(self, other)

    def satisfying_atom_assignments(self) -> Iterator[dict["Atom", bool]]:
        """Enumerate truth assignments to this condition's atoms that make
        the condition true.  Exponential in the number of atoms; conditions
        in practice have few atoms, and the verifier prunes inconsistent
        assignments immediately."""
        atom_list = sorted(self.atoms(), key=repr)
        for bits in itertools.product((True, False), repeat=len(atom_list)):
            assignment = dict(zip(atom_list, bits))
            if self.evaluate_abstract(assignment):
                yield assignment


def eliminate_single_atom_exists(condition: "Condition") -> "Condition":
    """Rewrite ∃-bound variables that occur exactly once, inside one
    relation-atom position, into wildcard positions.

    Sound by the key dependency: the row of an anchored id is unique, so
    ``∃q R(x, q, y)`` holds iff ``R(x, ＿, y)`` does.  This makes such
    existentials closed under negation (needed when properties are negated
    for verification)."""
    from repro.logic.terms import ANY

    if isinstance(condition, Exists):
        body = eliminate_single_atom_exists(condition.body)
        counts: dict[Variable, int] = {}

        def count(cond: "Condition") -> None:
            if isinstance(cond, Exists):
                count(cond.body)
                return
            if isinstance(cond, Atom):
                if isinstance(cond, RelationAtom):
                    for arg in cond.args:
                        if isinstance(arg, Variable):
                            counts[arg] = counts.get(arg, 0) + 1
                else:
                    for variable in cond.variables():
                        counts[variable] = counts.get(variable, 0) + 2
                return
            for attr in ("body",):
                inner = getattr(cond, attr, None)
                if isinstance(inner, Condition):
                    count(inner)
            for part in getattr(cond, "parts", ()):  # And / Or
                count(part)

        count(body)
        eliminable = {
            v
            for v in condition.bound
            if counts.get(v, 0) == 1
        }

        def rewrite(cond: "Condition") -> "Condition":
            if isinstance(cond, RelationAtom):
                args = tuple(
                    ANY
                    if (isinstance(a, Variable) and a in eliminable and i > 0)
                    else a
                    for i, a in enumerate(cond.args)
                )
                return RelationAtom(cond.relation, args)
            if isinstance(cond, Atom) or isinstance(
                cond, (_TrueCondition, _FalseCondition)
            ):
                return cond
            if isinstance(cond, Not):
                return Not(rewrite(cond.body))
            if isinstance(cond, (And, Or)):
                return type(cond)(*(rewrite(p) for p in cond.parts))
            if isinstance(cond, Exists):
                return Exists(cond.bound, rewrite(cond.body))
            return cond

        body = rewrite(body)
        remaining = tuple(
            v for v in condition.bound if v in body.rename({}).variables() or v not in eliminable
        )
        remaining = tuple(v for v in remaining if v in _free_variables(body))
        if not remaining:
            return body
        return Exists(remaining, body)
    if isinstance(condition, Not):
        return Not(eliminate_single_atom_exists(condition.body))
    if isinstance(condition, (And, Or)):
        return type(condition)(
            *(eliminate_single_atom_exists(p) for p in condition.parts)
        )
    return condition


def _free_variables(condition: "Condition") -> frozenset[Variable]:
    try:
        return condition.variables()
    except Exception:
        return frozenset()


def nnf_condition(condition: "Condition", negated: bool = False) -> "Condition":
    """Negation normal form: negations pushed onto the atoms.

    The result uses only And / Or / Atom / Not(Atom) / TRUE / FALSE (and
    Exists, which must occur positively).  Single-atom existentials are
    first rewritten into wildcard positions so they survive negation."""
    condition = eliminate_single_atom_exists(condition)
    if isinstance(condition, _TrueCondition):
        return FALSE if negated else condition
    if isinstance(condition, _FalseCondition):
        return TRUE if negated else condition
    if isinstance(condition, Atom):
        return Not(condition) if negated else condition
    if isinstance(condition, Not):
        return nnf_condition(condition.body, not negated)
    if isinstance(condition, And):
        parts = tuple(nnf_condition(p, negated) for p in condition.parts)
        return Or(*parts) if negated else And(*parts)
    if isinstance(condition, Or):
        parts = tuple(nnf_condition(p, negated) for p in condition.parts)
        return And(*parts) if negated else Or(*parts)
    if isinstance(condition, Exists):
        if negated:
            raise ConditionError(
                "∃ under negation is a universal quantifier — not supported"
            )
        return Exists(condition.bound, nnf_condition(condition.body))
    raise ConditionError(f"cannot normalize {condition!r}")


class Atom(Condition):
    """Base class for the three atom kinds."""

    def atoms(self) -> frozenset["Atom"]:
        return frozenset({self})

    def evaluate_abstract(self, assignment: Mapping["Atom", bool]) -> bool:
        try:
            return assignment[self]
        except KeyError:
            raise ConditionError(f"no truth value supplied for atom {self!r}") from None


@dataclass(frozen=True)
class _TrueCondition(Condition):
    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        return True

    def variables(self) -> frozenset[Variable]:
        return frozenset()

    def atoms(self) -> frozenset[Atom]:
        return frozenset()

    def evaluate_abstract(self, assignment: Mapping[Atom, bool]) -> bool:
        return True

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "true"


@dataclass(frozen=True)
class _FalseCondition(Condition):
    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        return False

    def variables(self) -> frozenset[Variable]:
        return frozenset()

    def atoms(self) -> frozenset[Atom]:
        return frozenset()

    def evaluate_abstract(self, assignment: Mapping[Atom, bool]) -> bool:
        return False

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "false"


TRUE = _TrueCondition()
FALSE = _FalseCondition()


def _term_value(term: Term, valuation: Valuation) -> Value:
    if isinstance(term, NullTerm):
        return None
    if isinstance(term, Const):
        return term.value
    try:
        return valuation[term]
    except KeyError:
        raise ConditionError(f"unbound variable {term!r}") from None


def _values_equal(left: Value, right: Value) -> bool:
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, Identifier) or isinstance(right, Identifier):
        return left == right
    return Fraction(left) == Fraction(right)


@dataclass(frozen=True)
class Eq(Atom):
    """Equality between two terms of the same sort."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        lid, rid = is_id_term(self.left), is_id_term(self.right)
        lnum, rnum = is_numeric_term(self.left), is_numeric_term(self.right)
        if not ((lid and rid) or (lnum and rnum)):
            raise ConditionError(
                f"ill-sorted equality between {self.left!r} and {self.right!r}"
            )

    @property
    def is_id_equality(self) -> bool:
        return is_id_term(self.left)

    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        return _values_equal(
            _term_value(self.left, valuation), _term_value(self.right, valuation)
        )

    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        def ren(term: Term) -> Term:
            if isinstance(term, Variable):
                return mapping.get(term, term)
            return term

        return Eq(ren(self.left), ren(self.right))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} = {self.right!r})"


@dataclass(frozen=True)
class RelationAtom(Atom):
    """``R(x, a1, …, ak)`` with arguments in attribute order, ID first."""

    relation: str
    args: tuple[Term, ...]

    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        rel = db.schema.relation(self.relation)
        if len(self.args) != rel.arity:
            raise ConditionError(
                f"{self.relation}: atom arity {len(self.args)} != {rel.arity}"
            )
        wild = [isinstance(arg, WildcardTerm) for arg in self.args]
        values = [
            None if wild[i] else _term_value(self.args[i], valuation)
            for i in range(len(self.args))
        ]
        if any(values[i] is None and not wild[i] for i in range(len(values))):
            return False  # null argument makes the atom false (Section 2)
        ident = values[0]
        if not isinstance(ident, Identifier) or ident.relation != self.relation:
            return False
        row = db.lookup(ident)
        if row is None:
            return False
        return all(
            wild[i] or _values_equal(row[i], values[i]) for i in range(rel.arity)
        )

    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.args if isinstance(t, Variable))

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        args = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.args
        )
        return RelationAtom(self.relation, args)

    def typecheck(self, db_schema) -> None:
        """Static well-sortedness check against a database schema."""
        rel = db_schema.relation(self.relation)
        if len(self.args) != rel.arity:
            raise ConditionError(
                f"{self.relation}: atom arity {len(self.args)} != {rel.arity}"
            )
        names = rel.attribute_names
        for position, (term, name) in enumerate(zip(self.args, names)):
            if isinstance(term, WildcardTerm):
                if position == 0:
                    raise ConditionError(
                        f"{self.relation}: the key position cannot be a wildcard"
                    )
                continue
            attr = rel.attribute(name)
            if attr.kind is AttributeKind.NUMERIC:
                if not is_numeric_term(term):
                    raise ConditionError(
                        f"{self.relation}.{name}: numeric position got {term!r}"
                    )
            else:
                if not (isinstance(term, Variable) and term.is_id):
                    raise ConditionError(
                        f"{self.relation}.{name}: id position needs an ID variable, "
                        f"got {term!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class ArithAtom(Atom):
    """A linear constraint over numeric variables (an atom of ``C``).

    Unknowns of the underlying :class:`LinExpr` must be numeric
    :class:`Variable` objects.
    """

    constraint: Constraint

    def __post_init__(self) -> None:
        for unknown in self.constraint.unknowns:
            if not (isinstance(unknown, Variable) and unknown.is_numeric):
                raise ConditionError(
                    f"arithmetic atom over non-numeric unknown {unknown!r}"
                )

    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        values: dict[Variable, Fraction] = {}
        for unknown in self.constraint.unknowns:
            value = _term_value(unknown, valuation)
            if value is None or isinstance(value, Identifier):
                raise ConditionError(f"non-numeric value for {unknown!r}: {value!r}")
            values[unknown] = Fraction(value)
        return self.constraint.holds(values)

    def variables(self) -> frozenset[Variable]:
        return frozenset(self.constraint.unknowns)  # type: ignore[arg-type]

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        return ArithAtom(self.constraint.rename(mapping))

    @property
    def is_pure_equality(self) -> bool:
        """True for atoms expressible without arithmetic: ``x - y = 0`` or
        ``x - c = 0`` patterns with the EQ/NE relation (these are just
        equality tests, allowed in Table-1 systems)."""
        if self.constraint.rel not in (Rel.EQ, Rel.NE):
            return False
        expr = self.constraint.expr
        coeffs = list(expr.coeffs.values())
        if len(coeffs) == 1 and abs(coeffs[0]) == 1:
            return True
        if (
            len(coeffs) == 2
            and expr.constant == 0
            and sorted(coeffs) == [Fraction(-1), Fraction(1)]
        ):
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.constraint)


@dataclass(frozen=True)
class Not(Condition):
    body: Condition

    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        return not self.body.evaluate(db, valuation)

    def variables(self) -> frozenset[Variable]:
        return self.body.variables()

    def atoms(self) -> frozenset[Atom]:
        return self.body.atoms()

    def evaluate_abstract(self, assignment: Mapping[Atom, bool]) -> bool:
        return not self.body.evaluate_abstract(assignment)

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        return Not(self.body.rename(mapping))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"¬{self.body!r}"


class _NaryCondition(Condition):
    """Shared machinery for And / Or."""

    op_name = "?"
    _fold: Callable[[Iterable[bool]], bool]

    def __init__(self, *parts: Condition):
        flattened: list[Condition] = []
        for part in parts:
            if type(part) is type(self):
                flattened.extend(part.parts)  # type: ignore[attr-defined]
            else:
                flattened.append(part)
        self.parts = tuple(flattened)

    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        return type(self)._fold(p.evaluate(db, valuation) for p in self.parts)

    def variables(self) -> frozenset[Variable]:
        return frozenset().union(*(p.variables() for p in self.parts)) if self.parts else frozenset()

    def atoms(self) -> frozenset[Atom]:
        return frozenset().union(*(p.atoms() for p in self.parts)) if self.parts else frozenset()

    def evaluate_abstract(self, assignment: Mapping[Atom, bool]) -> bool:
        return type(self)._fold(p.evaluate_abstract(assignment) for p in self.parts)

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        return type(self)(*(p.rename(mapping) for p in self.parts))

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.parts == other.parts  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.parts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        joiner = f" {self.op_name} "
        return "(" + joiner.join(repr(p) for p in self.parts) + ")"


class And(_NaryCondition):
    op_name = "∧"
    _fold = staticmethod(all)


class Or(_NaryCondition):
    op_name = "∨"
    _fold = staticmethod(any)


def Implies(antecedent: Condition, consequent: Condition) -> Condition:
    """Sugar: ``a → b`` is ``¬a ∨ b``."""
    return Or(Not(antecedent), consequent)


@dataclass(frozen=True)
class Exists(Condition):
    """Existential quantification — surface syntax only.

    The concrete evaluator enumerates the active domain extended with null
    (for ID variables) plus one off-domain numeric witness; complete for
    arithmetic-free conditions.  The verifier handles positive ∃ natively
    (fresh anonymous values), per the paper's remark that ∃FO conditions
    are simulated by adding variables.
    """

    bound: tuple[Variable, ...]
    body: Condition

    def evaluate(self, db: DatabaseInstance, valuation: Valuation) -> bool:
        domain = db.active_domain()
        id_values = [v for v in domain if isinstance(v, Identifier)] + [None]
        numeric_values = sorted(
            {Fraction(v) for v in domain if not isinstance(v, Identifier)}
        ) or [Fraction(0)]
        # Include a fresh numeric value outside the active domain: real-
        # valued ∃ can always be witnessed off-domain for disequalities.
        numeric_pool = list(numeric_values) + [max(numeric_values, default=Fraction(0)) + 1]

        def candidates(variable: Variable):
            return id_values if variable.is_id else numeric_pool

        base = dict(valuation)
        for combo in itertools.product(*(candidates(v) for v in self.bound)):
            extended = dict(base)
            extended.update(zip(self.bound, combo))
            if self.body.evaluate(db, extended):
                return True
        return False

    def variables(self) -> frozenset[Variable]:
        return self.body.variables() - frozenset(self.bound)

    def atoms(self) -> frozenset[Atom]:
        raise ConditionError("Exists must be desugared before symbolic use")

    def evaluate_abstract(self, assignment: Mapping[Atom, bool]) -> bool:
        raise ConditionError("Exists must be desugared before symbolic use")

    def rename(self, mapping: Mapping[Variable, Variable]) -> Condition:
        safe = {k: v for k, v in mapping.items() if k not in self.bound}
        return Exists(self.bound, self.body.rename(safe))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(v.name for v in self.bound)
        return f"∃{names}.{self.body!r}"
