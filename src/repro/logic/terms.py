"""Terms of conditions: artifact variables, numeric constants, and null.

The paper fixes two disjoint infinite sets of variables: ``VAR_id`` (ID
variables, ranging over tuple identifiers plus ``null``) and ``VAR_R``
(numeric variables, ranging over the reals).  A :class:`Variable` carries
its kind; ID variables may additionally be annotated with the relation
whose ID domain they are expected to hold (used by static type checking of
relation atoms — the runtime domain is the union of all ID domains).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction

from repro.arith.linexpr import Coefficient


class VarKind(enum.Enum):
    ID = "id"
    NUMERIC = "numeric"


@dataclass(frozen=True)
class Variable:
    """An artifact variable (or HLTL-FO global variable)."""

    name: str
    kind: VarKind

    @property
    def is_id(self) -> bool:
        return self.kind is VarKind.ID

    @property
    def is_numeric(self) -> bool:
        return self.kind is VarKind.NUMERIC

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def id_var(name: str) -> Variable:
    """Convenience constructor for an ID variable."""
    return Variable(name, VarKind.ID)


def num_var(name: str) -> Variable:
    """Convenience constructor for a numeric variable."""
    return Variable(name, VarKind.NUMERIC)


@dataclass(frozen=True)
class Const:
    """A numeric constant (exact rational)."""

    value: Fraction

    @staticmethod
    def of(value: Coefficient) -> "Const":
        if isinstance(value, Fraction):
            return Const(value)
        if isinstance(value, int):
            return Const(Fraction(value))
        if isinstance(value, float):
            return Const(Fraction(value).limit_denominator(10**12))
        raise TypeError(f"not a numeric constant: {value!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.value)


class NullTerm:
    """The special constant ``null`` (singleton)."""

    _instance: "NullTerm | None" = None

    def __new__(cls) -> "NullTerm":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "null"

    def __hash__(self) -> int:
        return hash("__null__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullTerm)


NULL = NullTerm()


class WildcardTerm:
    """An unconstrained relation-atom position (singleton).

    ``R(x, ＿, y)`` means "x's row has *some* value there".  Produced by
    eliminating single-atom existentials (key dependencies make the row
    unique, so ∃q R(x, q, y) ⟺ R(x, ＿, y)); never written by users.
    """

    _instance: "WildcardTerm | None" = None

    def __new__(cls) -> "WildcardTerm":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "＿"

    def __hash__(self) -> int:
        return hash("__wildcard__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WildcardTerm)


ANY = WildcardTerm()

Term = Variable | Const | NullTerm | WildcardTerm


def is_id_term(term: Term) -> bool:
    """ID-sorted terms: ID variables and null."""
    if isinstance(term, (NullTerm, WildcardTerm)):
        return True
    return isinstance(term, Variable) and term.is_id


def is_numeric_term(term: Term) -> bool:
    if isinstance(term, (Const, WildcardTerm)):
        return True
    return isinstance(term, Variable) and term.is_numeric
