"""Quantifier-free FO conditions over ``DB ∪ C ∪ {=}`` (Section 2).

Conditions are the pre/post-conditions of services and the FO building
blocks of HLTL-FO.  Atoms are equalities between terms, relation atoms over
the database schema, and (linear) arithmetic constraints over numeric
variables; ``null`` participates only in equalities with ID variables, and
a relation atom with a null argument is false.
"""

from repro.logic.terms import (
    NULL,
    Const,
    NullTerm,
    Term,
    Variable,
    VarKind,
)
from repro.logic.conditions import (
    And,
    ArithAtom,
    Atom,
    Condition,
    Eq,
    Exists,
    FALSE,
    Implies,
    Not,
    Or,
    RelationAtom,
    TRUE,
)

__all__ = [
    "NULL",
    "Const",
    "NullTerm",
    "Term",
    "Variable",
    "VarKind",
    "And",
    "ArithAtom",
    "Atom",
    "Condition",
    "Eq",
    "Exists",
    "FALSE",
    "Implies",
    "Not",
    "Or",
    "RelationAtom",
    "TRUE",
]
