"""The ``python -m repro`` command line.

Five subcommands drive the batch verification service:

* ``verify`` — one system + property (a built-in example, a ``.has``
  scenario file, a job JSON file, or a suite job reference), printed as
  a full verdict with witness, or as structured JSON with ``--json``;
  exit codes 0 (holds), 1 (violated), 2 (budget-exceeded / error) for
  scripts and CI;
* ``explain`` — the same targets, but on violation prints the concrete
  counterexample: a finite database plus a step-by-step run, validated
  by the simulator and the reference LTL evaluators and minimized
  (``repro.witness``);
* ``suite`` — a named job suite through the batch runner, with workers,
  result cache, and JSONL export;
* ``bench`` — the same suite at several worker counts, reporting batch
  wall time and speedup (cache disabled so every run does the work);
* ``fuzz`` — the differential fuzzing campaign (``repro.fuzz``): seeded
  random scenarios cross-checked between the symbolic verifier and the
  bounded explicit-state reference checker, discrepancies shrunk and
  written as replayable reports (``--replay``); exit codes 0 (all
  agree), 1 (discrepancy found / replay reproduced), 2 (usage error).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.errors import ReproError
from repro.service.cache import ResultCache
from repro.service.jobs import STATUS_HOLDS, STATUS_VIOLATED, VerificationJob
from repro.service.pool import execute_job
from repro.service.runner import (
    merge_shard_jsonl,
    parse_shard,
    run_batch,
    shard_jobs,
)
from repro.service.suites import build_suite, suite_names
from repro.verifier.config import VerifierConfig

DEFAULT_CACHE_DIR = ".repro-cache"


def _die(message: str) -> SystemExit:
    """Usage/target errors exit with code 2 — code 1 is reserved for the
    'property violated' verdict (the documented script contract)."""
    print(message, file=sys.stderr)
    return SystemExit(2)


def _example_job(name: str, config: VerifierConfig) -> VerificationJob:
    from repro.examples.travel import (
        discount_policy_property,
        discount_policy_property_lite,
        travel_booking,
        travel_lite,
    )

    builders = {
        "travel-lite": (travel_lite, False, discount_policy_property_lite),
        "travel-lite-fixed": (travel_lite, True, discount_policy_property_lite),
        "travel": (travel_booking, False, discount_policy_property),
        "travel-fixed": (travel_booking, True, discount_policy_property),
    }
    try:
        build, fixed, property_of = builders[name]
    except KeyError:
        known = ", ".join(sorted(builders))
        raise _die(
            f"unknown target {name!r}: expected a job JSON file or one of {known}"
        ) from None
    has = build(fixed)
    return VerificationJob(has=has, prop=property_of(has), config=config)


def _config_from_args(args: argparse.Namespace) -> VerifierConfig:
    return VerifierConfig(
        km_budget=args.km_budget,
        time_limit_seconds=args.time_limit,
        km_workers=getattr(args, "km_workers", 1),
    )


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--km-budget",
        type=int,
        default=60_000,
        help="Karp–Miller node budget per task summary (default 60000)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=120.0,
        help="per-job wall-clock limit in seconds (default 120)",
    )
    parser.add_argument(
        "--km-workers",
        type=int,
        default=1,
        help="worker threads for the parallel Karp–Miller scout phase "
        "(default 1 = sequential; >1 runs a cache-warming parallel scout "
        "then a sequential replay, byte-identical to sequential output — "
        "see docs/performance.md)",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"on-disk result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the result cache entirely",
    )


def _cache_from_args(args: argparse.Namespace) -> ResultCache | None:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _add_summary_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--summary-cache",
        metavar="DIR",
        help="persistent cross-job task-summary store: re-verifying after "
        "an edit reuses the summaries of untouched task subtrees (keyed "
        "by subtree content, so reuse is observationally invisible — "
        "verdicts and witnesses stay byte-identical)",
    )
    parser.add_argument(
        "--no-summary-reuse",
        action="store_true",
        help="disable cross-job summary reuse even when --summary-cache "
        "is set (A/B runs, wrapper scripts)",
    )


def _summary_store_from_args(args: argparse.Namespace):
    if args.no_summary_reuse or not args.summary_cache:
        return None
    from repro.service.cache import SummaryStore

    return SummaryStore(args.summary_cache)


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="write a structured trace (spans, km progress, per-job "
        "events) to FILE.jsonl; analyze with `python -m repro report`",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream heartbeat lines to stderr while the run is live "
        "(elapsed, km nodes, current exploration)",
    )


@contextmanager
def _tracing(args: argparse.Namespace):
    """Enable the tracer/heartbeat around a command, per its flags.

    Tracing is observationally invisible: verdicts, witnesses, node
    counts, and job hashes are identical with or without these flags
    (docs/observability.md)."""
    from repro.obs import trace

    trace_path = getattr(args, "trace", None)
    progress = getattr(args, "progress", False)
    if not trace_path and not progress:
        yield
        return
    heartbeat = None
    if progress:
        from repro.obs.progress import Heartbeat

        heartbeat = Heartbeat()
        trace.add_listener(heartbeat)
    try:
        trace.start(trace_path)
    except OSError as exc:
        # an unwritable --trace path is a usage error (exit 2), not a
        # traceback — same contract as a missing report file
        if heartbeat is not None:
            trace.remove_listener(heartbeat)
        raise _die(
            f"{trace_path}: cannot write trace ({exc.strerror or exc})"
        ) from None
    try:
        yield
    finally:
        trace.stop()
        if heartbeat is not None:
            trace.remove_listener(heartbeat)
        if trace_path:
            print(f"trace written to {trace_path}", file=sys.stderr)


def _job_from_has_target(target: str, config: VerifierConfig) -> VerificationJob:
    """A job from a ``.has`` scenario file; ``file.has::prop`` selects one
    of several properties by name.  A ``config`` block in the file wins
    over the CLI budget flags (budget-boxed scenarios depend on that)."""
    from repro.dsl import load_document

    path_text, _, selector = target.partition("::")
    path = Path(path_text)
    if not path.is_file():
        raise _die(f"{path}: scenario file not found")
    try:
        doc = load_document(path)
    except ReproError as exc:
        raise _die(str(exc)) from None
    if not doc.properties:
        raise _die(f"{path}: the scenario declares no properties")
    jobs = doc.jobs(default_config=config)
    if selector:
        try:
            entry = doc.property_named(selector)
        except ReproError as exc:
            raise _die(str(exc)) from None
        return jobs[doc.properties.index(entry)]
    if len(jobs) > 1:
        known = ", ".join(e.prop.name for e in doc.properties)
        raise _die(
            f"{path} declares {len(jobs)} properties; pick one with "
            f"{path}::<name> (declared: {known})"
        )
    return jobs[0]


def _job_from_target(target: str, config: VerifierConfig) -> VerificationJob:
    """A job from a job JSON file, a ``.has`` scenario file, a
    ``suite/selector`` reference, or a built-in example name."""
    if target.partition("::")[0].endswith(".has"):
        return _job_from_has_target(target, config)
    if Path(target).suffix == ".json":
        if not Path(target).exists():
            raise _die(f"{target}: job file not found")
        try:
            payload = json.loads(Path(target).read_text())
            return VerificationJob.from_payload(payload).with_config(config)
        except (ValueError, KeyError, TypeError, ReproError) as exc:
            raise _die(f"{target}: not a valid job file ({exc})") from None
    if "/" in target:
        suite_name, _, selector = target.partition("/")
        try:
            jobs = build_suite(suite_name, config=config)
        except KeyError as exc:
            raise _die(exc.args[0]) from None
        if selector.isdigit():
            index = int(selector)
            if not 0 <= index < len(jobs):
                raise _die(
                    f"{target}: suite {suite_name!r} has jobs 0…{len(jobs) - 1}"
                )
            return jobs[index]
        exact = [job for job in jobs if job.name == selector]
        if exact:
            return exact[0]
        matches = [job for job in jobs if selector in job.name]
        if not matches:
            known = ", ".join(job.name for job in jobs)
            raise _die(f"{target}: no job matches (suite jobs: {known})")
        names = {job.name for job in matches}
        if len(names) > 1:
            raise _die(
                f"{target}: ambiguous selector, matches "
                + ", ".join(sorted(names))
            )
        return matches[0]
    return _example_job(target, config)


def _verdict_exit_code(outcome) -> int:
    """Exit codes for scripts and CI: 0 holds, 1 violated, 2 budget
    exceeded / error."""
    if outcome.status == STATUS_HOLDS:
        return 0
    if outcome.status == STATUS_VIOLATED:
        return 1
    return 2


def _cmd_verify(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    job = _job_from_target(args.target, config)
    if not args.json:
        print(f"verifying {job.name}  (key {job.key()[:16]}…)")
    with _tracing(args):
        outcome = execute_job(job, summary_store=_summary_store_from_args(args))
    if args.json:
        print(json.dumps(outcome.to_dict(), sort_keys=True, indent=1))
    else:
        print(outcome.one_line())
        for step in outcome.witness:
            print(f"    {step}")
        if outcome.error:
            print(f"  {outcome.error}")
    if args.dump_job:
        Path(args.dump_job).write_text(json.dumps(job.payload(), sort_keys=True))
        if not args.json:
            print(f"job payload written to {args.dump_job}")
    return _verdict_exit_code(outcome)


def _cmd_explain(args: argparse.Namespace) -> int:
    """Verify one target and print (or export) the concrete counterexample."""
    from repro.verifier.engine import Verifier
    from repro.witness import ConcreteWitness, concretize

    config = _config_from_args(args)
    job = _job_from_target(args.target, config)
    print(f"explaining {job.name}  (key {job.key()[:16]}…)")
    with _tracing(args):
        try:
            result = Verifier(
                job.has,
                job.config,
                summary_store=_summary_store_from_args(args),
            ).verify(job.prop)
        except ReproError as exc:
            print(f"  {type(exc).__name__}: {exc}")
            return 2
        if result.holds:
            print(result.explain())
            print("nothing to explain: no counterexample exists within the model")
            return 0
        try:
            # traced: the witness materialize/replay/minimize spans are
            # only reachable through this pipeline
            witness = concretize(
                job.has,
                job.prop,
                result,
                shrink=not args.no_minimize,
                time_budget=config.time_limit_seconds,
            )
        except Exception as exc:  # noqa: BLE001 — exit contract: 2, not a traceback
            print(result.explain())
            print(f"concretization failed: {type(exc).__name__}: {exc}")
            return 2
    print(witness.render())
    if args.export:
        Path(args.export).write_text(
            json.dumps(witness.to_dict(), sort_keys=True, indent=1)
        )
        print(f"concrete witness JSON written to {args.export}")
    if isinstance(witness, ConcreteWitness) and witness.confirmed:
        return 1
    return 2


def _cmd_suite(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    try:
        jobs = build_suite(args.name, quick=args.quick, config=config)
    except KeyError as exc:
        raise _die(exc.args[0]) from None
    except ReproError as exc:
        # a .has file in the suite path failed to parse or validate
        raise _die(str(exc)) from None
    if args.merge_jsonl:
        if args.shard:
            raise _die("--shard and --merge-jsonl are mutually exclusive")
        try:
            report = merge_shard_jsonl(jobs, args.merge_jsonl)
        except (OSError, ValueError) as exc:
            raise _die(str(exc)) from None
        print(
            f"suite {args.name!r}: merged {report.total} outcomes from "
            f"{len(args.merge_jsonl)} shard file(s)"
        )
        print(report.format_report())
        if args.jsonl:
            report.to_jsonl(args.jsonl)
            print(f"per-job JSONL written to {args.jsonl}")
        if report.errors or report.unexpected:
            return 1
        return 0
    shard_note = ""
    if args.shard:
        try:
            index, count = parse_shard(args.shard)
        except ValueError as exc:
            raise _die(str(exc)) from None
        full_total = len(jobs)
        jobs = shard_jobs(jobs, index, count)
        shard_note = f", shard {index}/{count} ({len(jobs)} of {full_total} jobs)"
    cache = _cache_from_args(args)
    print(
        f"suite {args.name!r}: {len(jobs)} jobs, workers={args.workers}, "
        f"cache={'off' if cache is None else args.cache_dir}{shard_note}"
    )
    on_outcome = None
    if args.verbose:
        on_outcome = lambda outcome: print(  # noqa: E731
            f"  done: {outcome.one_line()}", flush=True
        )
    summary_store = _summary_store_from_args(args)
    with _tracing(args):
        report = run_batch(
            jobs,
            workers=args.workers,
            cache=cache,
            on_outcome=on_outcome,
            summary_store=summary_store,
        )
    print(report.format_report())
    lock_waits = (cache.lock_waits if cache is not None else 0) + (
        summary_store.lock_waits if summary_store is not None else 0
    )
    if lock_waits:
        print(f"cache write-lock contention: {lock_waits} wait(s)")
    if args.jsonl:
        report.to_jsonl(args.jsonl)
        print(f"per-job JSONL written to {args.jsonl}")
    if report.errors or report.unexpected:
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.record or args.compare:
        with _tracing(args):
            return _cmd_bench_record(args)
    if args.families:
        raise _die("--families requires --record or --compare")
    config = _config_from_args(args)
    try:
        jobs = build_suite(args.name or "table1", quick=args.quick, config=config)
    except KeyError as exc:
        raise _die(exc.args[0]) from None
    except ReproError as exc:
        raise _die(str(exc)) from None
    workers_list = [int(w) for w in args.workers_list.split(",")]
    print(f"bench suite {args.name!r}: {len(jobs)} jobs at workers={workers_list}")
    baseline = None
    with _tracing(args):
        for workers in workers_list:
            report = run_batch(jobs, workers=workers, cache=None)
            if baseline is None:
                baseline = report.wall_seconds
            speedup = baseline / report.wall_seconds if report.wall_seconds else 0.0
            print(
                f"  workers={workers:<3d} wall {report.wall_seconds:8.3f}s  "
                f"speedup ×{speedup:.2f}  "
                f"({report.violations} violated, {report.budget_exceeded} over budget)"
            )
    return 0


def _cmd_bench_record(args: argparse.Namespace) -> int:
    """``bench --record / --compare``: the tracked-baseline harness.

    ``--record`` runs the named families and writes one
    ``BENCH_<family>.json`` per family into ``--out``; ``--compare DIR``
    then checks those records against the same-named baselines in DIR.
    Exit codes extend the verify contract without clashing with it
    (0 holds / 1 violated / 2 budget-error): **3** — a family regressed
    in wall time / boxed throughput beyond ``--threshold``; **4** — a
    deterministic family's verdict fingerprint drifted, which is a
    semantic change, not noise.  Missing baselines are reported but
    never fail (the soft-gate contract)."""
    from repro.perf import bench as perf_bench

    known = perf_bench.family_names()
    if args.families:
        if args.name:
            raise _die(
                "pass either a positional family name or --families, not both"
            )
        families = [f.strip() for f in args.families.split(",") if f.strip()]
    elif args.name:
        # the positional argument names a suite in sweep mode and a
        # family here; the grids share names, so honor it rather than
        # silently recording everything
        families = [args.name]
    else:
        families = list(known)
    unknown = [f for f in families if f not in known]
    if unknown:
        raise _die(
            f"unknown bench families {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )
    out_dir = Path(args.out)
    if args.record:
        try:
            # record_families logs progress to stderr, keeping stdout
            # parseable for scripted callers
            perf_bench.record_families(out_dir, families, reps=args.reps)
        except RuntimeError as exc:
            raise _die(f"bench recording failed: {exc}") from None
    if not args.compare:
        return 0
    if not out_dir.exists() or not list(out_dir.glob("BENCH_*.json")):
        raise _die(
            f"{out_dir}: no BENCH_*.json records to compare "
            "(run with --record, or point --out at recorded files)"
        )
    # compare only the families this invocation selected: --out may hold
    # stale records for other families from earlier runs
    selected = (
        families if (args.record or args.families or args.name) else None
    )
    regressions, drifts, notes = perf_bench.compare_directories(
        out_dir, args.compare, threshold=args.threshold, families=selected
    )
    for note in notes:
        print(f"  {note}")
    if drifts:
        print("SEMANTIC DRIFT (verdict fingerprints changed — not a perf issue):")
        for line in drifts:
            print(f"  {line}")
    if regressions:
        print(f"REGRESSION beyond {args.threshold:.0%} threshold:")
        for line in regressions:
            print(f"  {line}")
    if drifts:
        return 4
    if regressions:
        return 3
    print("no regressions beyond threshold")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing campaign / discrepancy replay."""
    import contextlib

    from repro.fuzz import (
        BoundedConfig,
        GenConfig,
        corpus_entry,
        load_report,
        replay_report,
        run_campaign,
        write_corpus_entry,
        write_corpus_entry_has,
    )
    from repro.fuzz.coverage import FEATURES
    from repro.fuzz.harness import write_coverage_map
    from repro.fuzz.mutations import inject, mutation_names

    if args.export_corpus and args.inject_bug:
        raise _die(
            "--export-corpus cannot be combined with --inject-bug: corpus "
            "entries record expected verdicts, and a mutated verifier would "
            "poison them"
        )
    if args.replay and args.export_corpus:
        raise _die(
            "--replay does not run a campaign and cannot export corpus "
            "entries; drop --export-corpus (see docs/testing.md for the "
            "discrepancy→corpus recipe)"
        )
    mutation = contextlib.nullcontext()
    if args.inject_bug:
        if args.inject_bug not in mutation_names():
            raise _die(
                f"unknown mutation {args.inject_bug!r} "
                f"(known: {', '.join(mutation_names())})"
            )
        mutation = inject(args.inject_bug)

    if args.replay:
        if not Path(args.replay).exists():
            raise _die(f"{args.replay}: report file not found")
        try:
            report = load_report(args.replay)
        except ValueError as exc:
            raise _die(str(exc)) from None
        try:
            with mutation:
                reproduced, outcome, notes = replay_report(report)
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            # a malformed/truncated report is a usage error (exit 2) —
            # exit 1 is reserved for "discrepancy reproduced"
            raise _die(
                f"{args.replay}: not a replayable report "
                f"({type(exc).__name__}: {exc})"
            ) from None
        for note in notes:
            print(f"  note: {note}")
        print(outcome.one_line())
        if notes:
            print(f"replay of {report['name']}: NOT EXACT (see notes)")
            return 2
        if reproduced:
            print(
                f"replay of {report['name']}: discrepancy "
                f"{report['kind']!r} REPRODUCED"
            )
            return 1
        print(f"replay of {report['name']}: discrepancy no longer reproduces")
        return 0

    if args.count < 1:
        raise _die("--count must be at least 1")
    gen_config = GenConfig(max_depth=args.max_depth)
    # --budget 0 disables the wall clock: verdicts then depend only on
    # the deterministic km/expansion caps (what CI wants — no spurious
    # discrepancies on slow runners)
    wall = args.budget if args.budget > 0 else None
    verifier_config = VerifierConfig(
        km_budget=args.km_budget, time_limit_seconds=wall
    )
    bounded_config = BoundedConfig(time_budget_seconds=wall)
    on_outcome = None
    if args.verbose:
        on_outcome = lambda outcome: print(  # noqa: E731
            f"  {outcome.one_line()}", flush=True
        )
    if args.min_novelty < 1:
        raise _die("--min-novelty must be at least 1")
    with mutation, _tracing(args):
        campaign = run_campaign(
            args.seed,
            args.count,
            gen_config=gen_config,
            verifier_config=verifier_config,
            bounded_config=bounded_config,
            out_dir=args.out,
            shrink=not args.no_shrink,
            on_outcome=on_outcome,
            guided=args.guided,
            min_novelty=args.min_novelty,
        )
    print(campaign.format_report())
    if args.coverage_out:
        path = write_coverage_map(args.coverage_out, campaign)
        print(f"coverage map written to {path}")
    if args.export_corpus:
        written = 0
        seen_jobs: set[str] = set()
        for outcome in campaign.outcomes:
            if outcome.discrepancy is None:
                entry = corpus_entry(outcome, verifier_config, bounded_config)
                # distinct (seed, index) pairs — and grown mutants — can
                # collapse to the same verification job; one entry each
                if entry["job_key"] in seen_jobs:
                    continue
                seen_jobs.add(entry["job_key"])
                if args.corpus_format == "has":
                    write_corpus_entry_has(
                        args.export_corpus, outcome, verifier_config
                    )
                else:
                    write_corpus_entry(args.export_corpus, entry)
                written += 1
        print(
            f"{written} {args.corpus_format} corpus entries written to "
            f"{args.export_corpus}"
        )
    if args.coverage_floor:
        floor_path = Path(args.coverage_floor)
        if not floor_path.exists():
            raise _die(f"{args.coverage_floor}: coverage floor file not found")
        floor = json.loads(floor_path.read_text())
        floor_features = set(floor.get("features", ()))
        unknown = sorted(floor_features - set(FEATURES))
        if unknown:
            raise _die(
                f"{args.coverage_floor}: floor names unknown coverage "
                f"features: {', '.join(unknown)}"
            )
        missing = sorted(floor_features - set(campaign.coverage))
        if missing:
            print(
                f"coverage REGRESSION: {len(missing)} floor feature(s) "
                f"not reached: {', '.join(missing)}"
            )
            return 1
        print(
            f"coverage floor held: all {len(floor_features)} floor "
            f"features reached ({len(campaign.coverage)} total)"
        )
    return 1 if campaign.discrepancies else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import load_events, render, summarize
    from repro.perf.counters import PerfCounters

    if not args.trace and not args.history:
        raise _die("report: pass a trace file, --history DIR, or both")
    if args.export and not args.trace:
        raise _die("--export needs a trace file to convert")
    if args.export and not args.out:
        raise _die("--export needs --out FILE for the converted trace")
    if args.out and not args.export:
        raise _die("--out only makes sense with --export")
    if args.append_history and not args.trace:
        raise _die("--append-history needs a trace file to summarize")

    history_records = None
    if args.history:
        from repro.obs.history import load_history

        try:
            history_records = load_history(args.history)
        except OSError as exc:
            raise _die(f"{args.history}: cannot read ledger ({exc.strerror or exc})")
        except ValueError as exc:
            raise _die(str(exc))

    if not args.trace:
        from repro.obs.history import render_trends, trends

        if args.json:
            print(json.dumps(trends(history_records), sort_keys=True))
        else:
            print(render_trends(history_records))
        return 0

    try:
        events = load_events(args.trace)
    except OSError as exc:
        raise _die(f"{args.trace}: cannot read trace ({exc.strerror or exc})")
    except ValueError as exc:
        raise _die(str(exc))
    summary = summarize(events)

    if args.export:
        from repro.obs.export import export_trace

        try:
            export_trace(events, args.export, args.out)
        except OSError as exc:
            raise _die(f"{args.out}: cannot write export ({exc.strerror or exc})")

    appended = None
    if args.append_history:
        from repro.obs.history import append_history

        try:
            appended = append_history(events, args.append_history, label=args.label)
        except OSError as exc:
            raise _die(
                f"{args.append_history}: cannot write ledger "
                f"({exc.strerror or exc})"
            )

    if args.json:
        document = {
            "events": summary.events,
            "jobs": len(summary.jobs),
            "wall_seconds": summary.wall_seconds,
            "phases": summary.phases,
            "breakdown": [
                {"phase": label, "seconds": seconds, "calls": calls}
                for label, seconds, calls in summary.phase_breakdown()
            ],
            "counters": summary.counters,
            "rates": PerfCounters.rates(summary.counters),
            "attribution": summary.attribution,
        }
        if history_records is not None:
            from repro.obs.history import trends

            document["history"] = trends(history_records)
        print(json.dumps(document, sort_keys=True))
    else:
        print(render(summary, top=args.top))
        if args.export:
            print(f"{args.export} export written to {args.out}")
        if appended is not None:
            print(
                f"history record appended (suite {appended['suite']}, "
                f"{len(appended['jobs'])} jobs)"
            )
        if history_records is not None:
            from repro.obs.history import render_trends

            print()
            print(render_trends(history_records))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Batch verification service for Hierarchical Artifact Systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    target_help = (
        "built-in example (travel-lite, travel-lite-fixed, travel, "
        "travel-fixed), a .has scenario file (file.has, or "
        "file.has::<property> when it declares several), a job JSON "
        "file, or a suite job reference (<suite>/<index> or "
        "<suite>/<name-substring>)"
    )

    verify = sub.add_parser(
        "verify",
        help="verify one system + property "
        "(exit code: 0 holds, 1 violated, 2 budget-exceeded/error)",
    )
    verify.add_argument("target", help=target_help)
    verify.add_argument(
        "--json",
        action="store_true",
        help="print the structured JobOutcome JSON instead of the report",
    )
    verify.add_argument(
        "--dump-job",
        metavar="PATH",
        help="also write the job's serialized payload to PATH",
    )
    _add_budget_arguments(verify)
    _add_summary_cache_arguments(verify)
    _add_trace_arguments(verify)
    verify.set_defaults(func=_cmd_verify)

    explain = sub.add_parser(
        "explain",
        help="verify one target and print its concrete, replay-validated, "
        "minimized counterexample (exit code: 0 holds, 1 confirmed "
        "violation, 2 non-concretizable/budget/error)",
    )
    explain.add_argument("target", help=target_help)
    explain.add_argument(
        "--export",
        metavar="PATH",
        help="write the concrete witness JSON to PATH",
    )
    explain.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip trace minimization (print the raw materialized run)",
    )
    _add_budget_arguments(explain)
    _add_summary_cache_arguments(explain)
    _add_trace_arguments(explain)
    explain.set_defaults(func=_cmd_explain)

    suite = sub.add_parser("suite", help="run a named job suite")
    suite.add_argument(
        "name",
        nargs="?",
        default="quick",
        help=f"suite name: {', '.join(suite_names())} (default: quick), "
        "or a path to a .has scenario file / a directory of them",
    )
    suite.add_argument("--workers", type=int, default=1, help="process pool size")
    suite.add_argument(
        "--quick", action="store_true", help="trim the suite to its fastest jobs"
    )
    suite.add_argument("--jsonl", metavar="PATH", help="export per-job JSONL report")
    suite.add_argument(
        "--verbose", action="store_true", help="print each job as it finishes"
    )
    suite.add_argument(
        "--shard",
        metavar="k/N",
        help="run only this shard of the suite (1-based): jobs are "
        "assigned to shards by content key, so N processes or machines "
        "each running one shard — against a shared --cache-dir / "
        "--summary-cache — cover the suite exactly once; write each "
        "shard's --jsonl and reassemble with --merge-jsonl",
    )
    suite.add_argument(
        "--merge-jsonl",
        metavar="SHARD.jsonl",
        nargs="+",
        help="merge per-shard --jsonl exports back into one report "
        "(suite order, byte-identical semantic content to an unsharded "
        "run) instead of running jobs; combine with --jsonl to write "
        "the merged export",
    )
    _add_cache_arguments(suite)
    _add_budget_arguments(suite)
    _add_summary_cache_arguments(suite)
    _add_trace_arguments(suite)
    suite.set_defaults(func=_cmd_suite)

    bench = sub.add_parser(
        "bench",
        help="worker-scaling sweep (default), or the tracked benchmark "
        "harness with --record / --compare (exit 3 on >threshold "
        "regression)",
    )
    bench.add_argument(
        "name",
        nargs="?",
        default=None,
        help="suite name for the worker sweep (default table1), or a "
        "single family name with --record/--compare",
    )
    bench.add_argument(
        "--workers-list",
        default="1,2,4",
        help="comma-separated worker counts (default 1,2,4)",
    )
    bench.add_argument(
        "--quick", action="store_true", help="trim the suite to its fastest jobs"
    )
    bench.add_argument(
        "--record",
        action="store_true",
        help="run the benchmark families and write BENCH_<family>.json "
        "records (wall time, KM nodes, cache hit rates) into --out",
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE_DIR",
        help="compare the records in --out against the baselines in "
        "BASELINE_DIR; exit 3 on a >--threshold perf regression, exit 4 "
        "on verdict-fingerprint drift (a semantic change)",
    )
    bench.add_argument(
        "--out",
        default="bench-records",
        help="directory for BENCH_<family>.json records (default bench-records)",
    )
    bench.add_argument(
        "--families",
        help="comma-separated bench families for --record/--compare "
        "(default: all; see docs/performance.md). Families pin their own "
        "verifier budgets, so --km-budget/--time-limit apply only to the "
        "worker sweep",
    )
    bench.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per family; wall time is the best rep (default 3)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative wall-time regression tolerance for --compare "
        "(default 0.15 = 15%%)",
    )
    _add_budget_arguments(bench)
    _add_trace_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random scenarios cross-checked between "
        "the symbolic verifier and a bounded explicit-state reference "
        "checker (exit code: 0 all agree, 1 discrepancy/reproduced, 2 "
        "usage error)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    fuzz.add_argument(
        "--count", type=int, default=25, help="scenarios to generate (default 25)"
    )
    fuzz.add_argument(
        "--budget",
        type=float,
        default=10.0,
        help="per-scenario wall-clock budget in seconds, applied to both "
        "checkers (default 10; 0 disables the wall clock so verdicts "
        "depend only on the deterministic --km-budget/expansion caps — "
        "use 0 in CI)",
    )
    fuzz.add_argument(
        "--km-budget",
        type=int,
        default=20_000,
        help="Karp–Miller node budget per scenario (default 20000)",
    )
    fuzz.add_argument(
        "--max-depth",
        type=int,
        default=2,
        help="maximum task-hierarchy depth of generated systems (default 2)",
    )
    fuzz.add_argument(
        "--out",
        default="fuzz-reports",
        help="directory for discrepancy reports (default fuzz-reports)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip scenario shrinking on discrepancies",
    )
    fuzz.add_argument(
        "--guided",
        action="store_true",
        help="coverage-guided campaign: track the coverage frontier "
        "(repro.fuzz.coverage), score scenarios by novel features, and "
        "grow mutants of novel survivors targeting uncovered verifier "
        "regions (same total scenario budget as a uniform campaign)",
    )
    fuzz.add_argument(
        "--min-novelty",
        type=int,
        default=1,
        metavar="N",
        help="with --guided: only grow mutants of scenarios that fired "
        "at least N frontier-novel coverage features (default 1)",
    )
    fuzz.add_argument(
        "--coverage-out",
        metavar="FILE",
        help="write the campaign's coverage map (which verifier regions "
        "fired, per scenario and in aggregate) as JSON",
    )
    fuzz.add_argument(
        "--coverage-floor",
        metavar="FILE",
        help="after the campaign, fail (exit 1) unless every feature in "
        "this checked-in coverage map is reached",
    )
    fuzz.add_argument(
        "--export-corpus",
        metavar="DIR",
        help="write each agreeing scenario as a regression corpus entry",
    )
    fuzz.add_argument(
        "--corpus-format",
        choices=("json", "has"),
        default="json",
        help="corpus entry format: machine-replayable JSON (default) or "
        "readable .has scenario files (repro.dsl; loadable by verify/suite)",
    )
    fuzz.add_argument(
        "--replay",
        metavar="REPORT",
        help="replay a discrepancy report: regenerate its scenario from the "
        "embedded seed + GenConfig and re-run the differential check "
        "(exit 1 when the discrepancy reproduces, 0 when it no longer "
        "does, 2 when regeneration is not exact)",
    )
    fuzz.add_argument(
        "--inject-bug",
        metavar="NAME",
        help="apply a named verifier mutation (repro.fuzz.mutations) for "
        "the campaign/replay — used to smoke-test the oracle itself",
    )
    fuzz.add_argument(
        "--verbose", action="store_true", help="print each scenario as it finishes"
    )
    _add_trace_arguments(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    report = sub.add_parser(
        "report",
        help="summarize a --trace JSONL file: per-phase time breakdown, "
        "cache hit rates, search hotspots, slowest jobs; export to "
        "Chrome/speedscope; maintain a cross-run metrics ledger "
        "(exit 2 on a missing/bad file)",
    )
    report.add_argument(
        "trace",
        metavar="FILE.jsonl",
        nargs="?",
        help="trace file to analyze (optional with --history)",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="print the summary as JSON instead of the table",
    )
    report.add_argument(
        "--top",
        type=int,
        default=5,
        help="number of slowest jobs to list (default 5)",
    )
    report.add_argument(
        "--export",
        choices=("chrome", "speedscope"),
        help="convert the trace: 'chrome' writes trace-event JSON "
        "(open in ui.perfetto.dev or chrome://tracing), 'speedscope' "
        "writes a speedscope.app profile; requires --out",
    )
    report.add_argument(
        "--out",
        metavar="FILE",
        help="output path for the --export conversion",
    )
    report.add_argument(
        "--append-history",
        metavar="DIR",
        help="append this trace's summary to the metrics ledger "
        "(DIR/history.ndjson, created if missing)",
    )
    report.add_argument(
        "--history",
        metavar="DIR",
        help="render per-job trends and drift flags from the metrics "
        "ledger in DIR (works with or without a trace file)",
    )
    report.add_argument(
        "--label",
        default="",
        help="label stored with --append-history records (e.g. a commit id)",
    )
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
