"""Batch verification service.

A job-oriented layer over the model checker: verification *jobs*
(system + property + budgets) with content-addressed keys, an
in-memory / on-disk result cache, a multiprocess job pool, batch
orchestration with structured reports, and named job suites built from
the Table 1 / Table 2 workload families and the travel example.

Drivable from the command line via ``python -m repro``.
"""

from repro.service.cache import ResultCache
from repro.service.jobs import JobOutcome, VerificationJob, job_from_spec
from repro.service.runner import BatchReport, run_batch
from repro.service.suites import build_suite, suite_names

__all__ = [
    "BatchReport",
    "JobOutcome",
    "ResultCache",
    "VerificationJob",
    "build_suite",
    "job_from_spec",
    "run_batch",
    "suite_names",
]
