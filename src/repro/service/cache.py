"""Content-addressed caches (in-memory + optional on-disk JSON).

Two tiers share one layout — one JSON file per SHA-256 key under a
cache directory (two-level fan-out to keep directories small), written
atomically via rename, so concurrent batch runs — and repeated CLI
invocations — share state safely:

* :class:`ResultCache` — whole-job outcomes, keyed by
  :class:`VerificationJob` content hashes;
* :class:`SummaryStore` — per-task-subtree summary records
  (:mod:`repro.service.summaries`), keyed by
  :func:`~repro.service.summaries.persistent_summary_key`, the tier
  that makes re-verifying an edited scenario incremental.

Sharded suites (``repro suite --shard k/N``) point N concurrent
processes — possibly on different machines over a shared filesystem —
at one cache directory.  The atomic tmp-file + rename was already
correct under that regime (readers never see a torn file; last writer
wins with value-equal content); on-disk writes additionally take an
**advisory ``flock``** on a per-directory lockfile so concurrent
writers serialize instead of racing renames, and every acquisition that
had to *wait* is counted (``flock_waits`` in
:mod:`repro.perf.counters`, plus a per-store ``lock_waits``) — the
contention metric sharded runs report.  On platforms without ``fcntl``
the lock degrades to the rename-only protocol.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.perf.counters import COUNTERS
from repro.service.jobs import JobOutcome

#: Name of the advisory lockfile inside a cache directory.
LOCK_FILENAME = ".lock"


@contextmanager
def _advisory_write_lock(store) -> Iterator[None]:
    """Hold the store directory's advisory write lock.

    Non-blocking first: an immediate grab is the uncontended fast path;
    failing that, the wait is counted (globally and per store) before
    blocking.  Purely advisory — a process that skips it is still safe
    thanks to atomic renames — so a crashed holder cannot wedge anyone:
    ``flock`` locks die with their file descriptor.
    """
    if fcntl is None or store.directory is None:
        yield
        return
    with open(store.directory / LOCK_FILENAME, "a+") as handle:
        COUNTERS.flock_acquires += 1
        try:
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            COUNTERS.flock_waits += 1
            store.lock_waits += 1
            fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


class ResultCache:
    """Two-tier cache: a dict in front of an optional JSON directory."""

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        #: Advisory write-lock acquisitions that found the lock held by
        #: another process (sharded-suite contention metric).
        self.lock_waits = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> JobOutcome | None:
        """The cached outcome for ``key``, marked as a cache hit.

        Anything that cannot be decoded into a well-formed outcome —
        truncated file, foreign JSON shape, hand-edited garbage — is a
        miss, never an exception.
        """
        data = self._memory.get(key)
        if data is None and self.directory is not None:
            try:
                data = json.loads(self._path_for(key).read_text())
            except (OSError, ValueError):
                data = None
        if data is not None:
            try:
                outcome = JobOutcome.from_dict(data)
            except (KeyError, TypeError, AttributeError, ValueError):
                self._memory.pop(key, None)
            else:
                self._memory[key] = data
                self.hits += 1
                outcome.cache_hit = True
                return outcome
        self.misses += 1
        return None

    def put(self, key: str, outcome: JobOutcome) -> None:
        """Store an outcome; cache provenance is stripped before storage."""
        data = outcome.to_dict()
        data["cache_hit"] = False
        self._memory[key] = data
        if self.directory is None:
            return
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _advisory_write_lock(self):
            handle = tempfile.NamedTemporaryFile(
                "w", dir=path.parent, prefix=".tmp-", suffix=".json", delete=False
            )
            try:
                with handle:
                    json.dump(data, handle, sort_keys=True)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.directory is not None and self._path_for(key).exists()

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(p.stem for p in self.directory.glob("*/*.json"))
        return len(keys)

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        if self.directory is not None:
            for path in self.directory.glob("*/*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass


class SummaryStore:
    """Two-tier store for persistent task-summary records.

    Same shape and contracts as :class:`ResultCache`, but values are the
    raw record dicts of :mod:`repro.service.summaries` — the engine owns
    semantic decoding (and its integrity checks), this layer only
    guarantees that a corrupt, truncated, or foreign file is a miss,
    never an exception, and that writes are atomic.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        #: Advisory write-lock acquisitions that found the lock held by
        #: another process (sharded-suite contention metric).
        self.lock_waits = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or None (unreadable = miss)."""
        data = self._memory.get(key)
        if data is None and self.directory is not None:
            try:
                data = json.loads(self._path_for(key).read_text())
            except (OSError, ValueError):
                data = None
        if isinstance(data, dict):
            self._memory[key] = data
            self.hits += 1
            return data
        self.misses += 1
        return None

    def put(self, key: str, record: dict) -> None:
        self._memory[key] = record
        if self.directory is None:
            return
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _advisory_write_lock(self):
            handle = tempfile.NamedTemporaryFile(
                "w", dir=path.parent, prefix=".tmp-", suffix=".json", delete=False
            )
            try:
                with handle:
                    json.dump(record, handle, sort_keys=True)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.directory is not None and self._path_for(key).exists()

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(p.stem for p in self.directory.glob("*/*.json"))
        return len(keys)

    def clear(self) -> None:
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        if self.directory is not None:
            for path in self.directory.glob("*/*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
