"""Named job suites: a realistic verification traffic mix.

Suites assemble :class:`VerificationJob` batches from the Table 1 /
Table 2 workload families (``repro.workloads``), the travel-booking
example (``repro.examples.travel``), and the ``.has`` scenario gallery
(``repro.dsl`` + ``src/repro/workloads/gallery/``):

* ``table1`` — every Table-1 cell (3 schema classes × sets × verdict),
  plus navigation-chain and depth-3 variants;
* ``table2`` — the same grid with linear arithmetic (Table 2);
* ``travel`` — the travel-lite policy on the buggy and fixed variants,
  plus the full six-task system under a tight time budget (exercises
  graceful ``BudgetExceeded`` capture);
* ``gallery`` — every scenario in the shipped ``.has`` gallery
  (order fulfillment, loan approval, insurance claims, … — see
  docs/dsl.md); each file's own ``config`` block wins over the suite
  defaults, so the budget-boxed entries stay boxed;
* ``mixed`` — the service's kitchen-sink traffic: all of the above;
* ``quick`` — a four-job smoke suite for CI.

:func:`build_suite` also accepts a path instead of a suite name: a
single ``.has`` file, or a directory of them (sorted by file name) —
``python -m repro suite workloads/my-scenarios/`` runs a user's own
gallery through the batch service.

``--quick`` (the ``quick`` flag here) trims every suite to its fastest
representatives so CI smoke runs stay in seconds (the gallery is
all-quick by construction and is never trimmed).
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

from repro.database.fkgraph import SchemaClass
from repro.examples.travel import (
    discount_policy_property,
    discount_policy_property_lite,
    travel_booking,
    travel_lite,
)
from repro.service.jobs import VerificationJob, job_from_spec
from repro.verifier.config import VerifierConfig
from repro.workloads import table1_workload, table2_workload

ALL_CLASSES = (
    SchemaClass.ACYCLIC,
    SchemaClass.LINEARLY_CYCLIC,
    SchemaClass.CYCLIC,
)

_DEFAULT_CONFIG = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)

#: Wall-clock budget for the deliberately-too-hard full travel job.
_HARD_JOB_TIME_LIMIT = 5.0


def _table_jobs(builder, quick: bool, config: VerifierConfig) -> list[VerificationJob]:
    classes = (SchemaClass.ACYCLIC,) if quick else ALL_CLASSES
    jobs = []
    for schema_class in classes:
        for with_sets in (False, True):
            for violated in (False, True):
                jobs.append(
                    job_from_spec(
                        builder(
                            schema_class,
                            depth=2,
                            with_sets=with_sets,
                            violated=violated,
                        ),
                        config,
                    )
                )
        if not quick:
            # navigation-chain and deeper-hierarchy variants
            chained = job_from_spec(builder(schema_class, depth=2, chain=2), config)
            jobs.append(replace(chained, name=f"{chained.name}+chain2"))
            jobs.append(job_from_spec(builder(schema_class, depth=3), config))
    return jobs


def _travel_jobs(quick: bool, config: VerifierConfig) -> list[VerificationJob]:
    jobs = []
    for fixed in (False, True):
        has = travel_lite(fixed)
        jobs.append(
            VerificationJob(
                has=has,
                prop=discount_policy_property_lite(has),
                config=config,
                name=f"{has.name}::lite-discount-policy",
                expected_holds=fixed,
            )
        )
    if not quick:
        # The full six-task policy check is beyond the default budgets;
        # run it under a tight wall-clock limit so the batch records a
        # budget_exceeded outcome instead of stalling.
        has = travel_booking(fixed=False)
        jobs.append(
            VerificationJob(
                has=has,
                prop=discount_policy_property(has),
                config=VerifierConfig(
                    km_budget=config.km_budget,
                    time_limit_seconds=_HARD_JOB_TIME_LIMIT,
                ),
                name=f"{has.name}::discount-policy (tight budget)",
            )
        )
    return jobs


def _quick_jobs(config: VerifierConfig) -> list[VerificationJob]:
    jobs = [
        job_from_spec(table1_workload(SchemaClass.ACYCLIC, depth=2), config),
        job_from_spec(
            table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True), config
        ),
        job_from_spec(table2_workload(SchemaClass.CYCLIC, depth=2), config),
    ]
    has = travel_lite(fixed=True)
    jobs.append(
        VerificationJob(
            has=has,
            prop=discount_policy_property_lite(has),
            config=config,
            name=f"{has.name}::lite-discount-policy",
            expected_holds=True,
        )
    )
    return jobs


def gallery_dir() -> Path:
    """The shipped ``.has`` scenario gallery (next to ``repro.workloads``)."""
    import repro.workloads

    return Path(repro.workloads.__file__).parent / "gallery"


def _gallery_jobs(quick: bool, config: VerifierConfig) -> list[VerificationJob]:
    # every gallery scenario is quick-sized by construction, so --quick
    # is the identity here; file-level config blocks win over the suite
    # default (the budget-boxed entries depend on that)
    from repro.dsl import directory_jobs

    return directory_jobs(gallery_dir(), default_config=config)


def _families_jobs(quick: bool, config: VerifierConfig) -> list[VerificationJob]:
    # the checked-in size sweep of repro.workloads.families; --quick
    # keeps only the smallest size of each family
    from repro.dsl import directory_jobs
    from repro.workloads.families import FAMILY_SIZES, build_family, families_dir

    jobs = directory_jobs(families_dir(), default_config=config)
    if quick:
        smallest = {
            build_family(family, min(sizes)).has.name
            for family, sizes in FAMILY_SIZES.items()
        }
        jobs = [job for job in jobs if job.name.split("::", 1)[0] in smallest]
    return jobs


_SUITES = {
    "table1": lambda quick, config: _table_jobs(table1_workload, quick, config),
    "table2": lambda quick, config: _table_jobs(table2_workload, quick, config),
    "travel": _travel_jobs,
    "gallery": _gallery_jobs,
    "families": _families_jobs,
    "mixed": lambda quick, config: (
        _table_jobs(table1_workload, quick, config)
        + _table_jobs(table2_workload, quick, config)
        + _travel_jobs(quick, config)
        + _gallery_jobs(quick, config)
        + _families_jobs(quick, config)
    ),
    "quick": lambda quick, config: _quick_jobs(config),
}


def suite_names() -> tuple[str, ...]:
    return tuple(_SUITES)


def build_suite(
    name: str,
    quick: bool = False,
    config: VerifierConfig | None = None,
) -> list[VerificationJob]:
    """The named suite's jobs; raises ``KeyError`` for unknown names.

    ``name`` may also be a filesystem path: a single ``.has`` scenario
    file (all its properties become jobs) or a directory of ``.has``
    files (sorted by file name).  File-level ``config`` blocks win over
    ``config``; scenarios without one run under the suite defaults.
    """
    if name not in _SUITES and _looks_like_path(name):
        from repro.dsl import directory_jobs, file_jobs

        path = Path(name)
        if path.suffix == ".has":
            if not path.is_file():
                raise KeyError(f"{name}: scenario file not found")
            return file_jobs(path, config or _DEFAULT_CONFIG)
        if path.is_dir():
            return directory_jobs(path, default_config=config or _DEFAULT_CONFIG)
        raise KeyError(f"{name}: not a .has file or a directory of them")
    try:
        builder = _SUITES[name]
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        # note: str(KeyError) adds repr quotes; CLI callers use .args[0]
        raise KeyError(f"unknown suite {name!r} (known: {known})") from None
    return builder(quick, config or _DEFAULT_CONFIG)


def _looks_like_path(name: str) -> bool:
    return (
        name.endswith(".has")
        or os.sep in name
        or (os.altsep is not None and os.altsep in name)
        or Path(name).is_dir()
    )
