"""Named job suites: a realistic verification traffic mix.

Suites assemble :class:`VerificationJob` batches from the Table 1 /
Table 2 workload families (``repro.workloads``) and the travel-booking
example (``repro.examples.travel``):

* ``table1`` — every Table-1 cell (3 schema classes × sets × verdict),
  plus navigation-chain and depth-3 variants;
* ``table2`` — the same grid with linear arithmetic (Table 2);
* ``travel`` — the travel-lite policy on the buggy and fixed variants,
  plus the full six-task system under a tight time budget (exercises
  graceful ``BudgetExceeded`` capture);
* ``mixed`` — the service's kitchen-sink traffic: all of the above;
* ``quick`` — a four-job smoke suite for CI.

``--quick`` (the ``quick`` flag here) trims every suite to its fastest
representatives so CI smoke runs stay in seconds.
"""

from __future__ import annotations

from dataclasses import replace

from repro.database.fkgraph import SchemaClass
from repro.examples.travel import (
    discount_policy_property,
    discount_policy_property_lite,
    travel_booking,
    travel_lite,
)
from repro.service.jobs import VerificationJob, job_from_spec
from repro.verifier.config import VerifierConfig
from repro.workloads import table1_workload, table2_workload

ALL_CLASSES = (
    SchemaClass.ACYCLIC,
    SchemaClass.LINEARLY_CYCLIC,
    SchemaClass.CYCLIC,
)

_DEFAULT_CONFIG = VerifierConfig(km_budget=60_000, time_limit_seconds=120.0)

#: Wall-clock budget for the deliberately-too-hard full travel job.
_HARD_JOB_TIME_LIMIT = 5.0


def _table_jobs(builder, quick: bool, config: VerifierConfig) -> list[VerificationJob]:
    classes = (SchemaClass.ACYCLIC,) if quick else ALL_CLASSES
    jobs = []
    for schema_class in classes:
        for with_sets in (False, True):
            for violated in (False, True):
                jobs.append(
                    job_from_spec(
                        builder(
                            schema_class,
                            depth=2,
                            with_sets=with_sets,
                            violated=violated,
                        ),
                        config,
                    )
                )
        if not quick:
            # navigation-chain and deeper-hierarchy variants
            chained = job_from_spec(builder(schema_class, depth=2, chain=2), config)
            jobs.append(replace(chained, name=f"{chained.name}+chain2"))
            jobs.append(job_from_spec(builder(schema_class, depth=3), config))
    return jobs


def _travel_jobs(quick: bool, config: VerifierConfig) -> list[VerificationJob]:
    jobs = []
    for fixed in (False, True):
        has = travel_lite(fixed)
        jobs.append(
            VerificationJob(
                has=has,
                prop=discount_policy_property_lite(has),
                config=config,
                name=f"{has.name}::lite-discount-policy",
                expected_holds=fixed,
            )
        )
    if not quick:
        # The full six-task policy check is beyond the default budgets;
        # run it under a tight wall-clock limit so the batch records a
        # budget_exceeded outcome instead of stalling.
        has = travel_booking(fixed=False)
        jobs.append(
            VerificationJob(
                has=has,
                prop=discount_policy_property(has),
                config=VerifierConfig(
                    km_budget=config.km_budget,
                    time_limit_seconds=_HARD_JOB_TIME_LIMIT,
                ),
                name=f"{has.name}::discount-policy (tight budget)",
            )
        )
    return jobs


def _quick_jobs(config: VerifierConfig) -> list[VerificationJob]:
    jobs = [
        job_from_spec(table1_workload(SchemaClass.ACYCLIC, depth=2), config),
        job_from_spec(
            table1_workload(SchemaClass.ACYCLIC, depth=2, violated=True), config
        ),
        job_from_spec(table2_workload(SchemaClass.CYCLIC, depth=2), config),
    ]
    has = travel_lite(fixed=True)
    jobs.append(
        VerificationJob(
            has=has,
            prop=discount_policy_property_lite(has),
            config=config,
            name=f"{has.name}::lite-discount-policy",
            expected_holds=True,
        )
    )
    return jobs


_SUITES = {
    "table1": lambda quick, config: _table_jobs(table1_workload, quick, config),
    "table2": lambda quick, config: _table_jobs(table2_workload, quick, config),
    "travel": _travel_jobs,
    "mixed": lambda quick, config: (
        _table_jobs(table1_workload, quick, config)
        + _table_jobs(table2_workload, quick, config)
        + _travel_jobs(quick, config)
    ),
    "quick": lambda quick, config: _quick_jobs(config),
}


def suite_names() -> tuple[str, ...]:
    return tuple(_SUITES)


def build_suite(
    name: str,
    quick: bool = False,
    config: VerifierConfig | None = None,
) -> list[VerificationJob]:
    """The named suite's jobs; raises ``KeyError`` for unknown names."""
    try:
        builder = _SUITES[name]
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        # note: str(KeyError) adds repr quotes; CLI callers use .args[0]
        raise KeyError(f"unknown suite {name!r} (known: {known})") from None
    return builder(quick, config or _DEFAULT_CONFIG)
