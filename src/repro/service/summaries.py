"""Persistent task-summary records: the cross-job incremental tier.

The engine memoizes ``R_T`` slices (Lemma 21's :class:`TaskSummary`)
per ``(task, input canonical key, β)`` within one ``Verifier``.  This
module makes those summaries durable and *shareable across jobs*:

* :func:`persistent_summary_key` — the content address of one summary:
  a hash of everything the summary's exploration can observe — the task
  subtree, the foreign-key-closed schema slice it can read, the full
  relation-name universe (anchoring reads names), the β obligations,
  the exploration-relevant config knobs, and the input canonical key.
  An edit anywhere *else* in the scenario leaves the key unchanged, so
  invalidation is by construction: a stale entry is simply never looked
  up again.
* :func:`encode_record` / :func:`decode_record` — an exact structural
  codec for a summary plus the transitive closure of the summaries it
  consulted, so installing one record reproduces the warm engine state
  (and the cold run's ``km_nodes``/``summaries`` totals) byte-for-byte.

The codec is deliberately *raw*: it serializes the constraint store's
internal fields (union-find parents, insertion-ordered children and
numeric constraints, node serials) rather than a semantic abstraction,
because downstream exploration is sensitive to exactly those details —
``absorb`` iterates live roots by ``repr`` (serial-ordered) and numeric
constraint list order drives Fourier–Motzkin projection shapes — and
byte-identical verdicts/witnesses cold-vs-warm are the test contract.

Decoding mirrors the :class:`~repro.service.cache.ResultCache.get`
contract: anything malformed — truncated file, foreign shape, a record
whose decoded output store no longer reproduces its stored canonical
key — is a miss (``None``), never an exception.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Iterable, Mapping

from repro.arith.constraints import Constraint, Rel
from repro.arith.linexpr import LinExpr
from repro.database.schema import DatabaseSchema
from repro.has.system import HAS
from repro.hltl.formulas import HLTLSpec
from repro.logic.terms import Variable, VarKind
from repro.service.serialize import (
    _frac_str,
    _parse_frac,
    _spec_to_dict,
    _task_to_dict,
    _variable_to_dict,
    canonical_json,
    content_hash,
    from_dict,
    schema_slice,
    spec_relation_names,
    task_relation_names,
)
from repro.symbolic.nodes import NULL, ConstNode, NavNode, Node, Sort, ValueNode, ZERO
from repro.symbolic.store import ConstraintStore
from repro.verifier.config import VerifierConfig

#: Bump when the persisted record layout or key material changes
#: incompatibly; the version participates in the content hash, so old
#: store directories simply stop hitting instead of mis-decoding.
SUMMARY_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# nodes
# ----------------------------------------------------------------------
def _encode_node(node: Node) -> Any:
    if node is NULL:
        return {"t": "null"}
    if isinstance(node, ValueNode):
        return {"t": "v", "s": node.serial, "k": node.sort.value}
    if isinstance(node, ConstNode):
        return {"t": "c", "v": _frac_str(node.value)}
    if isinstance(node, NavNode):
        return {"t": "n", "b": _encode_node(node.base), "a": node.attr}
    raise TypeError(f"not an encodable node: {node!r}")


def _decode_node(data: dict, memo: dict[Node, Node]) -> Node:
    """Decode a node, interning structurally-equal nodes to one object.

    ``find()`` walks the union-find with ``is`` comparisons, so every
    occurrence of a node in the decoded store must be the *same* object;
    the memo (seeded with the NULL and ZERO singletons the constructor
    registers) guarantees that, relying on the nodes' structural
    equality/hash.
    """
    tag = data["t"]
    if tag == "null":
        return NULL
    if tag == "v":
        serial = data["s"]
        if isinstance(serial, bool) or not isinstance(serial, int):
            raise ValueError(f"bad node serial: {serial!r}")
        node: Node = ValueNode(serial, Sort(data["k"]))
    elif tag == "c":
        node = ConstNode(_parse_frac(data["v"]))
    elif tag == "n":
        node = NavNode(_decode_node(data["b"], memo), data["a"])
    else:
        raise ValueError(f"not a node tag: {tag!r}")
    return memo.setdefault(node, node)


# ----------------------------------------------------------------------
# canonical-key tuples and β keys
# ----------------------------------------------------------------------
def encode_key(key: Any) -> Any:
    """A canonical-key tuple as nested JSON lists (scalars pass through)."""
    if isinstance(key, tuple):
        return [encode_key(part) for part in key]
    if key is None or isinstance(key, (str, bool, int, float)):
        return key
    raise TypeError(f"not an encodable key component: {key!r}")


def decode_key(data: Any) -> Any:
    """Inverse of :func:`encode_key`: nested lists back to tuples."""
    if isinstance(data, list):
        return tuple(decode_key(part) for part in data)
    if data is None or isinstance(data, (str, bool, int, float)):
        return data
    raise ValueError(f"not a decodable key component: {data!r}")


def encode_beta(beta_items: Iterable[tuple[HLTLSpec, bool]]) -> list:
    """A β key (frozenset of (spec, truth) pairs) in deterministic order."""
    encoded = [[_spec_to_dict(spec), bool(value)] for spec, value in beta_items]
    encoded.sort(key=lambda pair: canonical_json(pair[0]))
    return encoded


def decode_beta(data: list) -> frozenset:
    return frozenset((from_dict(spec), bool(value)) for spec, value in data)


def _encode_memo_key(key: tuple) -> dict:
    task_name, input_key, bkey = key
    return {
        "task": task_name,
        "input": encode_key(input_key),
        "beta": encode_beta(bkey),
    }


def _decode_memo_key(data: dict) -> tuple:
    return (data["task"], decode_key(data["input"]), decode_beta(data["beta"]))


# ----------------------------------------------------------------------
# constraint stores (exact structural codec)
# ----------------------------------------------------------------------
def _encode_constraint(constraint: Constraint) -> dict:
    # coefficient insertion order is preserved: it decides unknown
    # iteration during later renames and FM projections
    return {
        "rel": constraint.rel.value,
        "const": _frac_str(constraint.expr.constant),
        "terms": [
            [_encode_node(unknown), _frac_str(coeff)]
            for unknown, coeff in constraint.expr.coeffs.items()
        ],
    }


def _decode_constraint(data: dict, memo: dict[Node, Node]) -> Constraint:
    coeffs: dict[Node, Fraction] = {}
    for node_data, coeff in data["terms"]:
        coeffs[_decode_node(node_data, memo)] = _parse_frac(coeff)
    return Constraint(
        LinExpr(coeffs, _parse_frac(data["const"])), Rel(data["rel"])
    )


def encode_store(store: ConstraintStore) -> dict:
    """Serialize a store's raw internals, preserving every order that
    downstream exploration is sensitive to (dict insertion, numeric
    constraint list); set-shaped fields are emitted in sorted order for
    deterministic bytes."""
    enc = _encode_node
    return {
        "serial": store._serial,
        "binding": [
            [_variable_to_dict(var), enc(node)]
            for var, node in store._binding.items()
        ],
        "pins": [
            [encode_key(label), enc(node)] for label, node in store._pins.items()
        ],
        "parent": [
            [enc(node), enc(parent)] for node, parent in store._parent.items()
        ],
        "rank": [[enc(node), rank] for node, rank in store._rank.items()],
        "null": [[enc(node), status] for node, status in store._null.items()],
        "anchor": [
            [enc(node), anchor] for node, anchor in store._anchor.items()
        ],
        "excluded": [
            [enc(node), sorted(excluded)]
            for node, excluded in store._excluded.items()
        ],
        "children": [
            [enc(node), [[attr, enc(child)] for attr, child in kids.items()]]
            for node, kids in store._children.items()
        ],
        "diseqs": sorted(
            (
                sorted((enc(node) for node in pair), key=canonical_json)
                for pair in store._diseqs
            ),
            key=canonical_json,
        ),
        "numeric": [_encode_constraint(c) for c in store._numeric],
        "numeric_dirty": store._numeric_dirty,
        "numeric_sat": store._numeric_sat,
        "approximate": store.approximate,
    }


def decode_store(data: dict, schema: DatabaseSchema) -> ConstraintStore:
    """Rebuild a store object structurally identical to the encoded one
    (same node serials, same object-identity graph, same orders)."""
    memo: dict[Node, Node] = {NULL: NULL, ZERO: ZERO}
    dec = _decode_node
    store = ConstraintStore.__new__(ConstraintStore)
    store.schema = schema
    serial = data["serial"]
    if isinstance(serial, bool) or not isinstance(serial, int):
        raise ValueError(f"bad store serial: {serial!r}")
    store._serial = serial
    store._binding = {
        _decode_variable(var): dec(node, memo) for var, node in data["binding"]
    }
    store._pins = {decode_key(label): dec(node, memo) for label, node in data["pins"]}
    store._parent = {dec(n, memo): dec(p, memo) for n, p in data["parent"]}
    store._rank = {dec(n, memo): int(r) for n, r in data["rank"]}
    store._null = {dec(n, memo): _tristate(s) for n, s in data["null"]}
    store._anchor = {dec(n, memo): _optional_str(a) for n, a in data["anchor"]}
    store._excluded = {
        dec(n, memo): frozenset(str(name) for name in excluded)
        for n, excluded in data["excluded"]
    }
    store._children = {
        dec(n, memo): {str(attr): dec(child, memo) for attr, child in kids}
        for n, kids in data["children"]
    }
    store._diseqs = {
        frozenset(dec(n, memo) for n in pair) for pair in data["diseqs"]
    }
    store._numeric = [_decode_constraint(c, memo) for c in data["numeric"]]
    store._numeric_dirty = bool(data["numeric_dirty"])
    store._numeric_sat = bool(data["numeric_sat"])
    store.approximate = bool(data["approximate"])
    store._canon_cache = None
    return store


def _decode_variable(data: dict) -> Variable:
    return Variable(data["name"], VarKind(data["kind"]))


def _tristate(value: Any) -> bool | None:
    if value is None or isinstance(value, bool):
        return value
    raise ValueError(f"not a null status: {value!r}")


def _optional_str(value: Any) -> str | None:
    if value is None or isinstance(value, str):
        return value
    raise ValueError(f"not an anchor: {value!r}")


# ----------------------------------------------------------------------
# records: one summary plus the closure of the summaries it consulted
# ----------------------------------------------------------------------
def encode_record(
    closure: tuple, summaries: Mapping, closures: Mapping[tuple, tuple]
) -> dict:
    """Serialize the summary closure ``closure`` (dependency order, the
    root summary last) from the engine's live memo.  Dependencies are
    emitted as indices into the entry list — closures are transitively
    closed, so every dependency is itself an entry."""
    index = {key: position for position, key in enumerate(closure)}
    entries = []
    for key in closure:
        summary = summaries[key]
        entry = _encode_memo_key(key)
        entry["outputs"] = [
            [encode_key(out_key), encode_store(out)]
            for out_key, out in summary.outputs.items()
        ]
        entry["nonreturning"] = summary.nonreturning
        entry["km_nodes"] = summary.km_nodes
        entry["deps"] = [index[dep] for dep in closures[key]]
        entries.append(entry)
    return {"v": SUMMARY_SCHEMA_VERSION, "root": len(entries) - 1, "entries": entries}


def decode_record(
    record: Any, schema: DatabaseSchema
) -> tuple[tuple, list[tuple]] | None:
    """Decode a persisted record into ``(root_key, entries)`` where each
    entry is ``(memo_key, outputs, nonreturning, km_nodes, deps)``, in
    installation (dependency) order with the root summary last.

    Returns ``None`` for anything malformed — wrong version, truncated
    structure, dependency indices out of order, or an output store whose
    decoded form fails to reproduce its stored canonical key (the
    integrity check that makes hand-edited or stale-format store files a
    miss rather than a soundness hazard).
    """
    try:
        if not isinstance(record, dict) or record.get("v") != SUMMARY_SCHEMA_VERSION:
            return None
        raw_entries = record["entries"]
        if record["root"] != len(raw_entries) - 1 or not raw_entries:
            return None
        keys: list[tuple] = []
        entries: list[tuple] = []
        for position, raw in enumerate(raw_entries):
            key = _decode_memo_key(raw)
            outputs: dict[tuple, ConstraintStore] = {}
            for out_key_data, store_data in raw["outputs"]:
                out_key = decode_key(out_key_data)
                out = decode_store(store_data, schema)
                if out.canonical_key() != out_key:
                    return None
                outputs[out_key] = out
            km_nodes = raw["km_nodes"]
            if isinstance(km_nodes, bool) or not isinstance(km_nodes, int):
                return None
            if km_nodes < 0:
                return None
            deps = []
            for dep_index in raw["deps"]:
                if (
                    isinstance(dep_index, bool)
                    or not isinstance(dep_index, int)
                    or not 0 <= dep_index <= position
                ):
                    return None
                deps.append(keys[dep_index] if dep_index < position else key)
            keys.append(key)
            entries.append(
                (key, outputs, bool(raw["nonreturning"]), km_nodes, tuple(deps))
            )
        return keys[-1], entries
    except Exception:
        return None


# ----------------------------------------------------------------------
# the persistent key: a content hash of the summary's observable world
# ----------------------------------------------------------------------
#: Config fields a summary's exploration can observe.  Deliberately
#: excluded: ``max_summaries`` (a reader-side memo cap, re-enforced at
#: install time), ``successor_memo_limit`` / ``child_input_memo_limit``
#: (observationally invisible memo bounds), ``time_limit_seconds``
#: (deadline aborts are never persisted), and the witness knobs (witness
#: extraction happens at the root, never inside a summary).
_KEY_CONFIG_FIELDS = (
    "km_budget",
    "max_condition_branches",
    "max_outputs_per_summary",
    "km_order",
)


def _anchors_in_key(input_key: tuple) -> set[str]:
    """Relation anchors appearing in a store canonical key (each class
    entry carries its anchor at index 2)."""
    anchors: set[str] = set()
    for entry in input_key[0]:
        anchor = entry[2]
        if anchor is not None:
            anchors.add(anchor)
    return anchors


def persistent_summary_key(
    has: HAS,
    task_name: str,
    input_key: tuple,
    beta_items: Iterable[tuple[HLTLSpec, bool]],
    config: VerifierConfig,
) -> str:
    """The content address of one ``(task, input, β)`` summary.

    Hashes the task *subtree*, the FK-closed schema slice reachable from
    the subtree's conditions + the β obligations + the input type's
    anchors, the sorted relation-name universe (anchoring enumerates
    names), the β key, the exploration-relevant config fields, and the
    input canonical key.  Edits anywhere else in the scenario leave the
    hash unchanged — that is the whole incremental-reuse contract.
    """
    beta_items = list(beta_items)
    names = task_relation_names(has.task(task_name))
    for spec, _value in beta_items:
        names |= spec_relation_names(spec)
    names |= _anchors_in_key(input_key)
    material = {
        "v": SUMMARY_SCHEMA_VERSION,
        "task": _task_to_dict(has.task(task_name)),
        "schema": {
            "names": sorted(has.database.names),
            "slice": schema_slice(has.database, names),
        },
        "beta": encode_beta(beta_items),
        "config": {
            name: getattr(config, name) for name in _KEY_CONFIG_FIELDS
        },
        "input": encode_key(input_key),
    }
    return content_hash(material)
