"""Multiprocess job execution.

Jobs cross the process boundary in their canonical serialized form (not
pickled model objects), so workers rebuild the HAS and property from
plain JSON and return plain :class:`JobOutcome` dicts.  Budget and time
limits are enforced *inside* the verifier (``VerifierConfig.km_budget``
/ ``time_limit_seconds`` → :class:`~repro.errors.BudgetExceeded`), and a
worker converts them — and any other specification error — into a
structured outcome instead of poisoning the batch.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Sequence

from repro.errors import BudgetExceeded
from repro.obs import trace
from repro.obs.attribution import ATTRIBUTION
from repro.perf.counters import COUNTERS
from repro.perf.phases import PHASES
from repro.service.jobs import (
    JobOutcome,
    STATUS_BUDGET_EXCEEDED,
    STATUS_ERROR,
    VerificationJob,
)


def _resolve_summary_store(summary_store):
    """A usable :class:`~repro.service.cache.SummaryStore` from either a
    live store object (shared in-process) or a directory path (workers in
    other processes rebuild their own handle over the shared directory);
    None stays None (reuse off)."""
    if summary_store is None or hasattr(summary_store, "get"):
        return summary_store
    from repro.service.cache import SummaryStore

    return SummaryStore(summary_store)


def execute_payload(payload: dict, summary_store=None) -> dict:
    """Run one serialized job to a serialized outcome (worker entry point;
    module-level so it pickles under the spawn start method).

    Nothing short of interpreter death escapes as an exception: budget
    exhaustion, malformed payloads, and unexpected verifier errors all
    come back as structured outcomes so one job can never poison a batch.

    Every outcome carries the executing process's cache-counter and
    phase-timer deltas (``JobOutcome.counters`` / ``.phases``) — workers
    die with their process-global ``COUNTERS``, so the snapshot riding
    the outcome is the only way suite-level hit rates stay correct under
    ``workers>1``.

    ``summary_store`` (a store object, or a directory path when crossing
    the process boundary) enables the persistent cross-job summary tier.
    """
    started = time.monotonic()
    counters_baseline = COUNTERS.snapshot()
    phases_baseline = PHASES.snapshot()
    attribution_baseline = ATTRIBUTION.snapshot()
    name = str(payload.get("name", "?")) if isinstance(payload, dict) else "?"
    key = str(payload.get("key", "")) if isinstance(payload, dict) else ""
    expected = payload.get("expected_holds") if isinstance(payload, dict) else None
    expected_status = (
        payload.get("expected_status") if isinstance(payload, dict) else None
    )
    trace.event("job_start", name=name, key=key)
    try:
        from repro.verifier.engine import Verifier

        job = VerificationJob.from_payload(payload)
        name, key = job.name, job.key()
        expected, expected_status = job.expected_holds, job.expected_status
        result = Verifier(
            job.has, job.config, summary_store=_resolve_summary_store(summary_store)
        ).verify(job.prop)
    except BudgetExceeded as exc:
        outcome = JobOutcome(
            name=name,
            key=key,
            status=STATUS_BUDGET_EXCEEDED,
            km_nodes=exc.states_explored,
            wall_seconds=time.monotonic() - started,
            error=str(exc),
            expected_holds=expected,
            expected_status=expected_status,
        )
    except Exception as exc:  # noqa: BLE001 — converted to a structured outcome
        outcome = JobOutcome(
            name=name,
            key=key,
            status=STATUS_ERROR,
            wall_seconds=time.monotonic() - started,
            error=f"{type(exc).__name__}: {exc}",
            expected_holds=expected,
            expected_status=expected_status,
        )
    else:
        # wall_seconds measures verification; concretization runs after
        # the verdict on its own budget and must not skew the stats
        verify_seconds = time.monotonic() - started
        witness_json = None
        if not result.holds and job.config.concretize_witnesses:
            witness_json = _concretize_witness(job, result)
        outcome = JobOutcome.from_result(job, result, wall_seconds=verify_seconds)
        outcome.witness_json = witness_json
    outcome.total_seconds = time.monotonic() - started
    outcome.counters = COUNTERS.since(counters_baseline)
    outcome.phases = PHASES.since(phases_baseline)
    outcome.attribution = ATTRIBUTION.since(attribution_baseline)
    trace.event(
        "job_finish",
        name=outcome.name,
        key=outcome.key,
        status=outcome.status,
        km_nodes=outcome.km_nodes,
        wall_seconds=outcome.wall_seconds,
        total_seconds=outcome.total_seconds,
        counters=outcome.counters,
        phases=outcome.phases,
        attribution=outcome.attribution,
    )
    return outcome.to_dict()


def _concretize_witness(job: VerificationJob, result) -> dict:
    """The concrete (or explicitly non-concretizable) witness JSON for a
    VIOLATED result; confirmed witnesses also enrich the result's witness
    steps with bindings.  Never raises — a concretization failure must
    not poison the verdict it explains."""
    from repro.witness import ConcreteWitness, attach_to_result, concretize

    try:
        witness = concretize(
            job.has,
            job.prop,
            result,
            time_budget=job.config.time_limit_seconds,
        )
        if isinstance(witness, ConcreteWitness) and witness.confirmed:
            attach_to_result(result, witness)
        return witness.to_dict()
    except Exception as exc:  # noqa: BLE001 — diagnostics, not verdicts
        return {
            "status": "non_concretizable",
            "kind": result.witness_kind,
            "property": result.property_name,
            "reason": f"{type(exc).__name__}: {exc}",
        }


def execute_job(job: VerificationJob, summary_store=None) -> JobOutcome:
    """In-process execution of one job (the ``workers=1`` path)."""
    return JobOutcome.from_dict(
        execute_payload(job.payload(), summary_store=summary_store)
    )


def run_payloads(
    payloads: Sequence[dict],
    workers: int = 1,
    on_outcome: Callable[[int, dict], None] | None = None,
    summary_store=None,
) -> list[dict]:
    """Fan serialized jobs across a process pool; results in input order.

    ``on_outcome(index, outcome_dict)`` fires as each job finishes (out of
    order under parallelism) — the CLI uses it for live progress.

    With ``summary_store``, the serial path shares one live store (its
    in-memory tier carries summaries from job to job even without a
    directory); parallel workers get the store's *directory* instead —
    spawn processes can't share the dict tier, so a memory-only store
    stays parent-only under ``workers>1``.
    """
    store = _resolve_summary_store(summary_store)
    if workers <= 1 or len(payloads) <= 1:
        results = []
        for index, payload in enumerate(payloads):
            outcome = execute_payload(payload, summary_store=store)
            if on_outcome is not None:
                on_outcome(index, outcome)
            results.append(outcome)
        return results

    store_dir = (
        str(store.directory)
        if store is not None and store.directory is not None
        else None
    )
    results: list[dict | None] = [None] * len(payloads)
    max_workers = min(workers, len(payloads))
    with ProcessPoolExecutor(max_workers=max_workers) as executor:
        pending = {
            executor.submit(execute_payload, payload, store_dir): index
            for index, payload in enumerate(payloads)
        }
        # worker processes never write the parent's trace (the tracer is
        # PID-guarded), so re-emit per-job events here from the outcome
        # dicts the workers sent back
        for payload in payloads:
            trace.event(
                "job_submit",
                name=str(payload.get("name", "?")),
                key=str(payload.get("key", "")),
            )
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                outcome = future.result()
                results[index] = outcome
                trace.event(
                    "job_finish",
                    name=outcome.get("name", "?"),
                    key=outcome.get("key", ""),
                    status=outcome.get("status", "?"),
                    km_nodes=outcome.get("km_nodes", 0),
                    wall_seconds=outcome.get("wall_seconds", 0.0),
                    total_seconds=outcome.get("total_seconds", 0.0),
                    counters=outcome.get("counters"),
                    phases=outcome.get("phases"),
                    attribution=outcome.get("attribution"),
                )
                if on_outcome is not None:
                    on_outcome(index, outcome)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def run_jobs(
    jobs: Iterable[VerificationJob],
    workers: int = 1,
    on_outcome: Callable[[int, dict], None] | None = None,
    summary_store=None,
) -> list[JobOutcome]:
    """Convenience wrapper: jobs in, outcomes (input order) out."""
    payloads = [job.payload() for job in jobs]
    return [
        JobOutcome.from_dict(data)
        for data in run_payloads(
            payloads,
            workers=workers,
            on_outcome=on_outcome,
            summary_store=summary_store,
        )
    ]
