"""Verification jobs: content-addressed units of batch work.

A :class:`VerificationJob` bundles a system, a property, and the budget
configuration under which to verify it.  Its :meth:`VerificationJob.key`
is a SHA-256 over the canonical serialization of all three, so two jobs
share a key exactly when they would produce the same verdict — the
invariant the result cache relies on.

A :class:`JobOutcome` is the plain-data record of one job's run: verdict,
witness, search statistics, and provenance (cache hit, worker error).  It
serializes to JSON for the cache, the JSONL export, and cross-process
transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.has.system import HAS
from repro.hltl.formulas import HLTLProperty
from repro.service.serialize import canonical_json, content_hash, from_dict, to_dict
from repro.verifier.config import VerifierConfig
from repro.verifier.result import VerificationResult

#: Job status values, in report order.
STATUS_HOLDS = "holds"
STATUS_VIOLATED = "violated"
STATUS_BUDGET_EXCEEDED = "budget_exceeded"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class VerificationJob:
    """One unit of verification work: ``(Γ, φ, budgets)``."""

    has: HAS
    prop: HLTLProperty
    config: VerifierConfig = field(default_factory=VerifierConfig)
    name: str = ""
    expected_holds: bool | None = None
    expected_status: str | None = None
    """The full-status expectation (any of the four STATUS_* values) —
    unlike the boolean ``expected_holds`` it can also pin
    ``budget_exceeded`` (the DSL's ``expect:`` verdicts).  Derived from
    ``expected_holds`` when not given explicitly."""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.has.name}::{self.prop.name}"
            )
        if self.expected_status is None and self.expected_holds is not None:
            object.__setattr__(
                self,
                "expected_status",
                STATUS_HOLDS if self.expected_holds else STATUS_VIOLATED,
            )
        if self.expected_status is not None and self.expected_status not in (
            STATUS_HOLDS,
            STATUS_VIOLATED,
            STATUS_BUDGET_EXCEEDED,
            STATUS_ERROR,
        ):
            raise SpecificationError(
                f"{self.name}: invalid expected_status {self.expected_status!r}"
            )
        object.__setattr__(self, "_key", None)

    # ------------------------------------------------------------------
    # content addressing
    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """The job's wire form: everything a worker needs, as plain JSON.
        The precomputed key rides along so workers never re-hash."""
        return {
            "has": to_dict(self.has),
            "prop": to_dict(self.prop),
            "config": to_dict(self.config),
            "name": self.name,
            "expected_holds": self.expected_holds,
            "expected_status": self.expected_status,
            "key": self.key(),
        }

    def key(self) -> str:
        """Content-addressed key: identical (system, property, config)
        triples hash identically regardless of job name or expectation.
        Serialization and hashing run once per instance."""
        if self._key is None:
            object.__setattr__(
                self,
                "_key",
                content_hash(
                    {
                        "has": to_dict(self.has),
                        "prop": to_dict(self.prop),
                        "config": to_dict(self.config),
                    }
                ),
            )
        return self._key

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "VerificationJob":
        job = VerificationJob(
            has=from_dict(payload["has"]),
            prop=from_dict(payload["prop"]),
            config=from_dict(payload["config"]),
            name=payload.get("name", ""),
            expected_holds=payload.get("expected_holds"),
            expected_status=payload.get("expected_status"),
        )
        if payload.get("key"):
            object.__setattr__(job, "_key", payload["key"])
        return job

    def with_config(self, config: VerifierConfig) -> "VerificationJob":
        return replace(self, config=config)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VerificationJob({self.name}, key={self.key()[:12]})"


def job_from_spec(spec, config: VerifierConfig | None = None) -> VerificationJob:
    """Build a job from a :class:`~repro.workloads.WorkloadSpec`."""
    return VerificationJob(
        has=spec.has,
        prop=spec.prop,
        config=config or VerifierConfig(),
        name=spec.name,
        expected_holds=spec.expected_holds,
    )


@dataclass
class JobOutcome:
    """The structured result of running (or cache-hitting) one job."""

    name: str
    key: str
    status: str
    holds: bool | None = None
    witness_kind: str = ""
    witness: list[str] = field(default_factory=list)
    loop_start: int | None = None
    witness_json: dict | None = None
    """The concrete counterexample (``repro.witness`` JSON): a validated
    database + run for VIOLATED verdicts, or a ``non_concretizable``
    record with the reason; None when concretization is disabled or the
    property holds."""
    km_nodes: int = 0
    summaries: int = 0
    wall_seconds: float = 0.0
    cache_hit: bool = False
    error: str = ""
    expected_holds: bool | None = None
    expected_status: str | None = None
    stats: dict | None = None
    """The full :class:`~repro.verifier.result.VerificationStats` dict
    (``verify --json`` exposes it); None for budget/error outcomes and
    records predating the field."""
    counters: dict | None = None
    """This job's :mod:`repro.perf.counters` deltas, snapshotted in the
    process that ran it — the worker's, under ``workers>1`` — so batch
    aggregation sees every process's cache traffic, not just the
    parent's.  None on cache hits (the job did no work this run)."""
    phases: dict | None = None
    """This job's sampled per-phase timings
    (:meth:`repro.perf.phases.PhaseTimers.since` delta), captured like
    ``counters``; covers verification *and* witness concretization."""
    attribution: dict | None = None
    """Per-(task, service) search-cost attribution
    (:meth:`repro.obs.attribution.AttributionRegistry.since` delta),
    captured like ``counters``; None on cache hits."""
    total_seconds: float = 0.0
    """Wall clock for the whole job including witness concretization
    (``wall_seconds`` measures verification only)."""

    @property
    def ok(self) -> bool:
        """True when the job produced a verdict (held or violated)."""
        return self.status in (STATUS_HOLDS, STATUS_VIOLATED)

    @property
    def as_expected(self) -> bool | None:
        """Verdict vs. the job's expectation; None when no expectation.

        A full-status expectation compares statuses directly — so a
        ``budget_exceeded`` expectation (the DSL's budget-boxed
        scenarios) is *enforced*: finishing within budget flips the job
        to UNEXPECTED.  The boolean ``expected_holds`` keeps its legacy
        contract (undecided outcomes are not judged)."""
        if self.expected_status is not None:
            return self.status == self.expected_status
        if self.expected_holds is None or not self.ok:
            return None
        return self.holds == self.expected_holds

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "key": self.key,
            "status": self.status,
            "holds": self.holds,
            "witness_kind": self.witness_kind,
            "witness": list(self.witness),
            "loop_start": self.loop_start,
            "witness_json": self.witness_json,
            "km_nodes": self.km_nodes,
            "summaries": self.summaries,
            "wall_seconds": self.wall_seconds,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "expected_holds": self.expected_holds,
            "expected_status": self.expected_status,
            "stats": self.stats,
            "counters": self.counters,
            "phases": self.phases,
            "attribution": self.attribution,
            "total_seconds": self.total_seconds,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "JobOutcome":
        return JobOutcome(
            name=data["name"],
            key=data["key"],
            status=data["status"],
            holds=data.get("holds"),
            witness_kind=data.get("witness_kind", ""),
            witness=list(data.get("witness", ())),
            loop_start=data.get("loop_start"),
            witness_json=data.get("witness_json"),
            km_nodes=data.get("km_nodes", 0),
            summaries=data.get("summaries", 0),
            wall_seconds=data.get("wall_seconds", 0.0),
            cache_hit=data.get("cache_hit", False),
            error=data.get("error", ""),
            expected_holds=data.get("expected_holds"),
            expected_status=data.get("expected_status"),
            stats=data.get("stats"),
            counters=data.get("counters"),
            phases=data.get("phases"),
            attribution=data.get("attribution"),
            total_seconds=data.get("total_seconds", 0.0),
        )

    def semantic_dict(self) -> dict:
        """The run-independent slice of the outcome: everything except
        timing, metrics, and cache provenance.  Two runs of the same job —
        serial or parallel, cached or not — must agree on this dict
        exactly.  ``counters`` are excluded because per-job cache traffic
        depends on what ran earlier in the same process; ``stats``,
        ``phases``, and ``attribution`` because they embed sampled wall
        seconds."""
        data = self.to_dict()
        del data["wall_seconds"]
        del data["cache_hit"]
        del data["stats"]
        del data["counters"]
        del data["phases"]
        del data["attribution"]
        del data["total_seconds"]
        return data

    def semantic_bytes(self) -> bytes:
        """Canonical bytes of :meth:`semantic_dict` (parity comparisons)."""
        return canonical_json(self.semantic_dict()).encode("ascii")

    @staticmethod
    def from_result(
        job: VerificationJob, result: VerificationResult, wall_seconds: float
    ) -> "JobOutcome":
        return JobOutcome(
            name=job.name,
            key=job.key(),
            status=STATUS_HOLDS if result.holds else STATUS_VIOLATED,
            holds=result.holds,
            witness_kind=result.witness_kind,
            witness=[repr(step) for step in result.witness],
            loop_start=result.loop_start,
            km_nodes=result.stats.km_nodes,
            summaries=result.stats.summaries,
            wall_seconds=wall_seconds,
            expected_holds=job.expected_holds,
            expected_status=job.expected_status,
            stats=result.stats.to_dict(),
        )

    def one_line(self) -> str:
        """Compact per-job report line."""
        if self.status == STATUS_HOLDS:
            verdict = "HOLDS   "
        elif self.status == STATUS_VIOLATED:
            verdict = "VIOLATED"
        elif self.status == STATUS_BUDGET_EXCEEDED:
            verdict = "BUDGET  "
        else:
            verdict = "ERROR   "
        flags = []
        if self.cache_hit:
            flags.append("cached")
        if self.witness_kind:
            flags.append(self.witness_kind)
        if self.witness_json:
            concrete = self.witness_json.get("status", "")
            flags.append("concrete" if concrete == "confirmed" else concrete)
        if self.as_expected is False:
            flags.append("UNEXPECTED")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return (
            f"{verdict} {self.name:48s} "
            f"km={self.km_nodes:<7d} {self.wall_seconds:7.3f}s{suffix}"
        )
