"""Batch orchestration: cache lookup → parallel execution → report.

``run_batch`` is the service's main API: it resolves each job's content
key against the cache, fans the misses across the worker pool, stores
fresh results back, and returns a :class:`BatchReport` with per-job
outcomes (in job order), merged search statistics, and JSONL export.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.obs import trace
from repro.obs.attribution import merge_attribution
from repro.perf.counters import PerfCounters
from repro.service.cache import ResultCache
from repro.service.jobs import (
    JobOutcome,
    STATUS_BUDGET_EXCEEDED,
    STATUS_ERROR,
    STATUS_VIOLATED,
    VerificationJob,
)
from repro.service.pool import run_payloads
from repro.verifier.result import VerificationStats


@dataclass
class BatchReport:
    """Everything a batch run produced, in the order jobs were given."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def violations(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_VIOLATED)

    @property
    def budget_exceeded(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_BUDGET_EXCEEDED)

    @property
    def errors(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_ERROR)

    @property
    def unexpected(self) -> list[JobOutcome]:
        """Jobs whose verdict contradicts their declared expectation."""
        return [o for o in self.outcomes if o.as_expected is False]

    @property
    def concretized(self) -> int:
        """Violations carrying a confirmed concrete counterexample."""
        return sum(
            1
            for o in self.outcomes
            if o.witness_json is not None
            and o.witness_json.get("status") == "confirmed"
        )

    @property
    def non_concretizable(self) -> list[JobOutcome]:
        """Violations whose attempted concretization did not confirm.
        Jobs where concretization never ran (disabled by config, or
        cached outcomes predating the feature) are not failures and are
        excluded."""
        return [
            o
            for o in self.outcomes
            if o.status == STATUS_VIOLATED
            and o.witness_json is not None
            and o.witness_json.get("status") != "confirmed"
        ]

    def merged_stats(self) -> VerificationStats:
        """Search statistics summed across the batch."""
        stats = VerificationStats()
        for outcome in self.outcomes:
            per_job = outcome.stats or {}
            stats.merge(
                VerificationStats(
                    km_nodes=outcome.km_nodes,
                    summaries=outcome.summaries,
                    wall_seconds=outcome.wall_seconds,
                    summary_hits=per_job.get("summary_hits", 0),
                    summaries_reused=per_job.get("summaries_reused", 0),
                    km_nodes_reused=per_job.get("km_nodes_reused", 0),
                    fm_seconds=per_job.get("fm_seconds", 0.0),
                    canon_seconds=per_job.get("canon_seconds", 0.0),
                    expand_seconds=per_job.get("expand_seconds", 0.0),
                )
            )
        return stats

    def merged_counters(self) -> dict[str, int]:
        """Cache hit/miss counters summed across every process that did
        work this run — each live outcome carries the deltas snapshotted
        in the process that executed it (``JobOutcome.counters``), so
        worker-process cache traffic is counted even though the workers'
        ``COUNTERS`` died with them.  Cache hits are excluded: their
        stored deltas describe the run that populated the cache, not
        this one."""
        totals: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.cache_hit or not outcome.counters:
                continue
            for name, value in outcome.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def merged_rates(self) -> dict[str, float | None]:
        """Suite-level cache hit rates (None = never consulted)."""
        return PerfCounters.rates(self.merged_counters())

    def merged_phases(self) -> dict[str, dict]:
        """Sampled per-phase timings summed across live outcomes (same
        exclusion rules as :meth:`merged_counters`)."""
        totals: dict[str, dict] = {}
        for outcome in self.outcomes:
            if outcome.cache_hit or not outcome.phases:
                continue
            for name, entry in outcome.phases.items():
                bucket = totals.setdefault(
                    name, {"calls": 0, "timed": 0, "seconds": 0.0}
                )
                bucket["calls"] += entry.get("calls", 0)
                bucket["timed"] += entry.get("timed", 0)
                bucket["seconds"] += entry.get("seconds", 0.0)
        return totals

    def merged_attribution(self) -> dict[str, dict]:
        """Per-(task, service) search attribution summed across live
        outcomes (same exclusion rules as :meth:`merged_counters`)."""
        totals: dict[str, dict] = {}
        for outcome in self.outcomes:
            if outcome.cache_hit or not outcome.attribution:
                continue
            merge_attribution(totals, outcome.attribution)
        return totals

    # ------------------------------------------------------------------
    # rendering / export
    # ------------------------------------------------------------------
    def format_report(self) -> str:
        lines = [outcome.one_line() for outcome in self.outcomes]
        stats = self.merged_stats()
        lines.append("-" * 72)
        lines.append(
            f"{self.total} jobs, {self.cache_hits} cache hits, "
            f"{self.violations} violated ({self.concretized} concrete), "
            f"{self.budget_exceeded} budget-exceeded, "
            f"{self.errors} errors"
        )
        lines.append(
            f"workers={self.workers}  batch wall {self.wall_seconds:.3f}s  "
            f"job wall Σ {stats.wall_seconds:.3f}s  "
            f"km nodes Σ {stats.km_nodes}  summaries Σ {stats.summaries}"
        )
        rates = self.merged_rates()
        if any(rate is not None for rate in rates.values()):
            rendered = "  ".join(
                f"{cache} {'n/a' if rate is None else format(rate, '.1%')}"
                for cache, rate in sorted(rates.items())
            )
            lines.append(f"cache rates (all processes): {rendered}")
        if self.unexpected:
            lines.append(
                "UNEXPECTED verdicts: "
                + ", ".join(o.name for o in self.unexpected)
            )
        return "\n".join(lines)

    def to_jsonl(self, path: str | Path) -> None:
        """One JSON object per job, plus a trailing aggregate record."""
        path = Path(path)
        with path.open("w") as handle:
            for outcome in self.outcomes:
                handle.write(json.dumps(outcome.to_dict(), sort_keys=True) + "\n")
            stats = self.merged_stats()
            handle.write(
                json.dumps(
                    {
                        "aggregate": True,
                        "total": self.total,
                        "cache_hits": self.cache_hits,
                        "violations": self.violations,
                        "concretized": self.concretized,
                        "budget_exceeded": self.budget_exceeded,
                        "errors": self.errors,
                        "workers": self.workers,
                        "wall_seconds": self.wall_seconds,
                        "km_nodes": stats.km_nodes,
                        "summaries": stats.summaries,
                        # cross-process metrics: counters/phases from every
                        # executing process, rates with null = unconsulted
                        "counters": self.merged_counters(),
                        "rates": self.merged_rates(),
                        "phases": self.merged_phases(),
                        "attribution": self.merged_attribution(),
                    },
                    sort_keys=True,
                )
                + "\n"
            )


def parse_shard(spec: str) -> tuple[int, int]:
    """Parse a ``k/N`` shard spec (1-based) into ``(index, count)``.

    Raises ``ValueError`` with a usable message on anything malformed —
    the CLI surfaces it verbatim."""
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"invalid shard spec {spec!r}: expected k/N, e.g. 2/4"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"invalid shard spec {spec!r}: need 1 <= k <= N"
        )
    return index, count


def shard_jobs(
    jobs: Sequence[VerificationJob], index: int, count: int
) -> list[VerificationJob]:
    """The slice of ``jobs`` owned by shard ``index`` of ``count``
    (1-based), preserving order.

    Assignment hashes the job's *content key* (``int(key, 16) % count``),
    not its position: it is deterministic across processes and machines,
    independent of suite ordering, stable under PYTHONHASHSEED, and —
    because identical jobs share a key — never splits duplicates across
    shards, so each shard's internal dedup/cache behavior matches the
    unsharded run's.  Content hashes are uniform, so shards are balanced
    in expectation (by job count; not by cost — a suite whose cost is
    concentrated in one job gains nothing from sharding it)."""
    return [
        job for job in jobs if int(job.key(), 16) % count == index - 1
    ]


def merge_shard_jsonl(
    jobs: Sequence[VerificationJob],
    shard_paths: Sequence[str | Path],
    workers: int = 1,
) -> BatchReport:
    """Reassemble one :class:`BatchReport` from per-shard JSONL exports.

    ``jobs`` is the *full* suite job list (the merge needs it to restore
    suite order and to verify completeness); ``shard_paths`` are the
    ``--jsonl`` files the ``--shard k/N`` runs wrote.  Per-job records
    are matched to suite positions by content key — occurrences of a
    duplicated key are consumed in order, which is exactly how the shard
    that owned the key emitted them.  Raises ``ValueError`` when a job
    has no record (a shard is missing or incomplete) or a record belongs
    to no job (shards from a different suite).

    The merged report's semantic content — verdicts, witnesses, km
    counts, per-job semantic bytes — is byte-identical to an unsharded
    run's; scheduling metadata (wall seconds, per-run cache hits) is
    not, which is why the parity contract compares
    :meth:`~repro.service.jobs.JobOutcome.semantic_bytes`
    (tests/test_parallel.py)."""
    from collections import deque

    pending: dict[str, deque] = {}
    for path in shard_paths:
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("aggregate"):
                    continue
                pending.setdefault(data["key"], deque()).append(data)
    outcomes: list[JobOutcome] = []
    for job in jobs:
        queue = pending.get(job.key())
        if not queue:
            raise ValueError(
                f"no shard record for job {job.name!r} "
                f"(key {job.key()[:12]}…): shard outputs incomplete?"
            )
        outcomes.append(JobOutcome.from_dict(queue.popleft()))
    leftover = sum(len(queue) for queue in pending.values())
    if leftover:
        raise ValueError(
            f"{leftover} shard record(s) match no job in this suite: "
            "shard outputs from a different suite?"
        )
    return BatchReport(outcomes=outcomes, workers=workers)


def run_batch(
    jobs: Sequence[VerificationJob],
    workers: int = 1,
    cache: ResultCache | None = None,
    on_outcome: Callable[[JobOutcome], None] | None = None,
    summary_store=None,
) -> BatchReport:
    """Run a batch of jobs, consulting and filling ``cache`` by content key.

    Jobs sharing a content key are verified once; every occurrence after
    the first is served from the cache (the first from the live run).
    ``on_outcome`` fires per finished job, cache hits included.
    ``summary_store`` (a :class:`~repro.service.cache.SummaryStore` or a
    directory path) additionally enables sub-job reuse: task summaries
    persist across jobs — and across batch invocations, when backed by a
    directory — keyed by task-subtree content, so edited scenarios only
    re-explore the subtrees the edit can reach.
    """
    started = time.monotonic()
    keys = [job.key() for job in jobs]
    outcomes: list[JobOutcome | None] = [None] * len(jobs)
    # bracket the batch for trace listeners: the heartbeat reads the
    # total from here for its [k/N] counters and renders the final suite
    # summary from suite_done (cache hits never emit job events, so
    # listeners can't infer completion from job_finish counts alone)
    trace.event("suite_start", total=len(jobs), workers=workers)

    # cache pass — also dedupe identical jobs within the batch
    miss_indices: list[int] = []
    scheduled: dict[str, int] = {}
    duplicates: dict[int, int] = {}
    for index, (job, key) in enumerate(zip(jobs, keys)):
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            # provenance is per-request: keep this job's name/expectation;
            # drop the stored metrics — a cache hit did no work this run,
            # so its counters/phases describe the run that filled the cache
            cached.name = job.name
            cached.expected_holds = job.expected_holds
            cached.expected_status = job.expected_status
            cached.counters = None
            cached.phases = None
            cached.attribution = None
            outcomes[index] = cached
            if on_outcome is not None:
                on_outcome(cached)
        elif key in scheduled:
            duplicates[index] = scheduled[key]
        else:
            scheduled[key] = index
            miss_indices.append(index)

    if miss_indices:
        payloads = [jobs[i].payload() for i in miss_indices]

        def deliver(position: int, data: dict) -> None:
            index = miss_indices[position]
            outcome = JobOutcome.from_dict(data)
            outcomes[index] = outcome
            # Only verdicts are cacheable: budget_exceeded depends on the
            # machine/load (wall-clock deadlines) and errors may be
            # transient, so neither may be served as the job's answer later.
            if cache is not None and outcome.ok:
                cache.put(keys[index], outcome)
            if on_outcome is not None:
                on_outcome(outcome)

        run_payloads(
            payloads,
            workers=workers,
            on_outcome=deliver,
            summary_store=summary_store,
        )

    for index, source in duplicates.items():
        original = outcomes[source]
        assert original is not None
        copy = JobOutcome.from_dict(original.to_dict())
        copy.cache_hit = True
        copy.name = jobs[index].name
        copy.expected_holds = jobs[index].expected_holds
        copy.expected_status = jobs[index].expected_status
        copy.counters = None
        copy.phases = None
        copy.attribution = None
        outcomes[index] = copy
        if on_outcome is not None:
            on_outcome(copy)

    assert all(o is not None for o in outcomes)
    report = BatchReport(
        outcomes=[o for o in outcomes if o is not None],
        workers=workers,
        wall_seconds=time.monotonic() - started,
    )
    trace.event(
        "suite_done",
        total=report.total,
        cache_hits=report.cache_hits,
        violations=report.violations,
        budget_exceeded=report.budget_exceeded,
        errors=report.errors,
        wall_seconds=report.wall_seconds,
    )
    return report
