"""Canonical serialization of the model layer.

Round-trip ``to_dict`` / ``from_dict`` for everything a verification job
carries across a process boundary: database schemas, the task hierarchy
with its services, conditions (including arithmetic atoms and surface
existentials), LTL formulas with their HLTL-FO proposition payloads, and
complete :class:`~repro.has.system.HAS` / :class:`HLTLProperty` objects.

Every serialized node is a plain-JSON dict tagged with ``"t"``; rationals
are encoded exactly as ``"p/q"`` strings.  :func:`canonical_json` renders
any serializable object deterministically (sorted keys, no whitespace),
and :func:`content_hash` derives the content-addressed key the result
cache and job pool are built on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from fractions import Fraction
from typing import Any, Callable, Iterable

from repro.arith.constraints import Constraint, Rel
from repro.arith.linexpr import LinExpr
from repro.database.schema import Attribute, AttributeKind, DatabaseSchema, Relation
from repro.errors import SpecificationError
from repro.has.services import (
    ClosingService,
    InternalService,
    OpeningService,
    SetUpdate,
)
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    HLTLSpec,
    ServiceProp,
    SetAtom,
)
from repro.logic.conditions import (
    And,
    ArithAtom,
    Condition,
    Eq,
    Exists,
    FALSE,
    Not,
    Or,
    RelationAtom,
    TRUE,
)
from repro.logic.terms import (
    ANY,
    Const,
    NULL,
    NullTerm,
    Term,
    Variable,
    VarKind,
    WildcardTerm,
)
from repro.ltl.formulas import (
    AndF,
    FalseF,
    Formula,
    Next,
    NotF,
    OrF,
    Prop,
    Release,
    TrueF,
    Until,
    propositions,
)
from repro.runtime.labels import ServiceKind, ServiceRef
from repro.verifier.config import VerifierConfig


class SerializationError(SpecificationError):
    """An object (or serialized form) outside the supported vocabulary."""


# ----------------------------------------------------------------------
# rationals
# ----------------------------------------------------------------------
def _frac_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _parse_frac(text: str) -> Fraction:
    num, _, den = text.partition("/")
    return Fraction(int(num), int(den or 1))


# ----------------------------------------------------------------------
# terms
# ----------------------------------------------------------------------
def _variable_to_dict(variable: Variable) -> dict:
    return {"t": "var", "name": variable.name, "kind": variable.kind.value}


def _term_to_dict(term: Term) -> dict:
    if isinstance(term, Variable):
        return _variable_to_dict(term)
    if isinstance(term, Const):
        return {"t": "const", "value": _frac_str(term.value)}
    if isinstance(term, NullTerm):
        return {"t": "null"}
    if isinstance(term, WildcardTerm):
        return {"t": "any"}
    raise SerializationError(f"not a serializable term: {term!r}")


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def _linexpr_to_dict(expr: LinExpr) -> dict:
    terms = []
    for unknown in sorted(expr.unknowns, key=repr):
        if not isinstance(unknown, Variable):
            raise SerializationError(
                f"linear expression over non-variable unknown {unknown!r}"
            )
        terms.append([_variable_to_dict(unknown), _frac_str(expr.coefficient(unknown))])
    return {"t": "linexpr", "terms": terms, "constant": _frac_str(expr.constant)}


def _constraint_to_dict(constraint: Constraint) -> dict:
    return {
        "t": "constraint",
        "expr": _linexpr_to_dict(constraint.expr),
        "rel": constraint.rel.value,
    }


# ----------------------------------------------------------------------
# conditions
# ----------------------------------------------------------------------
def _condition_to_dict(condition: Condition) -> dict:
    if condition is TRUE or isinstance(condition, type(TRUE)):
        return {"t": "true"}
    if condition is FALSE or isinstance(condition, type(FALSE)):
        return {"t": "false"}
    if isinstance(condition, Eq):
        return {
            "t": "eq",
            "left": _term_to_dict(condition.left),
            "right": _term_to_dict(condition.right),
        }
    if isinstance(condition, RelationAtom):
        return {
            "t": "rel_atom",
            "relation": condition.relation,
            "args": [_term_to_dict(a) for a in condition.args],
        }
    if isinstance(condition, ArithAtom):
        return {"t": "arith_atom", "constraint": _constraint_to_dict(condition.constraint)}
    if isinstance(condition, SetAtom):
        return {
            "t": "set_atom",
            "task": condition.task,
            "args": [_variable_to_dict(v) for v in condition.args],
        }
    if isinstance(condition, Not):
        return {"t": "not", "body": _condition_to_dict(condition.body)}
    if isinstance(condition, And):
        return {"t": "and", "parts": [_condition_to_dict(p) for p in condition.parts]}
    if isinstance(condition, Or):
        return {"t": "or", "parts": [_condition_to_dict(p) for p in condition.parts]}
    if isinstance(condition, Exists):
        return {
            "t": "exists",
            "bound": [_variable_to_dict(v) for v in condition.bound],
            "body": _condition_to_dict(condition.body),
        }
    raise SerializationError(f"not a serializable condition: {condition!r}")


# ----------------------------------------------------------------------
# LTL formulas and HLTL-FO payloads
# ----------------------------------------------------------------------
def _service_ref_to_dict(ref: ServiceRef) -> dict:
    data: dict = {"t": "service_ref", "kind": ref.kind.value, "task": ref.task}
    if ref.name is not None:
        data["name"] = ref.name
    return data


def _formula_to_dict(formula: Formula) -> dict:
    if isinstance(formula, TrueF):
        return {"t": "ltl_true"}
    if isinstance(formula, FalseF):
        return {"t": "ltl_false"}
    if isinstance(formula, Prop):
        payload = formula.payload
        if isinstance(payload, CondProp):
            inner: dict = {
                "t": "cond_prop",
                "condition": _condition_to_dict(payload.condition),
            }
        elif isinstance(payload, ServiceProp):
            inner = {"t": "service_prop", "ref": _service_ref_to_dict(payload.ref)}
        elif isinstance(payload, ChildProp):
            inner = {"t": "child_prop", "spec": _spec_to_dict(payload.spec)}
        else:
            raise SerializationError(f"not a serializable payload: {payload!r}")
        return {"t": "prop", "payload": inner}
    if isinstance(formula, NotF):
        return {"t": "ltl_not", "body": _formula_to_dict(formula.body)}
    if isinstance(formula, AndF):
        return {"t": "ltl_and", "parts": [_formula_to_dict(p) for p in formula.parts]}
    if isinstance(formula, OrF):
        return {"t": "ltl_or", "parts": [_formula_to_dict(p) for p in formula.parts]}
    if isinstance(formula, Next):
        return {"t": "next", "body": _formula_to_dict(formula.body)}
    if isinstance(formula, Until):
        return {
            "t": "until",
            "left": _formula_to_dict(formula.left),
            "right": _formula_to_dict(formula.right),
        }
    if isinstance(formula, Release):
        return {
            "t": "release",
            "left": _formula_to_dict(formula.left),
            "right": _formula_to_dict(formula.right),
        }
    raise SerializationError(f"not a serializable formula: {formula!r}")


def _spec_to_dict(spec: HLTLSpec) -> dict:
    return {"t": "spec", "task": spec.task, "formula": _formula_to_dict(spec.formula)}


def _property_to_dict(prop: HLTLProperty) -> dict:
    return {
        "t": "property",
        "name": prop.name,
        "globals": [_variable_to_dict(v) for v in prop.global_variables],
        "root": _spec_to_dict(prop.root),
    }


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def _attribute_to_dict(attribute: Attribute) -> dict:
    data: dict = {"t": "attribute", "name": attribute.name, "kind": attribute.kind.value}
    if attribute.references is not None:
        data["references"] = attribute.references
    return data


def _relation_to_dict(relation: Relation) -> dict:
    return {
        "t": "relation",
        "name": relation.name,
        "attributes": [_attribute_to_dict(a) for a in relation.attributes],
    }


def _schema_to_dict(schema: DatabaseSchema) -> dict:
    return {
        "t": "schema",
        "relations": [_relation_to_dict(r) for r in schema.relations],
    }


# ----------------------------------------------------------------------
# services and tasks
# ----------------------------------------------------------------------
def _varmap_to_list(mapping) -> list:
    return [
        [_variable_to_dict(key), _variable_to_dict(value)]
        for key, value in mapping.items()
    ]


def _internal_to_dict(service: InternalService) -> dict:
    return {
        "t": "internal_service",
        "name": service.name,
        "pre": _condition_to_dict(service.pre),
        "post": _condition_to_dict(service.post),
        "update": service.update.value,
    }


def _opening_to_dict(service: OpeningService) -> dict:
    return {
        "t": "opening_service",
        "pre": _condition_to_dict(service.pre),
        "input_map": _varmap_to_list(service.input_map),
    }


def _closing_to_dict(service: ClosingService) -> dict:
    return {
        "t": "closing_service",
        "pre": _condition_to_dict(service.pre),
        "output_map": _varmap_to_list(service.output_map),
    }


def _task_to_dict(task: Task) -> dict:
    return {
        "t": "task",
        "name": task.name,
        "variables": [_variable_to_dict(v) for v in task.variables],
        "set_variables": [_variable_to_dict(v) for v in task.set_variables],
        "services": [_internal_to_dict(s) for s in task.services],
        "opening": _opening_to_dict(task.opening),
        "closing": _closing_to_dict(task.closing),
        "children": [_task_to_dict(c) for c in task.children],
    }


def _has_to_dict(has: HAS) -> dict:
    return {
        "t": "has",
        "name": has.name,
        "database": _schema_to_dict(has.database),
        "root": _task_to_dict(has.root),
        "precondition": _condition_to_dict(has.precondition),
    }


#: Config fields serialized unconditionally (the original wire format).
#: Fields added later are serialized only when they differ from the
#: default, so jobs that don't use the new knobs keep their exact
#: pre-existing content-addressed keys (cache stability across versions).
_LEGACY_CONFIG_FIELDS = frozenset(
    {
        "km_budget",
        "max_condition_branches",
        "max_outputs_per_summary",
        "max_summaries",
        "collect_witness",
        "concretize_witnesses",
        "time_limit_seconds",
    }
)

_CONFIG_DEFAULTS = VerifierConfig()


def _config_to_dict(config: VerifierConfig) -> dict:
    data = {"t": "verifier_config"}
    for name, value in asdict(config).items():
        if name in _LEGACY_CONFIG_FIELDS or value != getattr(
            _CONFIG_DEFAULTS, name
        ):
            data[name] = value
    return data


# ----------------------------------------------------------------------
# public dispatch
# ----------------------------------------------------------------------
_TO_DISPATCH: tuple[tuple[type, Callable[[Any], dict]], ...] = (
    (HAS, _has_to_dict),
    (Task, _task_to_dict),
    (DatabaseSchema, _schema_to_dict),
    (Relation, _relation_to_dict),
    (Attribute, _attribute_to_dict),
    (HLTLProperty, _property_to_dict),
    (HLTLSpec, _spec_to_dict),
    (InternalService, _internal_to_dict),
    (OpeningService, _opening_to_dict),
    (ClosingService, _closing_to_dict),
    (ServiceRef, _service_ref_to_dict),
    (Constraint, _constraint_to_dict),
    (LinExpr, _linexpr_to_dict),
    (VerifierConfig, _config_to_dict),
    (Condition, _condition_to_dict),
    (Formula, _formula_to_dict),
    (Variable, _variable_to_dict),
    (Const, _term_to_dict),
    (NullTerm, _term_to_dict),
    (WildcardTerm, _term_to_dict),
)


def to_dict(obj: Any) -> dict:
    """Serialize any supported model object to a tagged plain-JSON dict."""
    for cls, encode in _TO_DISPATCH:
        if isinstance(obj, cls):
            return encode(obj)
    raise SerializationError(f"no serialization for {type(obj).__name__}: {obj!r}")


def _d(data: dict, key: str) -> Any:
    try:
        return data[key]
    except KeyError:
        raise SerializationError(f"{data.get('t', '?')}: missing field {key!r}") from None


def _from_variable(data: dict) -> Variable:
    return Variable(_d(data, "name"), VarKind(_d(data, "kind")))


def _from_term(data: dict) -> Term:
    tag = _d(data, "t")
    if tag == "var":
        return _from_variable(data)
    if tag == "const":
        return Const(_parse_frac(_d(data, "value")))
    if tag == "null":
        return NULL
    if tag == "any":
        return ANY
    raise SerializationError(f"not a term tag: {tag!r}")


def _from_linexpr(data: dict) -> LinExpr:
    coeffs = {
        _from_variable(var): _parse_frac(coeff) for var, coeff in _d(data, "terms")
    }
    return LinExpr(coeffs, _parse_frac(_d(data, "constant")))


def _from_constraint(data: dict) -> Constraint:
    return Constraint(_from_linexpr(_d(data, "expr")), Rel(_d(data, "rel")))


def _from_condition(data: dict) -> Condition:
    tag = _d(data, "t")
    if tag == "true":
        return TRUE
    if tag == "false":
        return FALSE
    if tag == "eq":
        return Eq(_from_term(_d(data, "left")), _from_term(_d(data, "right")))
    if tag == "rel_atom":
        return RelationAtom(
            _d(data, "relation"), tuple(_from_term(a) for a in _d(data, "args"))
        )
    if tag == "arith_atom":
        return ArithAtom(_from_constraint(_d(data, "constraint")))
    if tag == "set_atom":
        return SetAtom(
            _d(data, "task"), tuple(_from_variable(v) for v in _d(data, "args"))
        )
    if tag == "not":
        return Not(_from_condition(_d(data, "body")))
    if tag == "and":
        return And(*(_from_condition(p) for p in _d(data, "parts")))
    if tag == "or":
        return Or(*(_from_condition(p) for p in _d(data, "parts")))
    if tag == "exists":
        return Exists(
            tuple(_from_variable(v) for v in _d(data, "bound")),
            _from_condition(_d(data, "body")),
        )
    raise SerializationError(f"not a condition tag: {tag!r}")


def _from_service_ref(data: dict) -> ServiceRef:
    return ServiceRef(ServiceKind(_d(data, "kind")), _d(data, "task"), data.get("name"))


def _from_payload(data: dict) -> Any:
    tag = _d(data, "t")
    if tag == "cond_prop":
        return CondProp(_from_condition(_d(data, "condition")))
    if tag == "service_prop":
        return ServiceProp(_from_service_ref(_d(data, "ref")))
    if tag == "child_prop":
        return ChildProp(_from_spec(_d(data, "spec")))
    raise SerializationError(f"not a payload tag: {tag!r}")


def _from_formula(data: dict) -> Formula:
    tag = _d(data, "t")
    if tag == "ltl_true":
        return TrueF()
    if tag == "ltl_false":
        return FalseF()
    if tag == "prop":
        return Prop(_from_payload(_d(data, "payload")))
    if tag == "ltl_not":
        return NotF(_from_formula(_d(data, "body")))
    if tag == "ltl_and":
        return AndF(*(_from_formula(p) for p in _d(data, "parts")))
    if tag == "ltl_or":
        return OrF(*(_from_formula(p) for p in _d(data, "parts")))
    if tag == "next":
        return Next(_from_formula(_d(data, "body")))
    if tag == "until":
        return Until(_from_formula(_d(data, "left")), _from_formula(_d(data, "right")))
    if tag == "release":
        return Release(_from_formula(_d(data, "left")), _from_formula(_d(data, "right")))
    raise SerializationError(f"not a formula tag: {tag!r}")


def _from_spec(data: dict) -> HLTLSpec:
    return HLTLSpec(_d(data, "task"), _from_formula(_d(data, "formula")))


def _from_property(data: dict) -> HLTLProperty:
    return HLTLProperty(
        root=_from_spec(_d(data, "root")),
        global_variables=tuple(_from_variable(v) for v in data.get("globals", ())),
        name=_d(data, "name"),
    )


def _from_attribute(data: dict) -> Attribute:
    return Attribute(
        _d(data, "name"), AttributeKind(_d(data, "kind")), data.get("references")
    )


def _from_relation(data: dict) -> Relation:
    return Relation(
        _d(data, "name"), tuple(_from_attribute(a) for a in _d(data, "attributes"))
    )


def _from_schema(data: dict) -> DatabaseSchema:
    return DatabaseSchema(tuple(_from_relation(r) for r in _d(data, "relations")))


def _from_varmap(entries: list) -> dict[Variable, Variable]:
    return {_from_variable(key): _from_variable(value) for key, value in entries}


def _from_internal(data: dict) -> InternalService:
    return InternalService(
        name=_d(data, "name"),
        pre=_from_condition(_d(data, "pre")),
        post=_from_condition(_d(data, "post")),
        update=SetUpdate(_d(data, "update")),
    )


def _from_opening(data: dict) -> OpeningService:
    return OpeningService(
        pre=_from_condition(_d(data, "pre")),
        input_map=_from_varmap(_d(data, "input_map")),
    )


def _from_closing(data: dict) -> ClosingService:
    return ClosingService(
        pre=_from_condition(_d(data, "pre")),
        output_map=_from_varmap(_d(data, "output_map")),
    )


def _from_task(data: dict) -> Task:
    return Task(
        name=_d(data, "name"),
        variables=tuple(_from_variable(v) for v in _d(data, "variables")),
        set_variables=tuple(_from_variable(v) for v in _d(data, "set_variables")),
        services=tuple(_from_internal(s) for s in _d(data, "services")),
        opening=_from_opening(_d(data, "opening")),
        closing=_from_closing(_d(data, "closing")),
        children=tuple(_from_task(c) for c in _d(data, "children")),
    )


def _from_has(data: dict) -> HAS:
    return HAS(
        database=_from_schema(_d(data, "database")),
        root=_from_task(_d(data, "root")),
        precondition=_from_condition(_d(data, "precondition")),
        name=_d(data, "name"),
    )


def _from_config(data: dict) -> VerifierConfig:
    fields = {k: v for k, v in data.items() if k != "t"}
    return VerifierConfig(**fields)


_FROM_DISPATCH: dict[str, Callable[[dict], Any]] = {
    "var": _from_variable,
    "const": _from_term,
    "null": _from_term,
    "any": _from_term,
    "linexpr": _from_linexpr,
    "constraint": _from_constraint,
    "true": _from_condition,
    "false": _from_condition,
    "eq": _from_condition,
    "rel_atom": _from_condition,
    "arith_atom": _from_condition,
    "set_atom": _from_condition,
    "not": _from_condition,
    "and": _from_condition,
    "or": _from_condition,
    "exists": _from_condition,
    "service_ref": _from_service_ref,
    "cond_prop": _from_payload,
    "service_prop": _from_payload,
    "child_prop": _from_payload,
    "ltl_true": _from_formula,
    "ltl_false": _from_formula,
    "prop": _from_formula,
    "ltl_not": _from_formula,
    "ltl_and": _from_formula,
    "ltl_or": _from_formula,
    "next": _from_formula,
    "until": _from_formula,
    "release": _from_formula,
    "spec": _from_spec,
    "property": _from_property,
    "attribute": _from_attribute,
    "relation": _from_relation,
    "schema": _from_schema,
    "internal_service": _from_internal,
    "opening_service": _from_opening,
    "closing_service": _from_closing,
    "task": _from_task,
    "has": _from_has,
    "verifier_config": _from_config,
}


def from_dict(data: dict) -> Any:
    """Reconstruct a model object from its tagged dict form."""
    if not isinstance(data, dict) or "t" not in data:
        raise SerializationError(f"not a tagged serialized object: {data!r}")
    tag = data["t"]
    try:
        decode = _FROM_DISPATCH[tag]
    except KeyError:
        raise SerializationError(f"unknown tag {tag!r}") from None
    return decode(data)


# ----------------------------------------------------------------------
# subtree slicing (cross-job summary reuse)
# ----------------------------------------------------------------------
def _collect_condition_relations(condition: Condition, names: set[str]) -> None:
    if isinstance(condition, RelationAtom):
        names.add(condition.relation)
    elif isinstance(condition, Not):
        _collect_condition_relations(condition.body, names)
    elif isinstance(condition, (And, Or)):
        for part in condition.parts:
            _collect_condition_relations(part, names)
    elif isinstance(condition, Exists):
        _collect_condition_relations(condition.body, names)
    # TRUE / FALSE / Eq / ArithAtom / SetAtom mention no relations


def condition_relation_names(condition: Condition) -> set[str]:
    """Every relation named by a ``RelationAtom`` anywhere in the condition."""
    names: set[str] = set()
    _collect_condition_relations(condition, names)
    return names


def spec_relation_names(spec: HLTLSpec) -> set[str]:
    """Relations named by the spec's condition propositions, including the
    nested child-spec obligations (β's domain is closed under children)."""
    names: set[str] = set()
    for payload in propositions(spec.formula):
        if isinstance(payload, CondProp):
            _collect_condition_relations(payload.condition, names)
        elif isinstance(payload, ChildProp):
            names |= spec_relation_names(payload.spec)
    return names


def task_relation_names(task: Task) -> set[str]:
    """Relations named by any service condition in the task subtree."""
    names: set[str] = set()
    _collect_condition_relations(task.opening.pre, names)
    _collect_condition_relations(task.closing.pre, names)
    for service in task.services:
        _collect_condition_relations(service.pre, names)
        _collect_condition_relations(service.post, names)
    for child in task.children:
        names |= task_relation_names(child)
    return names


def schema_slice(schema: DatabaseSchema, names: Iterable[str]) -> list[dict]:
    """The foreign-key closure of ``names`` within ``schema``, as a sorted
    list of serialized relations.

    This is exactly the schema material a task subtree's exploration can
    read: a relation's *internals* (attributes, their kinds, their FK
    targets) are only consulted through navigation from a node anchored to
    it — reachable from the subtree's conditions, the input type's
    anchors, and the β-obligation conditions — and through the inclusion
    dependencies of relations already in the slice.  Anchoring decisions
    that touch the rest of the schema read only relation *names*, which
    the caller hashes separately as the full name universe.
    """
    reachable: set[str] = set()
    frontier = [name for name in names if name in schema]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for attribute in schema.relation(name).attributes:
            referenced = attribute.references
            if referenced is not None and referenced in schema:
                frontier.append(referenced)
    return [_relation_to_dict(schema.relation(name)) for name in sorted(reachable)]


# ----------------------------------------------------------------------
# canonical rendering and hashing
# ----------------------------------------------------------------------
def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, pure ASCII."""
    if not isinstance(data, (dict, list, str, int, float, bool, type(None))):
        data = to_dict(data)
    return json.dumps(data, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def content_hash(data: Any) -> str:
    """SHA-256 over the canonical JSON rendering — the content address."""
    return hashlib.sha256(canonical_json(data).encode("ascii")).hexdigest()
