"""Loading ``.has`` files and directories of them.

* :func:`load_document` — parse + statically validate one file
  (:func:`repro.has.restrictions.validate_has` on the system,
  :func:`repro.hltl.formulas.validate_property` on every property);
* :func:`load_directory` — every ``*.has`` file in a directory, sorted
  by file name so suites built from a directory are deterministic;
* :func:`directory_jobs` — the flattened job list of a directory, the
  building block of the ``gallery`` suite
  (:func:`repro.service.suites.build_suite`).
"""

from __future__ import annotations

from pathlib import Path

from repro.dsl.document import ScenarioDocument
from repro.dsl.parser import parse_document
from repro.errors import ReproError, SpecificationError
from repro.has.restrictions import validate_has
from repro.hltl.formulas import validate_property
from repro.verifier.config import VerifierConfig


def loads(text: str, source: str = "<string>", validate: bool = True) -> ScenarioDocument:
    """Parse (and by default validate) a ``.has`` document from a string."""
    doc = parse_document(text, source)
    if validate:
        validate_document(doc)
    return doc


def load_document(path: Path | str, validate: bool = True) -> ScenarioDocument:
    """Parse (and by default validate) one ``.has`` file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecificationError(f"{path}: cannot read ({exc})") from exc
    return loads(text, source=str(path), validate=validate)


def validate_document(doc: ScenarioDocument) -> None:
    """Run the model layer's static validators over a parsed document."""
    try:
        validate_has(doc.system)
        for entry in doc.properties:
            validate_property(entry.prop, doc.system)
    except ReproError as exc:
        raise SpecificationError(f"{doc.source}: {exc}") from exc


def load_directory(
    directory: Path | str, validate: bool = True
) -> list[ScenarioDocument]:
    """All ``*.has`` documents in ``directory``, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise SpecificationError(f"{directory}: not a directory")
    paths = sorted(directory.glob("*.has"))
    if not paths:
        raise SpecificationError(f"{directory}: no .has files found")
    return [load_document(path, validate=validate) for path in paths]


def _jobs_or_error(doc: ScenarioDocument, default_config) -> list:
    """A suite scenario with nothing to verify is a mistake, not an
    empty contribution — a deleted property block must not turn a
    suite green."""
    if not doc.properties:
        raise SpecificationError(
            f"{doc.source}: scenario declares no properties (nothing to verify)"
        )
    return doc.jobs(default_config)


def file_jobs(
    path: Path | str,
    default_config: VerifierConfig | None = None,
    validate: bool = True,
) -> list:
    """The job list of one ``.has`` file; errors when it declares no
    properties."""
    return _jobs_or_error(load_document(path, validate=validate), default_config)


def directory_jobs(
    directory: Path | str,
    default_config: VerifierConfig | None = None,
    validate: bool = True,
) -> list:
    """One flat job list for every scenario in ``directory``.

    File-level ``config`` blocks win over ``default_config`` (budget-boxed
    scenarios carry their own budgets); everything else runs under the
    caller's suite defaults.  A file without properties is an error, as
    in :func:`file_jobs`.
    """
    jobs = []
    for doc in load_directory(directory, validate=validate):
        jobs.extend(_jobs_or_error(doc, default_config))
    return jobs
