"""Recursive-descent parser for the ``.has`` scenario language.

The parser builds the existing model objects directly — no intermediate
AST — so a parsed document serializes through
:mod:`repro.service.serialize` exactly like its Python-built twin, and
job content hashes agree.  See ``docs/dsl.md`` for the grammar and the
mapping of every construct to its paper definition.

Disambiguation rules the printer relies on (and the reference documents):

* ``a = b`` / ``a != b`` with both sides *atomic terms* build
  :class:`~repro.logic.conditions.Eq` / ``Not(Eq)``; any comparison with
  a compound side (or with ``<``, ``<=``, ``>``, ``>=``) builds an
  :class:`~repro.logic.conditions.ArithAtom`.  The printer renders an
  arithmetic equality whose expression would look atomic as
  ``x + 0 = 0`` so the two atom kinds never collide.
* ``and`` / ``or`` chains build one n-ary node per chain.  Conditions
  flatten by construction; LTL ``AndF``/``OrF`` do *not*, so
  parenthesized operands preserve the exact tree shape.
* ``F φ`` and ``G φ`` are parsed as ``true U φ`` and ``false R φ`` —
  structurally identical to the :func:`repro.ltl.formulas.Eventually` /
  ``Always`` helpers.
"""

from __future__ import annotations

from fractions import Fraction

from repro.database.instance import DatabaseInstance
from repro.database.schema import (
    Attribute,
    AttributeKind,
    DatabaseSchema,
    Relation,
)
from repro.dsl.document import EXPECTATIONS, PropertyEntry, ScenarioDocument
from repro.dsl.lexer import (
    DslSyntaxError,
    EOF,
    IDENT,
    NUMBER,
    OP,
    STRING,
    Token,
    tokenize,
)
from repro.errors import ReproError
from repro.has.services import (
    ClosingService,
    InternalService,
    OpeningService,
    SetUpdate,
)
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import (
    ChildProp,
    CondProp,
    HLTLProperty,
    HLTLSpec,
    ServiceProp,
    SetAtom,
)
from repro.logic.conditions import (
    And,
    ArithAtom,
    Condition,
    Eq,
    Exists,
    FALSE,
    Not,
    Or,
    RelationAtom,
    TRUE,
)
from repro.logic.terms import (
    ANY,
    Const,
    NULL,
    Term,
    Variable,
    VarKind,
)
from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import LinExpr
from repro.ltl.formulas import (
    AndF,
    FalseF,
    Formula,
    Next,
    NotF,
    OrF,
    Prop,
    Release,
    TrueF,
    Until,
)
from repro.runtime.labels import ServiceKind, ServiceRef
from repro.verifier.config import VerifierConfig

#: Words that cannot name variables, relations, or attributes — they are
#: meaningful inside condition expressions, where bare identifiers occur.
RESERVED = frozenset(
    {"true", "false", "null", "not", "and", "or", "exists", "all", "any"}
)

_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}

_CONFIG_FIELDS = frozenset(VerifierConfig.__dataclass_fields__)


class _Parser:
    def __init__(self, text: str, source: str):
        self.source = source
        self.tokens = tokenize(text, source)
        self.pos = 0
        # document-wide variable kinds (task variables + property globals)
        self.kinds: dict[str, VarKind] = {}
        # scoped overrides (exists binders), innermost last
        self.scopes: list[dict[str, VarKind]] = []

    # ------------------------------------------------------------------
    # token stream helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def at_call(self, word: str) -> bool:
        """At ``word`` immediately followed by ``(``."""
        follow = self.peek(1)
        return self.at_word(word) and follow.kind == OP and follow.text == "("

    def error(self, message: str, token: Token | None = None) -> DslSyntaxError:
        token = token or self.peek()
        return DslSyntaxError(message, self.source, token.line, token.column)

    def at_op(self, text: str) -> bool:
        token = self.peek()
        return token.kind == OP and token.text == text

    def at_word(self, text: str) -> bool:
        token = self.peek()
        return token.kind == IDENT and token.text == text

    def eat_op(self, text: str) -> bool:
        if self.at_op(text):
            self.pos += 1
            return True
        return False

    def eat_word(self, text: str) -> bool:
        if self.at_word(text):
            self.pos += 1
            return True
        return False

    def expect_op(self, text: str) -> Token:
        if not self.at_op(text):
            raise self.error(f"expected {text!r}, got {self.peek().text!r}")
        return self.next()

    def expect_word(self, text: str) -> Token:
        if not self.at_word(text):
            raise self.error(f"expected keyword {text!r}, got {self.peek().text!r}")
        return self.next()

    def expect_ident(self, what: str) -> str:
        token = self.peek()
        if token.kind != IDENT:
            raise self.error(f"expected {what}, got {token.text or 'end of file'!r}")
        self.next()
        return token.text

    def expect_name(self, what: str) -> str:
        """An identifier or a quoted string (names may contain dashes)."""
        token = self.peek()
        if token.kind in (IDENT, STRING):
            self.next()
            return token.text
        raise self.error(f"expected {what}, got {token.text or 'end of file'!r}")

    def expect_declared_name(self, what: str) -> str:
        name = self.expect_name(what)
        if name in RESERVED:
            raise self.error(f"{name!r} is a reserved word and cannot name a {what}")
        return name

    # ------------------------------------------------------------------
    # variable scoping
    # ------------------------------------------------------------------
    def declare(self, name: str, kind: VarKind, token: Token) -> Variable:
        if name in RESERVED:
            raise self.error(
                f"{name!r} is a reserved word and cannot name a variable", token
            )
        existing = self.kinds.get(name)
        if existing is not None and existing is not kind:
            raise self.error(
                f"variable {name!r} was declared {existing.value} elsewhere in "
                f"this document; one file must use one kind per name",
                token,
            )
        self.kinds[name] = kind
        return Variable(name, kind)

    def lookup(self, name: str, token: Token) -> Variable:
        for scope in reversed(self.scopes):
            if name in scope:
                return Variable(name, scope[name])
        kind = self.kinds.get(name)
        if kind is None:
            raise self.error(
                f"unknown variable {name!r} (declare it in a task's `vars`, a "
                f"property's `globals`, or an `exists` binder)",
                token,
            )
        return Variable(name, kind)

    # ------------------------------------------------------------------
    # document
    # ------------------------------------------------------------------
    def parse_document(self) -> ScenarioDocument:
        system: HAS | None = None
        schema: DatabaseSchema | None = None
        properties: list[PropertyEntry] = []
        instances: list[tuple[str, DatabaseInstance]] = []
        config: VerifierConfig | None = None
        while self.peek().kind != EOF:
            if self.at_word("system"):
                if system is not None:
                    raise self.error("a .has document declares exactly one system")
                system, schema = self.parse_system()
            elif self.at_word("property"):
                if system is None:
                    raise self.error("`property` must follow the `system` block")
                token = self.peek()
                entry = self.parse_property(system)
                if any(e.prop.name == entry.prop.name for e in properties):
                    raise self.error(
                        f"duplicate property name {entry.prop.name!r} — the "
                        f"`::{entry.prop.name}` selector would be ambiguous",
                        token,
                    )
                properties.append(entry)
            elif self.at_word("instance"):
                if schema is None:
                    raise self.error("`instance` must follow the `system` block")
                token = self.peek()
                name, db = self.parse_instance(schema)
                if any(existing == name for existing, _ in instances):
                    raise self.error(
                        f"duplicate instance name {name!r}", token
                    )
                instances.append((name, db))
            elif self.at_word("config"):
                if config is not None:
                    raise self.error("duplicate `config` block")
                config = self.parse_config()
            else:
                raise self.error(
                    f"expected `system`, `property`, `instance`, or `config`, "
                    f"got {self.peek().text!r}"
                )
        if system is None:
            raise self.error("document has no `system` block")
        return ScenarioDocument(
            system=system,
            properties=properties,
            instances=instances,
            config=config,
            source=self.source,
        )

    # ------------------------------------------------------------------
    # system / schema
    # ------------------------------------------------------------------
    def parse_system(self) -> tuple[HAS, DatabaseSchema]:
        self.expect_word("system")
        name = self.expect_name("system name")
        self.expect_op("{")
        self.expect_word("schema")
        schema = self.parse_schema()
        if not self.at_word("task"):
            raise self.error("expected the root `task` block after `schema`")
        root = self.parse_task(schema)
        precondition: Condition = TRUE
        if self.eat_word("precondition"):
            self.expect_op(":")
            precondition = self.parse_condition()
        self.expect_op("}")
        try:
            return (
                HAS(schema, root, precondition=precondition, name=name),
                schema,
            )
        except ReproError as exc:
            raise self.error(f"invalid system: {exc}") from exc

    def parse_schema(self) -> DatabaseSchema:
        self.expect_op("{")
        relations: list[Relation] = []
        while self.at_word("relation"):
            self.next()
            token = self.peek()
            rel_name = self.expect_declared_name("relation name")
            self.expect_op("(")
            attributes: list[Attribute] = []
            if not self.at_op(")"):
                while True:
                    attr_name = self.expect_declared_name("attribute name")
                    self.expect_op(":")
                    if self.eat_word("num"):
                        attributes.append(
                            Attribute(attr_name, AttributeKind.NUMERIC)
                        )
                    elif self.eat_word("ref"):
                        target = self.expect_ident("referenced relation")
                        attributes.append(
                            Attribute(attr_name, AttributeKind.FOREIGN_KEY, target)
                        )
                    else:
                        raise self.error("attribute kind must be `num` or `ref <R>`")
                    if not self.eat_op(","):
                        break
            self.expect_op(")")
            try:
                relations.append(Relation(rel_name, tuple(attributes)))
            except ReproError as exc:
                raise self.error(f"invalid relation: {exc}", token) from exc
        self.expect_op("}")
        try:
            return DatabaseSchema(tuple(relations))
        except ReproError as exc:
            raise self.error(f"invalid schema: {exc}") from exc

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def parse_task(self, schema: DatabaseSchema) -> Task:
        self.expect_word("task")
        token = self.peek()
        name = self.expect_ident("task name")
        self.expect_op("{")

        variables: list[Variable] = []
        if self.eat_word("vars"):
            while True:
                var_token = self.peek()
                var_name = self.expect_ident("variable name")
                self.expect_op(":")
                if self.eat_word("id"):
                    kind = VarKind.ID
                elif self.eat_word("num"):
                    kind = VarKind.NUMERIC
                else:
                    raise self.error("variable kind must be `id` or `num`")
                variables.append(self.declare(var_name, kind, var_token))
                if not self.eat_op(","):
                    break

        set_variables: list[Variable] = []
        if self.at_word("set"):
            self.next()
            while True:
                var_token = self.peek()
                var_name = self.expect_ident("set variable")
                set_variables.append(self.lookup(var_name, var_token))
                if not self.eat_op(","):
                    break

        opening = OpeningService()
        if self.at_word("opening"):
            opening = self.parse_opening()
        closing = ClosingService()
        if self.at_word("closing"):
            closing = self.parse_closing()

        services: list[InternalService] = []
        children: list[Task] = []
        while True:
            if self.at_word("service"):
                services.append(self.parse_service())
            elif self.at_word("task"):
                children.append(self.parse_task(schema))
            else:
                break
        self.expect_op("}")
        try:
            return Task(
                name=name,
                variables=tuple(variables),
                set_variables=tuple(set_variables),
                services=tuple(services),
                opening=opening,
                closing=closing,
                children=tuple(children),
            )
        except ReproError as exc:
            raise self.error(f"invalid task {name!r}: {exc}", token) from exc

    def _parse_varmap(self) -> dict[Variable, Variable]:
        mapping: dict[Variable, Variable] = {}
        while True:
            left_token = self.peek()
            left = self.lookup(self.expect_ident("variable"), left_token)
            self.expect_op("<-")
            right_token = self.peek()
            right = self.lookup(self.expect_ident("variable"), right_token)
            if left in mapping:
                raise self.error(f"duplicate map entry for {left.name}", left_token)
            mapping[left] = right
            if not self.eat_op(","):
                break
        return mapping

    def parse_opening(self) -> OpeningService:
        token = self.expect_word("opening")
        self.expect_op("{")
        pre: Condition = TRUE
        if self.eat_word("pre"):
            self.expect_op(":")
            pre = self.parse_condition()
        input_map: dict[Variable, Variable] = {}
        if self.eat_word("input"):
            input_map = self._parse_varmap()
        self.expect_op("}")
        try:
            return OpeningService(pre=pre, input_map=input_map)
        except ReproError as exc:
            raise self.error(f"invalid opening service: {exc}", token) from exc

    def parse_closing(self) -> ClosingService:
        token = self.expect_word("closing")
        self.expect_op("{")
        pre: Condition = FALSE
        if self.eat_word("pre"):
            self.expect_op(":")
            pre = self.parse_condition()
        output_map: dict[Variable, Variable] = {}
        if self.eat_word("output"):
            output_map = self._parse_varmap()
        self.expect_op("}")
        try:
            return ClosingService(pre=pre, output_map=output_map)
        except ReproError as exc:
            raise self.error(f"invalid closing service: {exc}", token) from exc

    def parse_service(self) -> InternalService:
        self.expect_word("service")
        token = self.peek()
        name = self.expect_name("service name")
        self.expect_op("{")
        pre: Condition = TRUE
        post: Condition = TRUE
        update = SetUpdate.NONE
        if self.eat_word("pre"):
            self.expect_op(":")
            pre = self.parse_condition()
        if self.eat_word("post"):
            self.expect_op(":")
            post = self.parse_condition()
        if self.eat_word("update"):
            self.expect_op(":")
            if self.eat_word("none"):
                update = SetUpdate.NONE
            elif self.eat_word("insert"):
                if self.eat_op("+"):
                    self.expect_word("retrieve")
                    update = SetUpdate.BOTH
                else:
                    update = SetUpdate.INSERT
            elif self.eat_word("retrieve"):
                update = SetUpdate.RETRIEVE
            else:
                raise self.error(
                    "update must be `none`, `insert`, `retrieve`, or "
                    "`insert+retrieve`"
                )
        self.expect_op("}")
        try:
            return InternalService(name=name, pre=pre, post=post, update=update)
        except ReproError as exc:
            raise self.error(f"invalid service {name!r}: {exc}", token) from exc

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------
    def parse_condition(self) -> Condition:
        left = self._cond_or()
        if self.eat_op("->"):
            right = self.parse_condition()
            return Or(Not(left), right)
        return left

    def _cond_or(self) -> Condition:
        parts = [self._cond_and()]
        while self.eat_word("or"):
            parts.append(self._cond_and())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def _cond_and(self) -> Condition:
        parts = [self._cond_unary()]
        while self.eat_word("and"):
            parts.append(self._cond_unary())
        return parts[0] if len(parts) == 1 else And(*parts)

    def _cond_unary(self) -> Condition:
        if self.eat_word("not"):
            return Not(self._cond_unary())
        if self.at_word("exists"):
            return self._cond_exists()
        return self._cond_primary()

    def _cond_exists(self) -> Condition:
        self.expect_word("exists")
        binders: list[Variable] = []
        scope: dict[str, VarKind] = {}
        while True:
            token = self.peek()
            name = self.expect_ident("bound variable")
            self.expect_op(":")
            if self.eat_word("id"):
                kind = VarKind.ID
            elif self.eat_word("num"):
                kind = VarKind.NUMERIC
            else:
                raise self.error("bound variable kind must be `id` or `num`")
            if name in RESERVED:
                raise self.error(f"{name!r} is reserved", token)
            binders.append(Variable(name, kind))
            scope[name] = kind
            if not self.eat_op(","):
                break
        self.expect_op(".")
        self.scopes.append(scope)
        try:
            body = self.parse_condition()
        finally:
            self.scopes.pop()
        return Exists(tuple(binders), body)

    def _cond_primary(self) -> Condition:
        if self.eat_word("true"):
            return TRUE
        if self.eat_word("false"):
            return FALSE
        if self.at_call("all"):
            self.next()
            return And(*self._cond_list())
        if self.at_call("any"):
            self.next()
            return Or(*self._cond_list())
        if self.at_op("("):
            self.next()
            inner = self.parse_condition()
            self.expect_op(")")
            return inner
        # set atom: S[Task](z1, …)
        if (
            self.at_word("S")
            and self.peek(1).kind == OP
            and self.peek(1).text == "["
        ):
            return self._set_atom()
        # relation atom: Name(term, …)
        if (
            self.peek().kind == IDENT
            and self.peek().text not in RESERVED
            and self.peek(1).kind == OP
            and self.peek(1).text == "("
        ):
            return self._relation_atom()
        return self._comparison()

    def _cond_list(self) -> list[Condition]:
        self.expect_op("(")
        parts: list[Condition] = []
        if not self.at_op(")"):
            while True:
                parts.append(self.parse_condition())
                if not self.eat_op(","):
                    break
        self.expect_op(")")
        return parts

    def _set_atom(self) -> SetAtom:
        self.expect_word("S")
        self.expect_op("[")
        task = self.expect_ident("task name")
        self.expect_op("]")
        self.expect_op("(")
        args: list[Variable] = []
        if not self.at_op(")"):
            while True:
                token = self.peek()
                args.append(self.lookup(self.expect_ident("variable"), token))
                if not self.eat_op(","):
                    break
        self.expect_op(")")
        try:
            return SetAtom(task, tuple(args))
        except ReproError as exc:
            raise self.error(f"invalid set atom: {exc}") from exc

    def _relation_atom(self) -> RelationAtom:
        token = self.peek()
        relation = self.expect_ident("relation name")
        self.expect_op("(")
        args: list[Term] = []
        if not self.at_op(")"):
            while True:
                args.append(self._term())
                if not self.eat_op(","):
                    break
        self.expect_op(")")
        try:
            return RelationAtom(relation, tuple(args))
        except ReproError as exc:
            raise self.error(f"invalid relation atom: {exc}", token) from exc

    def _term(self) -> Term:
        token = self.peek()
        if self.eat_word("null"):
            return NULL
        if token.kind == IDENT and token.text == "_":
            self.next()
            return ANY
        if token.kind == NUMBER:
            self.next()
            return Const(self._fraction(token))
        if self.at_op("-") and self.peek(1).kind == NUMBER:
            self.next()
            number = self.next()
            return Const(-self._fraction(number))
        if token.kind == IDENT:
            self.next()
            return self.lookup(token.text, token)
        raise self.error(f"expected a term, got {token.text or 'end of file'!r}")

    def _fraction(self, token: Token) -> Fraction:
        if "." in token.text or "e" in token.text or "E" in token.text:
            raise self.error(
                "conditions use exact rationals: write p/q, not a float", token
            )
        return Fraction(token.text)

    # -- comparisons ----------------------------------------------------
    def _comparison(self) -> Condition:
        op_token = self.peek()
        left_terms = self._sum()
        rel_token = self.peek()
        if not (rel_token.kind == OP and rel_token.text in _COMPARISONS):
            raise self.error(
                f"expected a comparison operator after the expression, got "
                f"{rel_token.text or 'end of file'!r}",
                rel_token,
            )
        self.next()
        right_terms = self._sum()
        op = rel_token.text
        left_simple = self._as_simple(left_terms)
        right_simple = self._as_simple(right_terms)
        if op in ("=", "!=") and left_simple is not None and right_simple is not None:
            try:
                atom = Eq(left_simple, right_simple)
            except ReproError as exc:
                raise self.error(f"invalid equality: {exc}", op_token) from exc
            return atom if op == "=" else Not(atom)
        left_expr = self._as_linexpr(left_terms, op_token)
        right_expr = self._as_linexpr(right_terms, op_token)
        try:
            return ArithAtom(compare(left_expr, Rel(op), right_expr))
        except ReproError as exc:
            raise self.error(f"invalid arithmetic atom: {exc}", op_token) from exc

    def _sum(self) -> list[tuple[int, tuple]]:
        """A signed additive chain of products, kept symbolic so the
        caller can decide between Eq terms and a LinExpr."""
        items: list[tuple[int, tuple]] = []
        sign = 1
        if self.eat_op("-"):
            sign = -1
        elif self.eat_op("+"):
            sign = 1
        items.append((sign, self._product()))
        while True:
            if self.eat_op("+"):
                sign = 1
            elif self.eat_op("-"):
                sign = -1
            else:
                break
            items.append((sign, self._product()))
        return items

    def _product(self) -> tuple:
        token = self.peek()
        if self.eat_word("null"):
            return ("null",)
        if token.kind == IDENT and token.text == "_":
            self.next()
            return ("wild",)
        if token.kind == NUMBER:
            self.next()
            value = self._fraction(token)
            if self.eat_op("*"):
                var_token = self.peek()
                name = self.expect_ident("variable after `*`")
                return ("scaled", value, self.lookup(name, var_token), var_token)
            return ("const", value)
        if token.kind == IDENT and token.text not in RESERVED:
            self.next()
            return ("var", self.lookup(token.text, token), token)
        raise self.error(
            f"expected a term or expression, got {token.text or 'end of file'!r}"
        )

    @staticmethod
    def _as_simple(items: list[tuple[int, tuple]]) -> Term | None:
        """The single atomic term this sum denotes, or None if compound."""
        if len(items) != 1:
            return None
        sign, item = items[0]
        if item[0] == "null":
            return NULL if sign > 0 else None
        if item[0] == "wild":
            return ANY if sign > 0 else None
        if item[0] == "const":
            return Const(sign * item[1])
        if item[0] == "var" and sign > 0:
            return item[1]
        return None

    def _as_linexpr(self, items: list[tuple[int, tuple]], where: Token) -> LinExpr:
        coeffs: dict[Variable, Fraction] = {}
        constant = Fraction(0)
        for sign, item in items:
            if item[0] == "const":
                constant += sign * item[1]
            elif item[0] in ("var", "scaled"):
                if item[0] == "var":
                    coeff, variable, token = Fraction(sign), item[1], item[2]
                else:
                    coeff, variable, token = sign * item[1], item[2], item[3]
                if variable.kind is not VarKind.NUMERIC:
                    raise self.error(
                        f"arithmetic over non-numeric variable {variable.name!r}",
                        token,
                    )
                coeffs[variable] = coeffs.get(variable, Fraction(0)) + coeff
            else:
                raise self.error(
                    "null/_ cannot appear in an arithmetic expression", where
                )
        return LinExpr(coeffs, constant)

    # ------------------------------------------------------------------
    # properties and formulas
    # ------------------------------------------------------------------
    def parse_property(self, system: HAS) -> PropertyEntry:
        self.expect_word("property")
        name = self.expect_name("property name")
        self.expect_word("on")
        task = self.expect_ident("task name")
        self.expect_op("{")
        global_variables: list[Variable] = []
        if self.eat_word("globals"):
            while True:
                token = self.peek()
                var_name = self.expect_ident("global variable")
                self.expect_op(":")
                if self.eat_word("id"):
                    kind = VarKind.ID
                elif self.eat_word("num"):
                    kind = VarKind.NUMERIC
                else:
                    raise self.error("global variable kind must be `id` or `num`")
                global_variables.append(self.declare(var_name, kind, token))
                if not self.eat_op(","):
                    break
        expect: str | None = None
        if self.eat_word("expect"):
            self.expect_op(":")
            expect = self.expect_ident("expected verdict")
            if expect not in EXPECTATIONS:
                raise self.error(
                    f"expect must be one of {', '.join(EXPECTATIONS)}"
                )
        self.expect_word("formula")
        self.expect_op(":")
        formula = self.parse_formula()
        self.expect_op("}")
        prop = HLTLProperty(
            root=HLTLSpec(task, formula),
            global_variables=tuple(global_variables),
            name=name,
        )
        return PropertyEntry(prop=prop, expect=expect)

    def parse_formula(self) -> Formula:
        left = self._f_until()
        if self.eat_op("->"):
            right = self.parse_formula()
            return OrF(NotF(left), right)
        return left

    def _f_until(self) -> Formula:
        left = self._f_or()
        if self.eat_word("U"):
            return Until(left, self._f_until())
        if self.eat_word("R"):
            return Release(left, self._f_until())
        return left

    def _f_or(self) -> Formula:
        parts = [self._f_and()]
        while self.eat_word("or"):
            parts.append(self._f_and())
        return parts[0] if len(parts) == 1 else OrF(*parts)

    def _f_and(self) -> Formula:
        parts = [self._f_unary()]
        while self.eat_word("and"):
            parts.append(self._f_unary())
        return parts[0] if len(parts) == 1 else AndF(*parts)

    def _f_unary(self) -> Formula:
        if self.eat_word("not"):
            return NotF(self._f_unary())
        if self.eat_word("G"):
            return Release(FalseF(), self._f_unary())
        if self.eat_word("F"):
            return Until(TrueF(), self._f_unary())
        if self.eat_word("X"):
            return Next(self._f_unary())
        return self._f_primary()

    def _f_primary(self) -> Formula:
        if self.eat_word("true"):
            return TrueF()
        if self.eat_word("false"):
            return FalseF()
        if self.at_call("all"):
            self.next()
            parts = self._f_list()
            if not parts:
                raise self.error("all(…) needs at least one formula")
            return AndF(*parts)
        if self.at_call("any"):
            self.next()
            parts = self._f_list()
            if not parts:
                raise self.error("any(…) needs at least one formula")
            return OrF(*parts)
        if self.eat_op("("):
            inner = self.parse_formula()
            self.expect_op(")")
            return inner
        if self.eat_op("{"):
            condition = self.parse_condition()
            self.expect_op("}")
            return Prop(CondProp(condition))
        if self.eat_op("["):
            inner = self.parse_formula()
            self.expect_op("]")
            self.expect_op("@")
            task = self.expect_ident("child task name")
            return Prop(ChildProp(HLTLSpec(task, inner)))
        if self.at_call("open"):
            self.next()
            self.expect_op("(")
            task = self.expect_ident("task name")
            self.expect_op(")")
            return Prop(ServiceProp(ServiceRef(ServiceKind.OPENING, task)))
        if self.at_call("close"):
            self.next()
            self.expect_op("(")
            task = self.expect_ident("task name")
            self.expect_op(")")
            return Prop(ServiceProp(ServiceRef(ServiceKind.CLOSING, task)))
        if self.at_call("svc"):
            self.next()
            self.expect_op("(")
            task = self.expect_ident("task name")
            self.expect_op(".")
            name = self.expect_name("service name")
            self.expect_op(")")
            return Prop(ServiceProp(ServiceRef(ServiceKind.INTERNAL, task, name)))
        raise self.error(
            f"expected a formula, got {self.peek().text or 'end of file'!r}"
        )

    def _f_list(self) -> list[Formula]:
        self.expect_op("(")
        parts: list[Formula] = []
        if not self.at_op(")"):
            while True:
                parts.append(self.parse_formula())
                if not self.eat_op(","):
                    break
        self.expect_op(")")
        return parts

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------
    def parse_instance(
        self, schema: DatabaseSchema
    ) -> tuple[str, DatabaseInstance]:
        self.expect_word("instance")
        name = self.expect_name("instance name")
        self.expect_op("{")
        db = DatabaseInstance(schema)
        while self.peek().kind == IDENT and not self.at_op("}"):
            rel_token = self.peek()
            rel_name = self.expect_ident("relation name")
            if rel_name not in schema:
                raise self.error(f"unknown relation {rel_name!r}", rel_token)
            relation = schema.relation(rel_name)
            label = self.expect_name("row label")
            self.expect_op("(")
            given: dict[str, object] = {}
            if not self.at_op(")"):
                while True:
                    attr_token = self.peek()
                    attr_name = self.expect_name("attribute name")
                    if not relation.has_attribute(attr_name) or attr_name == "id":
                        raise self.error(
                            f"{rel_name} has no settable attribute {attr_name!r}",
                            attr_token,
                        )
                    if attr_name in given:
                        raise self.error(
                            f"duplicate attribute {attr_name!r}", attr_token
                        )
                    self.expect_op(":")
                    attribute = relation.attribute(attr_name)
                    if attribute.kind is AttributeKind.NUMERIC:
                        negative = self.eat_op("-")
                        number = self.peek()
                        if number.kind != NUMBER:
                            raise self.error("numeric attribute needs a number")
                        self.next()
                        value = self._fraction(number)
                        given[attr_name] = -value if negative else value
                    else:
                        given[attr_name] = self.expect_name("row label")
                    if not self.eat_op(","):
                        break
            self.expect_op(")")
            missing = [
                a.name for a in relation.attributes if a.name not in given
            ]
            if missing:
                raise self.error(
                    f"{rel_name} row {label!r} misses attributes: "
                    f"{', '.join(missing)}",
                    rel_token,
                )
            values = [given[a.name] for a in relation.attributes]
            try:
                db.add(rel_name, label, *values)
            except ReproError as exc:
                raise self.error(f"invalid row: {exc}", rel_token) from exc
        self.expect_op("}")
        try:
            db.validate()
        except ReproError as exc:
            raise self.error(f"instance {name!r}: {exc}") from exc
        return name, db

    # ------------------------------------------------------------------
    # config
    # ------------------------------------------------------------------
    def parse_config(self) -> VerifierConfig:
        self.expect_word("config")
        self.expect_op("{")
        fields: dict[str, object] = {}
        while self.peek().kind == IDENT:
            token = self.peek()
            key = self.expect_ident("config field")
            if key not in _CONFIG_FIELDS:
                known = ", ".join(sorted(_CONFIG_FIELDS))
                raise self.error(
                    f"unknown config field {key!r} (known: {known})", token
                )
            if key in fields:
                raise self.error(f"duplicate config field {key!r}", token)
            self.expect_op(":")
            fields[key] = self._config_value()
        self.expect_op("}")
        try:
            return VerifierConfig(**fields)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise self.error(f"invalid config: {exc}") from exc

    def _config_value(self) -> object:
        if self.eat_word("true"):
            return True
        if self.eat_word("false"):
            return False
        if self.eat_word("null"):
            return None
        negative = self.eat_op("-")
        token = self.peek()
        if token.kind == NUMBER:
            self.next()
            if "." in token.text or "e" in token.text or "E" in token.text:
                value: object = float(token.text)
            elif "/" in token.text:
                value = float(Fraction(token.text))
            else:
                value = int(token.text)
            return -value if negative else value  # type: ignore[operator]
        if negative:
            raise self.error("expected a number after `-`")
        if token.kind in (IDENT, STRING):
            self.next()
            return token.text
        raise self.error("expected a config value")


def parse_document(text: str, source: str = "<string>") -> ScenarioDocument:
    """Parse a complete ``.has`` document into a :class:`ScenarioDocument`."""
    return _Parser(text, source).parse_document()


def parse_condition(text: str, kinds: dict[str, VarKind] | None = None) -> Condition:
    """Parse a standalone condition (tests and tooling); ``kinds`` maps
    free-variable names to their kinds."""
    parser = _Parser(text, "<condition>")
    parser.kinds = dict(kinds or {})
    condition = parser.parse_condition()
    if parser.peek().kind != EOF:
        raise parser.error(f"trailing input: {parser.peek().text!r}")
    return condition


def parse_formula(text: str, kinds: dict[str, VarKind] | None = None) -> Formula:
    """Parse a standalone HLTL-FO formula (tests and tooling)."""
    parser = _Parser(text, "<formula>")
    parser.kinds = dict(kinds or {})
    formula = parser.parse_formula()
    if parser.peek().kind != EOF:
        raise parser.error(f"trailing input: {parser.peek().text!r}")
    return formula
