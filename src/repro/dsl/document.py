"""The document model of a ``.has`` scenario file.

A document bundles everything one file can declare: a single HAS system,
any number of HLTL-FO properties (each with an optional expected
verdict), optional concrete database instances, and an optional verifier
configuration.  :meth:`ScenarioDocument.jobs` turns the document into
content-addressed :class:`~repro.service.jobs.VerificationJob` batches —
a ``.has`` file is exactly one scenario's worth of verification traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.database.instance import DatabaseInstance
from repro.errors import SpecificationError
from repro.has.system import HAS
from repro.hltl.formulas import HLTLProperty
from repro.verifier.config import VerifierConfig

#: The verdicts a property block may declare with ``expect:``.
EXPECTATIONS = ("holds", "violated", "budget_exceeded")


@dataclass
class PropertyEntry:
    """One property of a document plus its documented expected verdict."""

    prop: HLTLProperty
    expect: str | None = None

    def __post_init__(self) -> None:
        if self.expect is not None and self.expect not in EXPECTATIONS:
            raise SpecificationError(
                f"property {self.prop.name!r}: expect must be one of "
                f"{', '.join(EXPECTATIONS)}, not {self.expect!r}"
            )

    @property
    def expected_holds(self) -> bool | None:
        """The job-level expectation: True/False for holds/violated,
        None for budget_exceeded (jobs only track boolean verdicts)."""
        if self.expect == "holds":
            return True
        if self.expect == "violated":
            return False
        return None


@dataclass
class ScenarioDocument:
    """A parsed ``.has`` file: system + properties + instances + config."""

    system: HAS
    properties: list[PropertyEntry] = field(default_factory=list)
    instances: list[tuple[str, DatabaseInstance]] = field(default_factory=list)
    config: VerifierConfig | None = None
    source: str = "<string>"

    def property_named(self, name: str) -> PropertyEntry:
        for entry in self.properties:
            if entry.prop.name == name:
                return entry
        known = ", ".join(e.prop.name for e in self.properties) or "none"
        raise SpecificationError(
            f"{self.source}: no property {name!r} (declared: {known})"
        )

    def instance_named(self, name: str) -> DatabaseInstance:
        for label, db in self.instances:
            if label == name:
                return db
        known = ", ".join(label for label, _ in self.instances) or "none"
        raise SpecificationError(
            f"{self.source}: no instance {name!r} (declared: {known})"
        )

    def jobs(self, default_config: VerifierConfig | None = None) -> list:
        """One :class:`VerificationJob` per property.

        A ``config`` block in the file wins over ``default_config`` —
        budget-boxed scenarios carry their own tight budgets so their
        documented verdict is reproducible under any suite defaults.
        ``expect:`` verdicts become full-status job expectations, so a
        batch run flags ANY drift from the documented verdict
        (including a budget-boxed scenario finishing within budget) as
        UNEXPECTED.
        """
        from repro.service.jobs import VerificationJob

        config = self.config or default_config or VerifierConfig()
        return [
            VerificationJob(
                has=self.system,
                prop=entry.prop,
                config=config,
                name=f"{self.system.name}::{entry.prop.name}",
                expected_holds=entry.expected_holds,
                expected_status=entry.expect,
            )
            for entry in self.properties
        ]
