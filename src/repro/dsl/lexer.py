"""Tokenizer for the ``.has`` scenario language.

The lexer is deliberately small: identifiers, rational/float numbers,
double-quoted strings, a fixed set of punctuation, and ``#`` line
comments.  Keywords are *contextual* — the parser checks token text where
the grammar expects a keyword, so ``U``, ``open``, ``pre`` … remain legal
variable and relation names everywhere else.  Every token carries its
line/column for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError


class DslSyntaxError(SpecificationError):
    """A lexical or syntactic error in a ``.has`` document."""

    def __init__(self, message: str, source: str, line: int, column: int):
        super().__init__(f"{source}:{line}:{column}: {message}")
        self.source = source
        self.line = line
        self.column = column


#: Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
OP = "op"
EOF = "eof"

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<-",
    "->",
    "!=",
    "<=",
    ">=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ",",
    ":",
    ".",
    "@",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r}@{self.line}:{self.column})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(text: str, source: str = "<string>") -> list[Token]:
    """Tokenize a ``.has`` document; raises :class:`DslSyntaxError`."""
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_part(text[j]):
                j += 1
            tokens.append(Token(IDENT, text[i:j], start_line, start_col))
            col += j - i
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            # one of:  123   123/456   123.456   1.5e-3
            if j < n and text[j] == "/" and j + 1 < n and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            elif j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
                if j < n and text[j] in "eE":
                    k = j + 1
                    if k < n and text[k] in "+-":
                        k += 1
                    if k < n and text[k].isdigit():
                        j = k
                        while j < n and text[j].isdigit():
                            j += 1
            tokens.append(Token(NUMBER, text[i:j], start_line, start_col))
            col += j - i
            i = j
            continue
        if ch == '"':
            j = i + 1
            value: list[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise DslSyntaxError(
                        "unterminated string", source, start_line, start_col
                    )
                if text[j] == "\\" and j + 1 < n:
                    value.append(text[j + 1])
                    j += 2
                else:
                    value.append(text[j])
                    j += 1
            if j >= n:
                raise DslSyntaxError(
                    "unterminated string", source, start_line, start_col
                )
            tokens.append(Token(STRING, "".join(value), start_line, start_col))
            col += j + 1 - i
            i = j + 1
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(OP, op, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            raise DslSyntaxError(
                f"unexpected character {ch!r}", source, start_line, start_col
            )
    tokens.append(Token(EOF, "", line, col))
    return tokens
