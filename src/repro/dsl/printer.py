"""Canonical pretty-printer for the ``.has`` scenario language.

The printer is the inverse of :mod:`repro.dsl.parser` **at the serialized
level**: for every supported model object ``x``,
``to_dict(parse(render(x))) == to_dict(x)``, so a printed scenario keeps
the exact job content hash of the object it was printed from.  The output
is also a *parse fixed point*: ``render(parse(render(x))) == render(x)``.

Canonicalization choices (the parser accepts more):

* ``Eq`` prints infix ``a = b`` over atomic terms; ``Not(Eq(a, b))``
  prints ``a != b``.  An :class:`ArithAtom` always prints as
  ``⟨linear expression⟩ REL 0``; when the expression would look like a
  bare atomic term under ``=``/``!=`` (one coefficient-1 unknown and no
  constant, or no unknowns at all) an explicit ``+ 0`` keeps it in the
  arithmetic grammar.
* ``F``/``G`` print for ``true U φ`` / ``false R φ`` (the structural
  encodings of Eventually/Always).
* n-ary ``And``/``Or``/``AndF``/``OrF`` print as infix chains; same-type
  operands are parenthesized (LTL connectives do not flatten, so the
  tree shape matters for hashing); degenerate chains with fewer than two
  operands print as ``all(…)`` / ``any(…)``.
* Default opening/closing services, ``pre: true``, ``post: true``, and
  ``update: none`` are omitted; config blocks list only fields that
  differ from the :class:`~repro.verifier.config.VerifierConfig`
  defaults.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.database.instance import DatabaseInstance, Identifier
from repro.database.schema import AttributeKind, DatabaseSchema
from repro.dsl.document import PropertyEntry, ScenarioDocument
from repro.errors import SpecificationError
from repro.has.services import (
    ClosingService,
    InternalService,
    OpeningService,
    SetUpdate,
)
from repro.has.system import HAS
from repro.has.task import Task
from repro.hltl.formulas import ChildProp, CondProp, HLTLProperty, ServiceProp, SetAtom
from repro.logic.conditions import (
    And,
    ArithAtom,
    Atom,
    Condition,
    Eq,
    Exists,
    Not,
    Or,
    RelationAtom,
    _FalseCondition,
    _TrueCondition,
)
from repro.logic.terms import Const, NullTerm, Term, Variable, WildcardTerm
from repro.arith.constraints import Constraint, Rel
from repro.ltl.formulas import (
    AndF,
    FalseF,
    Formula,
    Next,
    NotF,
    OrF,
    Prop,
    Release,
    TrueF,
    Until,
)
from repro.runtime.labels import ServiceRef
from repro.verifier.config import VerifierConfig

from repro.dsl.parser import RESERVED


class DslPrintError(SpecificationError):
    """The object cannot be expressed in the ``.has`` surface syntax."""


# ----------------------------------------------------------------------
# names and numbers
# ----------------------------------------------------------------------
def _name(text: str) -> str:
    """Render a name: bare identifier when possible, else quoted."""
    if text.isidentifier() and text not in RESERVED:
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _ident(text: str, what: str) -> str:
    if not text.isidentifier() or text in RESERVED:
        raise DslPrintError(f"{what} {text!r} is not expressible as an identifier")
    return text


def _frac(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def _term(term: Term) -> str:
    if isinstance(term, Variable):
        return _ident(term.name, "variable")
    if isinstance(term, Const):
        return _frac(term.value)
    if isinstance(term, NullTerm):
        return "null"
    if isinstance(term, WildcardTerm):
        return "_"
    raise DslPrintError(f"not a renderable term: {term!r}")


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def _linexpr(constraint: Constraint) -> str:
    expr = constraint.expr
    parts: list[str] = []
    for unknown in sorted(expr.unknowns, key=repr):
        if not isinstance(unknown, Variable):
            raise DslPrintError(f"non-variable unknown {unknown!r}")
        coeff = expr.coefficient(unknown)
        name = _ident(unknown.name, "variable")
        if not parts:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{_frac(coeff)}*{name}")
        else:
            sign = " + " if coeff > 0 else " - "
            magnitude = abs(coeff)
            rendered = name if magnitude == 1 else f"{_frac(magnitude)}*{name}"
            parts.append(f"{sign}{rendered}")
    constant = expr.constant
    if constant != 0 or not parts:
        if not parts:
            parts.append(_frac(constant))
        else:
            sign = " + " if constant > 0 else " - "
            parts.append(f"{sign}{_frac(abs(constant))}")
    rendered = "".join(parts)
    if constraint.rel in (Rel.EQ, Rel.NE):
        # a bare atomic-looking expression under =/!= would re-parse as an
        # Eq atom; an explicit `+ 0` keeps it in the arithmetic grammar
        coeffs = expr.coeffs
        bare_var = (
            len(coeffs) == 1
            and next(iter(coeffs.values())) == 1
            and constant == 0
        )
        bare_const = not coeffs
        if bare_var or bare_const:
            rendered += " + 0"
    return rendered


# ----------------------------------------------------------------------
# conditions
# ----------------------------------------------------------------------
#: Precedence levels: Exists 0 < Or 1 < And 2 < Not 3 < atoms 4.
def _cond(condition: Condition, level: int = 0) -> str:
    text, own = _cond_inner(condition)
    if own < level:
        return f"({text})"
    return text


def _cond_inner(condition: Condition) -> tuple[str, int]:
    if isinstance(condition, _TrueCondition):
        return "true", 4
    if isinstance(condition, _FalseCondition):
        return "false", 4
    if isinstance(condition, Eq):
        return f"{_term(condition.left)} = {_term(condition.right)}", 4
    if isinstance(condition, RelationAtom):
        args = ", ".join(_term(a) for a in condition.args)
        return f"{_ident(condition.relation, 'relation')}({args})", 4
    if isinstance(condition, SetAtom):
        args = ", ".join(_ident(v.name, "variable") for v in condition.args)
        return f"S[{_ident(condition.task, 'task')}]({args})", 4
    if isinstance(condition, ArithAtom):
        text = f"{_linexpr(condition.constraint)} {condition.constraint.rel.value} 0"
        return text, 4
    if isinstance(condition, Not):
        body = condition.body
        if isinstance(body, Eq):
            return f"{_term(body.left)} != {_term(body.right)}", 4
        if isinstance(body, (Atom, _TrueCondition, _FalseCondition)):
            return f"not {_cond(body, 4)}", 3
        return f"not ({_cond(body, 0)})", 3
    if isinstance(condition, And):
        if len(condition.parts) < 2:
            inner = ", ".join(_cond(p, 0) for p in condition.parts)
            return f"all({inner})", 4
        return " and ".join(_cond(p, 3) for p in condition.parts), 2
    if isinstance(condition, Or):
        if len(condition.parts) < 2:
            inner = ", ".join(_cond(p, 0) for p in condition.parts)
            return f"any({inner})", 4
        return " or ".join(_cond(p, 2) for p in condition.parts), 1
    if isinstance(condition, Exists):
        binders = ", ".join(
            f"{_ident(v.name, 'variable')}: {'id' if v.is_id else 'num'}"
            for v in condition.bound
        )
        return f"exists {binders} . {_cond(condition.body, 0)}", 0
    raise DslPrintError(f"not a renderable condition: {condition!r}")


def render_condition(condition: Condition) -> str:
    """Render a condition in the ``.has`` surface syntax."""
    return _cond(condition, 0)


# ----------------------------------------------------------------------
# formulas
# ----------------------------------------------------------------------
#: Precedence levels: U/R 0 < or 1 < and 2 < unary 3 < primary 4.
def _formula(formula: Formula, level: int = 0) -> str:
    text, own = _formula_inner(formula)
    if own < level:
        return f"({text})"
    return text


def _formula_inner(formula: Formula) -> tuple[str, int]:
    if isinstance(formula, TrueF):
        return "true", 4
    if isinstance(formula, FalseF):
        return "false", 4
    if isinstance(formula, Prop):
        return _payload(formula.payload), 4
    if isinstance(formula, NotF):
        return f"not {_formula(formula.body, 3)}", 3
    if isinstance(formula, Next):
        return f"X {_formula(formula.body, 3)}", 3
    if isinstance(formula, Until):
        if formula.left == TrueF():
            return f"F {_formula(formula.right, 3)}", 3
        return f"{_formula(formula.left, 1)} U {_formula(formula.right, 0)}", 0
    if isinstance(formula, Release):
        if formula.left == FalseF():
            return f"G {_formula(formula.right, 3)}", 3
        return f"{_formula(formula.left, 1)} R {_formula(formula.right, 0)}", 0
    if isinstance(formula, AndF):
        if len(formula.parts) < 2:
            inner = ", ".join(_formula(p, 0) for p in formula.parts)
            return f"all({inner})", 4
        return " and ".join(_formula(p, 3) for p in formula.parts), 2
    if isinstance(formula, OrF):
        if len(formula.parts) < 2:
            inner = ", ".join(_formula(p, 0) for p in formula.parts)
            return f"any({inner})", 4
        return " or ".join(_formula(p, 2) for p in formula.parts), 1
    raise DslPrintError(f"not a renderable formula: {formula!r}")


def _payload(payload) -> str:
    if isinstance(payload, CondProp):
        return f"{{{_cond(payload.condition, 0)}}}"
    if isinstance(payload, ServiceProp):
        return _service_ref(payload.ref)
    if isinstance(payload, ChildProp):
        inner = _formula(payload.spec.formula, 0)
        return f"[{inner}]@{_ident(payload.spec.task, 'task')}"
    raise DslPrintError(f"not a renderable proposition payload: {payload!r}")


def _service_ref(ref: ServiceRef) -> str:
    task = _ident(ref.task, "task")
    if ref.is_opening:
        return f"open({task})"
    if ref.is_closing:
        return f"close({task})"
    return f"svc({task}.{_name(ref.name or '')})"


def render_formula(formula: Formula) -> str:
    """Render an HLTL-FO formula in the ``.has`` surface syntax."""
    return _formula(formula, 0)


# ----------------------------------------------------------------------
# schema, tasks, system
# ----------------------------------------------------------------------
def _render_schema(schema: DatabaseSchema, indent: str) -> list[str]:
    lines = [f"{indent}schema {{"]
    for relation in schema.relations:
        attrs = []
        for attribute in relation.attributes:
            if attribute.kind is AttributeKind.NUMERIC:
                attrs.append(f"{_ident(attribute.name, 'attribute')}: num")
            else:
                attrs.append(
                    f"{_ident(attribute.name, 'attribute')}: "
                    f"ref {_ident(attribute.references or '', 'relation')}"
                )
        lines.append(
            f"{indent}  relation {_ident(relation.name, 'relation')}"
            f"({', '.join(attrs)})"
        )
    lines.append(f"{indent}}}")
    return lines


def _render_varmap(entries: Iterable[tuple[Variable, Variable]]) -> str:
    return ", ".join(
        f"{_ident(a.name, 'variable')} <- {_ident(b.name, 'variable')}"
        for a, b in entries
    )


def _render_task(task: Task, indent: str) -> list[str]:
    pad = indent + "  "
    lines = [f"{indent}task {_ident(task.name, 'task')} {{"]
    if task.variables:
        decls = ", ".join(
            f"{_ident(v.name, 'variable')}: {'id' if v.is_id else 'num'}"
            for v in task.variables
        )
        lines.append(f"{pad}vars {decls}")
    if task.set_variables:
        names = ", ".join(_ident(v.name, "variable") for v in task.set_variables)
        lines.append(f"{pad}set {names}")
    opening = task.opening
    if opening != OpeningService():
        clause = f"{pad}opening {{ pre: {_cond(opening.pre)}"
        if opening.input_map:
            clause += f" input {_render_varmap(opening.input_map.items())}"
        lines.append(clause + " }")
    closing = task.closing
    if closing != ClosingService():
        clause = f"{pad}closing {{ pre: {_cond(closing.pre)}"
        if closing.output_map:
            clause += f" output {_render_varmap(closing.output_map.items())}"
        lines.append(clause + " }")
    for service in task.services:
        lines.extend(_render_service(service, pad))
    for child in task.children:
        lines.extend(_render_task(child, pad))
    lines.append(f"{indent}}}")
    return lines


def _render_service(service: InternalService, indent: str) -> list[str]:
    pad = indent + "  "
    lines = [f"{indent}service {_name(service.name)} {{"]
    if not isinstance(service.pre, _TrueCondition):
        lines.append(f"{pad}pre: {_cond(service.pre)}")
    if not isinstance(service.post, _TrueCondition):
        lines.append(f"{pad}post: {_cond(service.post)}")
    if service.update is not SetUpdate.NONE:
        lines.append(f"{pad}update: {service.update.value}")
    lines.append(f"{indent}}}")
    return lines


def render_system(has: HAS) -> str:
    """Render a complete ``system`` block."""
    lines = [f"system {_name(has.name)} {{"]
    lines.extend(_render_schema(has.database, "  "))
    lines.append("")
    lines.extend(_render_task(has.root, "  "))
    if not isinstance(has.precondition, _TrueCondition):
        lines.append("")
        lines.append(f"  precondition: {_cond(has.precondition)}")
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# properties, instances, config, document
# ----------------------------------------------------------------------
def render_property(prop: HLTLProperty, expect: str | None = None) -> str:
    """Render a ``property`` block (optionally with its expectation)."""
    lines = [
        f"property {_name(prop.name)} on {_ident(prop.root.task, 'task')} {{"
    ]
    if prop.global_variables:
        decls = ", ".join(
            f"{_ident(v.name, 'variable')}: {'id' if v.is_id else 'num'}"
            for v in prop.global_variables
        )
        lines.append(f"  globals {decls}")
    if expect is not None:
        lines.append(f"  expect: {expect}")
    lines.append(f"  formula: {_formula(prop.root.formula)}")
    lines.append("}")
    return "\n".join(lines)


def render_instance(name: str, db: DatabaseInstance) -> str:
    """Render an ``instance`` block (rows in schema, then insertion order)."""
    lines = [f"instance {_name(name)} {{"]
    for relation in db.schema.relations:
        for row in db.rows(relation.name):
            ident = row[0]
            assert isinstance(ident, Identifier)
            cells = []
            for attribute, value in zip(relation.attributes, row[1:]):
                if attribute.kind is AttributeKind.NUMERIC:
                    rendered = _frac(Fraction(value))  # type: ignore[arg-type]
                else:
                    assert isinstance(value, Identifier)
                    rendered = _name(value.label)
                cells.append(f"{_name(attribute.name)}: {rendered}")
            lines.append(
                f"  {_ident(relation.name, 'relation')} {_name(ident.label)}"
                f" ({', '.join(cells)})"
            )
    lines.append("}")
    return "\n".join(lines)


def _config_value(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        rendered = repr(value)
        if any(ch in rendered for ch in "einEIN"):
            raise DslPrintError(f"config float {value!r} is not expressible")
        return rendered
    if isinstance(value, str):
        return _name(value)
    raise DslPrintError(f"config value {value!r} is not expressible")


def render_config(config: VerifierConfig) -> str:
    """Render a ``config`` block listing the non-default fields."""
    defaults = VerifierConfig()
    lines = ["config {"]
    for field in VerifierConfig.__dataclass_fields__:
        value = getattr(config, field)
        if value != getattr(defaults, field):
            lines.append(f"  {field}: {_config_value(value)}")
    lines.append("}")
    return "\n".join(lines)


def render_document(doc: ScenarioDocument) -> str:
    """Render a full document; the result is a parse fixed point."""
    blocks = [render_system(doc.system)]
    for entry in doc.properties:
        blocks.append(render_property(entry.prop, entry.expect))
    for name, db in doc.instances:
        blocks.append(render_instance(name, db))
    if doc.config is not None:
        blocks.append(render_config(doc.config))
    return "\n\n".join(blocks) + "\n"


def render_scenario(
    has: HAS,
    properties: Iterable[tuple[HLTLProperty, str | None]] = (),
    instances: Iterable[tuple[str, DatabaseInstance]] = (),
    config: VerifierConfig | None = None,
) -> str:
    """Render loose model objects as one ``.has`` document (used by the
    fuzz corpus exporter and by tooling that has no ScenarioDocument)."""
    doc = ScenarioDocument(
        system=has,
        properties=[PropertyEntry(prop, expect) for prop, expect in properties],
        instances=list(instances),
        config=config,
    )
    return render_document(doc)
