"""``repro.dsl`` — the human-readable ``.has`` scenario front-end.

A ``.has`` file declares one complete verification scenario in text: a
database schema with its foreign-key graph, the task hierarchy with
services and opening/closing conditions, artifact (set) relations,
HLTL-FO properties with expected verdicts, optional concrete database
instances, and an optional verifier configuration.

The format round-trips losslessly through the canonical serialization of
:mod:`repro.service.serialize`: parsing the printed form of a model
object yields an object with the identical tagged-dict form — and
therefore the identical job content hash.  See ``docs/dsl.md`` for the
language reference and ``src/repro/workloads/gallery/`` for a gallery of
ready-to-run scenarios (``python -m repro suite gallery``).

Typical use::

    from repro.dsl import load_document, render_scenario

    doc = load_document("workloads/gallery/loan_approval.has")
    job = doc.jobs()[0]            # a content-addressed VerificationJob
"""

from repro.dsl.document import EXPECTATIONS, PropertyEntry, ScenarioDocument
from repro.dsl.lexer import DslSyntaxError, tokenize
from repro.dsl.loader import (
    directory_jobs,
    file_jobs,
    load_directory,
    load_document,
    loads,
    validate_document,
)
from repro.dsl.parser import parse_condition, parse_document, parse_formula
from repro.dsl.printer import (
    DslPrintError,
    render_condition,
    render_config,
    render_document,
    render_formula,
    render_instance,
    render_property,
    render_scenario,
    render_system,
)

__all__ = [
    "EXPECTATIONS",
    "PropertyEntry",
    "ScenarioDocument",
    "DslSyntaxError",
    "DslPrintError",
    "tokenize",
    "parse_document",
    "parse_condition",
    "parse_formula",
    "loads",
    "load_document",
    "load_directory",
    "directory_jobs",
    "file_jobs",
    "validate_document",
    "render_document",
    "render_system",
    "render_property",
    "render_instance",
    "render_config",
    "render_condition",
    "render_formula",
    "render_scenario",
]
