"""repro — Verification of Hierarchical Artifact Systems.

A from-scratch implementation of Deutsch, Li & Vianu, *Verification of
Hierarchical Artifact Systems* (PODS 2016): the HAS workflow model, the
HLTL-FO property language, and the symbolic model checker built on
isomorphism types and Karp–Miller analysis of per-task VASS.

Most-used entry points::

    from repro import HAS, Task, InternalService, verify
    from repro.hltl.formulas import HLTLProperty, HLTLSpec, cond, child, service
    from repro.dsl import load_document          # .has scenario files

See README.md for a worked example, docs/architecture.md for the
architecture, docs/tutorial.md for a narrated end-to-end session,
docs/dsl.md for the ``.has`` scenario language and its gallery, and
docs/performance.md for the hot-path caches and benchmark harness.
"""

from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.has import (
    HAS,
    ClosingService,
    InternalService,
    OpeningService,
    Task,
    validate_has,
)
from repro.hltl.formulas import HLTLProperty, HLTLSpec, child, cond, service
from repro.logic.terms import NULL, Const, id_var, num_var
from repro.verifier import VerificationResult, Verifier, VerifierConfig, verify
from repro.witness import ConcreteWitness, NonConcretizable, concretize

__version__ = "1.1.0"

__all__ = [
    "DatabaseSchema",
    "Relation",
    "foreign_key",
    "numeric",
    "HAS",
    "ClosingService",
    "InternalService",
    "OpeningService",
    "Task",
    "validate_has",
    "HLTLProperty",
    "HLTLSpec",
    "child",
    "cond",
    "service",
    "NULL",
    "Const",
    "id_var",
    "num_var",
    "VerificationResult",
    "Verifier",
    "VerifierConfig",
    "verify",
    "ConcreteWitness",
    "NonConcretizable",
    "concretize",
    "__version__",
]
