"""Built-in example systems, foremost the travel-booking HAS of Appendix A."""

from repro.examples.travel import (
    travel_booking,
    travel_database,
    travel_lite,
    discount_policy_property,
    discount_policy_property_lite,
    STATUS,
)

__all__ = [
    "travel_booking",
    "travel_database",
    "travel_lite",
    "discount_policy_property",
    "discount_policy_property_lite",
    "STATUS",
]
