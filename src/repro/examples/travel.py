"""The travel-booking HAS of Appendix A (Figure 1) and its HLTL-FO policy.

Database schema::

    FLIGHTS(id, price, comp_hotel_id → HOTELS)
    HOTELS(id, unit_price, discount_price)

Task hierarchy (Figure 1)::

    ManageTrips
    ├── AddHotel ── AlsoBookHotel
    ├── AddFlight
    ├── BookInitialTrip
    └── Cancel

String statuses are numeric constants (the paper does the same); variable
names are prefixed per task because Definition 3 requires disjoint
variable sets.

Two variants are provided:

* ``travel_booking(fixed=False)`` — the paper's specification, in which
  **AddHotel and Cancel may run concurrently** after a successful payment;
  the discount/cancellation policy of Appendix A.2 is then violated
  (pay for a flight, reserve the hotel at the discount price, cancel the
  flight without penalty).
* ``travel_booking(fixed=True)`` — the repaired specification.  The paper
  sketches a mutex variable; an equivalent guard expressible without
  extending the model is to open ``Cancel`` only once the trip's hotel
  reservation is visible in the parent (``hotel_id ≠ null``), which
  serializes AddHotel before Cancel.  The policy then holds.

``travel_lite`` is a 3-task variant (no artifact relation, no
AddFlight/BookInitialTrip) exhibiting the same bug, small enough for quick
tests.
"""

from __future__ import annotations

from fractions import Fraction

from repro.arith.constraints import Rel, compare
from repro.arith.linexpr import var as linvar, const as linconst
from repro.database.instance import DatabaseInstance
from repro.database.schema import DatabaseSchema, Relation, foreign_key, numeric
from repro.has import HAS, ClosingService, InternalService, OpeningService, Task
from repro.has.services import SetUpdate
from repro.hltl.formulas import HLTLProperty, HLTLSpec, child, cond, service
from repro.logic.conditions import (
    And,
    ArithAtom,
    Condition,
    Eq,
    Exists,
    Implies,
    Not,
    Or,
    RelationAtom,
    TRUE,
)
from repro.logic.terms import Const, NULL, Variable, id_var, num_var
from repro.ltl.formulas import Always, Eventually, Formula, Next
from repro.runtime import labels

STATUS = {
    "Unpaid": Fraction(0),
    "Paid": Fraction(1),
    "Failed": Fraction(2),
    "FlightCanceled": Fraction(3),
    "HotelCanceled": Fraction(4),
    "AllCanceled": Fraction(5),
}


def _status(name: str) -> Const:
    return Const(STATUS[name])


def _is(variable: Variable, name: str) -> Condition:
    return Eq(variable, _status(name))


def _sum_eq(total: Variable, *parts: Variable) -> Condition:
    """total = part₁ + part₂ + …"""
    expr = linvar(total)
    for part in parts:
        expr = expr - linvar(part)
    return ArithAtom(compare(expr, Rel.EQ, linconst(0)))


def _diff_eq(result: Variable, minuend: Variable, subtrahend: Variable) -> Condition:
    """result = minuend − subtrahend"""
    return ArithAtom(
        compare(linvar(result) - linvar(minuend) + linvar(subtrahend), Rel.EQ, linconst(0))
    )


def travel_database_schema() -> DatabaseSchema:
    return DatabaseSchema(
        (
            Relation(
                "FLIGHTS",
                (numeric("price"), foreign_key("comp_hotel_id", "HOTELS")),
            ),
            Relation("HOTELS", (numeric("unit_price"), numeric("discount_price"))),
        )
    )


def travel_database() -> DatabaseInstance:
    """A small concrete instance for simulation and the examples."""
    db = DatabaseInstance(travel_database_schema())
    h1 = db.add("HOTELS", "grand", Fraction(200), Fraction(150))
    h2 = db.add("HOTELS", "plaza", Fraction(120), Fraction(100))
    db.add("FLIGHTS", "aa100", Fraction(400), h1)
    db.add("FLIGHTS", "ba200", Fraction(550), h2)
    db.validate()
    return db


# ----------------------------------------------------------------------
# the full six-task system
# ----------------------------------------------------------------------
def travel_booking(fixed: bool = False) -> HAS:
    schema = travel_database_schema()

    # -- ManageTrips (root) ------------------------------------------------
    m_flight = id_var("m_flight_id")
    m_hotel = id_var("m_hotel_id")
    m_status = num_var("m_status")
    m_paid = num_var("m_amount_paid")

    store_trip = InternalService(
        "StoreTrip",
        pre=And(
            _is(m_status, "Unpaid"),
            Or(Not(Eq(m_flight, NULL)), Not(Eq(m_hotel, NULL))),
        ),
        post=And(
            Eq(m_flight, NULL),
            Eq(m_hotel, NULL),
            _is(m_status, "Unpaid"),
            Eq(m_paid, Const(Fraction(0))),
        ),
        update=SetUpdate.INSERT,
    )
    retrieve_trip = InternalService(
        "RetrieveTrip",
        pre=_is(m_status, "Unpaid"),
        post=And(_is(m_status, "Unpaid"), Eq(m_paid, Const(Fraction(0)))),
        update=SetUpdate.RETRIEVE,
    )

    # -- AddFlight (T3) -----------------------------------------------------
    af_flight = id_var("af_flight_id")
    af_price = num_var("af_price")
    af_cid = id_var("af_cid")
    choose_flight = InternalService(
        "ChooseFlight",
        pre=TRUE,
        post=RelationAtom("FLIGHTS", (af_flight, af_price, af_cid)),
    )
    add_flight = Task(
        name="AddFlight",
        variables=(af_flight, af_price, af_cid),
        services=(choose_flight,),
        opening=OpeningService(
            pre=And(Eq(m_flight, NULL), _is(m_status, "Unpaid")),
            input_map={},
        ),
        closing=ClosingService(
            pre=Not(Eq(af_flight, NULL)),
            output_map={m_flight: af_flight},
        ),
    )

    # -- AlsoBookHotel (T6, child of AddHotel) -------------------------------
    abh_hotel_price = num_var("abh_hotel_price")
    abh_paid = num_var("abh_amount_paid")
    abh_new_paid = num_var("abh_new_amount_paid")
    abh_hotel_paid = num_var("abh_hotel_amount_paid")

    # -- AddHotel (T2) --------------------------------------------------------
    ah_flight = id_var("ah_flight_id")
    ah_hotel = id_var("ah_hotel_id")
    ah_status = num_var("ah_status")
    ah_paid = num_var("ah_amount_paid")
    ah_new_paid = num_var("ah_new_amount_paid")
    ah_disc = num_var("ah_discount_price")
    ah_unit = num_var("ah_unit_price")
    ah_hotel_price = num_var("ah_hotel_price")

    abh_pay = InternalService(
        "Pay",
        pre=TRUE,
        post=_sum_eq(abh_new_paid, abh_paid, abh_hotel_paid),
    )
    also_book_hotel = Task(
        name="AlsoBookHotel",
        variables=(abh_hotel_price, abh_paid, abh_new_paid, abh_hotel_paid),
        services=(abh_pay,),
        opening=OpeningService(
            pre=And(Not(Eq(ah_hotel, NULL)), _is(ah_status, "Paid")),
            input_map={abh_hotel_price: ah_hotel_price, abh_paid: ah_paid},
        ),
        closing=ClosingService(
            pre=Eq(abh_hotel_paid, abh_hotel_price),
            output_map={ah_new_paid: abh_new_paid},
        ),
    )

    cid = id_var("ah_cid")
    pf = num_var("ah_pf")
    choose_hotel = InternalService(
        "ChooseHotel",
        pre=TRUE,
        post=Exists(
            (cid, pf),
            And(
                Implies(Eq(ah_flight, NULL), Eq(cid, NULL)),
                Implies(
                    Not(Eq(ah_flight, NULL)),
                    RelationAtom("FLIGHTS", (ah_flight, pf, cid)),
                ),
                RelationAtom("HOTELS", (ah_hotel, ah_unit, ah_disc)),
                Implies(Eq(cid, ah_hotel), Eq(ah_hotel_price, ah_disc)),
                Implies(Not(Eq(cid, ah_hotel)), Eq(ah_hotel_price, ah_unit)),
                Eq(ah_new_paid, Const(Fraction(0))),
            ),
        ),
    )
    add_hotel = Task(
        name="AddHotel",
        variables=(
            ah_flight,
            ah_hotel,
            ah_status,
            ah_paid,
            ah_new_paid,
            ah_disc,
            ah_unit,
            ah_hotel_price,
        ),
        services=(choose_hotel,),
        opening=OpeningService(
            pre=And(
                Eq(m_hotel, NULL),
                Or(_is(m_status, "Paid"), _is(m_status, "Unpaid")),
            ),
            input_map={ah_flight: m_flight, ah_status: m_status, ah_paid: m_paid},
        ),
        closing=ClosingService(
            pre=Or(
                _is(ah_status, "Unpaid"),
                And(
                    _is(ah_status, "Paid"),
                    _diff_eq(ah_hotel_price, ah_new_paid, ah_paid),
                ),
            ),
            output_map={m_hotel: ah_hotel, m_paid: ah_new_paid},
        ),
        children=(also_book_hotel,),
    )

    # -- BookInitialTrip (T4) -------------------------------------------------
    b_flight = id_var("b_flight_id")
    b_hotel = id_var("b_hotel_id")
    b_status = num_var("b_status")
    b_paid = num_var("b_amount_paid")
    b_ticket = num_var("b_ticket_price")
    b_hotel_price = num_var("b_hotel_price")
    b_cid = id_var("b_cid")
    b_p1 = num_var("b_p1")
    b_p2 = num_var("b_p2")

    b_pay = InternalService(
        "Pay",
        pre=Or(Not(Eq(b_hotel, NULL)), Not(Eq(b_flight, NULL))),
        post=Exists(
            (b_cid, b_p1, b_p2),
            And(
                Implies(
                    Eq(b_flight, NULL),
                    And(Eq(b_ticket, Const(Fraction(0))), Eq(b_cid, NULL)),
                ),
                Implies(
                    Not(Eq(b_flight, NULL)),
                    RelationAtom("FLIGHTS", (b_flight, b_ticket, b_cid)),
                ),
                Implies(Eq(b_hotel, NULL), Eq(b_hotel_price, Const(Fraction(0)))),
                Implies(
                    Not(Eq(b_hotel, NULL)),
                    And(
                        RelationAtom("HOTELS", (b_hotel, b_p1, b_p2)),
                        Implies(Eq(b_hotel, b_cid), Eq(b_hotel_price, b_p2)),
                        Implies(Not(Eq(b_hotel, b_cid)), Eq(b_hotel_price, b_p1)),
                    ),
                ),
                Implies(
                    _sum_eq(b_paid, b_ticket, b_hotel_price),
                    _is(b_status, "Paid"),
                ),
                Implies(
                    Not(_sum_eq(b_paid, b_ticket, b_hotel_price)),
                    _is(b_status, "Failed"),
                ),
            ),
        ),
    )
    book_initial_trip = Task(
        name="BookInitialTrip",
        variables=(
            b_flight,
            b_hotel,
            b_status,
            b_paid,
            b_ticket,
            b_hotel_price,
        ),
        services=(b_pay,),
        opening=OpeningService(
            pre=_is(m_status, "Unpaid"),
            input_map={b_flight: m_flight, b_hotel: m_hotel},
        ),
        closing=ClosingService(
            pre=Or(_is(b_status, "Paid"), _is(b_status, "Failed")),
            output_map={m_status: b_status, m_paid: b_paid},
        ),
    )

    # -- Cancel (T5) ------------------------------------------------------------
    c_flight = id_var("c_flight_id")
    c_hotel = id_var("c_hotel_id")
    c_paid = num_var("c_amount_paid")
    c_ticket = num_var("c_ticket_price")
    c_disc = num_var("c_discount_price")
    c_unit = num_var("c_unit_price")
    c_hotel_price = num_var("c_hotel_price")
    c_refund = num_var("c_amount_refunded")
    c_status = num_var("c_status")
    c_cid = id_var("c_cid")

    discounted = And(Not(Eq(c_hotel, NULL)), Eq(c_hotel_price, c_disc))
    penalized = ArithAtom(
        compare(
            linvar(c_refund) - linvar(c_ticket) + linvar(c_unit) - linvar(c_disc),
            Rel.EQ,
            linconst(0),
        )
    )
    not_canceled_yet = And(
        Not(_is(c_status, "FlightCanceled")),
        Not(_is(c_status, "HotelCanceled")),
        Not(_is(c_status, "AllCanceled")),
    )
    cancel_flight = InternalService(
        "CancelFlight",
        pre=And(Not(Eq(c_flight, NULL)), not_canceled_yet),
        post=Exists(
            (c_cid,),
            And(
                RelationAtom("FLIGHTS", (c_flight, c_ticket, c_cid)),
                _diff_eq(c_hotel_price, c_paid, c_ticket),
                Implies(
                    Not(Eq(c_hotel, NULL)),
                    And(
                        RelationAtom("HOTELS", (c_hotel, c_unit, c_disc)),
                        Implies(Not(discounted), Eq(c_refund, c_ticket)),
                        Implies(discounted, penalized),
                    ),
                ),
                _is(c_status, "FlightCanceled"),
            ),
        ),
    )
    cancel_hotel = InternalService(
        "CancelHotel",
        pre=And(Not(Eq(c_hotel, NULL)), not_canceled_yet),
        post=Exists(
            (c_cid,),
            And(
                RelationAtom("HOTELS", (c_hotel, c_unit, c_disc)),
                Implies(Not(Eq(c_flight, NULL)),
                        RelationAtom("FLIGHTS", (c_flight, c_ticket, c_cid))),
                _diff_eq(c_hotel_price, c_paid, c_ticket),
                Eq(c_refund, c_hotel_price),
                _is(c_status, "HotelCanceled"),
            ),
        ),
    )
    cancel_both = InternalService(
        "CancelBoth",
        pre=not_canceled_yet,
        post=And(Eq(c_refund, c_paid), _is(c_status, "AllCanceled")),
    )
    cancel_opening = And(_is(m_status, "Paid")) if not fixed else And(
        _is(m_status, "Paid"), Not(Eq(m_hotel, NULL))
    )
    cancel = Task(
        name="Cancel",
        variables=(
            c_flight,
            c_hotel,
            c_paid,
            c_ticket,
            c_disc,
            c_unit,
            c_hotel_price,
            c_refund,
            c_status,
        ),
        services=(cancel_flight, cancel_hotel, cancel_both),
        opening=OpeningService(
            pre=cancel_opening,
            input_map={c_flight: m_flight, c_hotel: m_hotel, c_paid: m_paid},
        ),
        closing=ClosingService(
            pre=TRUE,
            output_map={m_status: c_status},
        ),
    )

    manage_trips = Task(
        name="ManageTrips",
        variables=(m_flight, m_hotel, m_status, m_paid),
        set_variables=(m_flight, m_hotel),
        services=(store_trip, retrieve_trip),
        opening=OpeningService(),
        closing=ClosingService(),
        children=(add_hotel, add_flight, book_initial_trip, cancel),
    )
    return HAS(
        schema,
        manage_trips,
        name=f"travel-booking-{'fixed' if fixed else 'buggy'}",
    )


def discount_policy_property(has: HAS) -> HLTLProperty:
    """The Appendix A.2 policy, as an HLTL-FO property of ManageTrips:

    ``F [F (Discounted ∧ X σ^o_AlsoBookHotel)]_AddHotel →
      G (σ^o_Cancel → [G (CancelFlight → Penalized)]_Cancel)``
    """
    add_hotel = has.task("AddHotel")
    cancel = has.task("Cancel")
    ah = {v.name: v for v in add_hotel.variables}
    c = {v.name: v for v in cancel.variables}

    ah_discounted = And(
        Not(Eq(ah["ah_hotel_id"], NULL)),
        Eq(ah["ah_hotel_price"], ah["ah_discount_price"]),
    )
    c_penalized = ArithAtom(
        compare(
            linvar(c["c_amount_refunded"])
            - linvar(c["c_ticket_price"])
            + linvar(c["c_unit_price"])
            - linvar(c["c_discount_price"]),
            Rel.EQ,
            linconst(0),
        )
    )
    antecedent: Formula = Eventually(
        child(
            "AddHotel",
            Eventually(
                cond(ah_discounted)
                & Next(service(labels.opening("AlsoBookHotel")))
            ),
        )
    )
    consequent: Formula = Always(
        service(labels.opening("Cancel")).implies(
            child(
                "Cancel",
                Always(
                    service(labels.internal("Cancel", "CancelFlight")).implies(
                        cond(c_penalized)
                    )
                ),
            )
        )
    )
    return HLTLProperty(
        HLTLSpec("ManageTrips", antecedent.implies(consequent)),
        name="discount-cancellation-policy",
    )


# ----------------------------------------------------------------------
# the lite three-task variant
# ----------------------------------------------------------------------
def travel_lite(fixed: bool = False) -> HAS:
    """ManageTrips + AddHotel + Cancel, no artifact relation or payments:
    small enough for fast tests, same concurrency bug."""
    schema = travel_database_schema()

    m_flight = id_var("l_flight_id")
    m_hotel = id_var("l_hotel_id")
    m_status = num_var("l_status")

    ah_flight = id_var("lah_flight_id")
    ah_hotel = id_var("lah_hotel_id")
    ah_disc = num_var("lah_discount_price")
    ah_unit = num_var("lah_unit_price")
    ah_price = num_var("lah_hotel_price")
    ah_cid = id_var("lah_cid")
    ah_pf = num_var("lah_pf")

    choose_hotel = InternalService(
        "ChooseHotel",
        pre=TRUE,
        post=Exists(
            (ah_cid, ah_pf),
            And(
                Implies(Eq(ah_flight, NULL), Eq(ah_cid, NULL)),
                Implies(
                    Not(Eq(ah_flight, NULL)),
                    RelationAtom("FLIGHTS", (ah_flight, ah_pf, ah_cid)),
                ),
                RelationAtom("HOTELS", (ah_hotel, ah_unit, ah_disc)),
                Implies(Eq(ah_cid, ah_hotel), Eq(ah_price, ah_disc)),
                Implies(Not(Eq(ah_cid, ah_hotel)), Eq(ah_price, ah_unit)),
            ),
        ),
    )
    add_hotel = Task(
        name="AddHotel",
        variables=(ah_flight, ah_hotel, ah_disc, ah_unit, ah_price, ah_cid, ah_pf),
        services=(choose_hotel,),
        opening=OpeningService(
            pre=And(Eq(m_hotel, NULL), _is(m_status, "Paid")),
            input_map={ah_flight: m_flight},
        ),
        closing=ClosingService(
            pre=Not(Eq(ah_hotel, NULL)),
            output_map={m_hotel: ah_hotel},
        ),
    )

    c_flight = id_var("lc_flight_id")
    c_hotel = id_var("lc_hotel_id")
    c_refund = num_var("lc_amount_refunded")
    c_ticket = num_var("lc_ticket_price")
    c_cid = id_var("lc_cid")

    cancel_flight = InternalService(
        "CancelFlight",
        pre=Not(Eq(c_flight, NULL)),
        post=Exists(
            (c_cid,),
            And(
                RelationAtom("FLIGHTS", (c_flight, c_ticket, c_cid)),
                # full refund allowed only when no hotel reservation exists
                Implies(Eq(c_hotel, NULL), Eq(c_refund, c_ticket)),
            ),
        ),
    )
    cancel = Task(
        name="Cancel",
        variables=(c_flight, c_hotel, c_refund, c_ticket, c_cid),
        services=(cancel_flight,),
        opening=OpeningService(
            pre=(
                _is(m_status, "Paid")
                if not fixed
                else And(_is(m_status, "Paid"), Not(Eq(m_hotel, NULL)))
            ),
            input_map={c_flight: m_flight, c_hotel: m_hotel},
        ),
        closing=ClosingService(pre=TRUE, output_map={}),
    )

    pay = InternalService(
        "MarkPaid",
        pre=_is(m_status, "Unpaid"),
        post=Exists(
            (id_var("l_pf_cid"),),
            And(
                _is(m_status, "Paid"),
                RelationAtom(
                    "FLIGHTS", (m_flight, num_var("l_pf_price"), id_var("l_pf_cid"))
                ),
                Eq(m_hotel, NULL),
            ),
        ),
    )
    manage = Task(
        name="ManageTrips",
        variables=(m_flight, m_hotel, m_status, num_var("l_pf_price")),
        services=(pay,),
        opening=OpeningService(),
        closing=ClosingService(),
        children=(add_hotel, cancel),
    )
    return HAS(schema, manage, name=f"travel-lite-{'fixed' if fixed else 'buggy'}")


def discount_policy_property_lite(has: HAS) -> HLTLProperty:
    """Lite policy: whenever AddHotel runs at all, any concurrent Cancel
    must see the hotel reservation (i.e. not give a no-hotel full refund):

    ``F [true]_AddHotel → G (σ^o_Cancel → [G¬(CancelFlight ∧ hotel=null)]_Cancel)``
    """
    cancel = has.task("Cancel")
    c = {v.name: v for v in cancel.variables}
    from repro.ltl.formulas import NotF, TrueF

    antecedent = Eventually(child("AddHotel", TrueF()))
    consequent = Always(
        service(labels.opening("Cancel")).implies(
            child(
                "Cancel",
                Always(
                    NotF(
                        service(labels.internal("Cancel", "CancelFlight"))
                        & cond(Eq(c["lc_hotel_id"], NULL))
                    )
                ),
            )
        )
    )
    return HLTLProperty(
        HLTLSpec("ManageTrips", antecedent.implies(consequent)),
        name="lite-discount-policy",
    )
