"""Services of tasks (Definitions 5 and 6).

* :class:`InternalService` — guarded update of the task's variables and its
  artifact relation (insert / retrieve / both / none of the fixed tuple
  ``s̄^T``).
* :class:`OpeningService` — guard over the *parent's* variables plus the
  1-1 input-variable mapping ``f_in : x̄^{Tc}_in → x̄^T``.
* :class:`ClosingService` — guard over the task's own variables plus the
  1-1 output-variable mapping ``f_out : x̄^T_{Tc↑} → x̄^{Tc}``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import SpecificationError
from repro.logic.conditions import Condition, FALSE, TRUE
from repro.logic.terms import Variable


class SetUpdate(enum.Enum):
    """The four possible values of δ in Definition 5."""

    NONE = "none"
    INSERT = "insert"            # {+S^T(s̄^T)}
    RETRIEVE = "retrieve"        # {-S^T(s̄^T)}
    BOTH = "insert+retrieve"     # {+S^T(s̄^T), -S^T(s̄^T)}

    @property
    def inserts(self) -> bool:
        return self in (SetUpdate.INSERT, SetUpdate.BOTH)

    @property
    def retrieves(self) -> bool:
        return self in (SetUpdate.RETRIEVE, SetUpdate.BOTH)


@dataclass(frozen=True)
class InternalService:
    """An internal service σ = (π, ψ, δ) of a task."""

    name: str
    pre: Condition = TRUE
    post: Condition = TRUE
    update: SetUpdate = SetUpdate.NONE

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("internal service needs a name")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InternalService({self.name})"


def _frozen_mapping(mapping: Mapping[Variable, Variable]) -> Mapping[Variable, Variable]:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class OpeningService:
    """σ^o_Tc = (π, f_in): guard over parent variables, input mapping.

    ``input_map`` maps each input variable of the child to the parent
    variable whose value it receives.  For the root task the map instead
    lists the designated input variables mapped to themselves (their
    values are chosen by the environment, constrained by Π).
    """

    pre: Condition = TRUE
    input_map: Mapping[Variable, Variable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "input_map", _frozen_mapping(self.input_map))
        values = list(self.input_map.values())
        if len(set(values)) != len(values):
            raise SpecificationError("f_in must be 1-1")
        for child_var, parent_var in self.input_map.items():
            if child_var.kind is not parent_var.kind:
                raise SpecificationError(
                    f"f_in maps {child_var!r} to {parent_var!r} of different kind"
                )

    def __reduce__(self):
        # MappingProxyType does not pickle; rebuild from a plain dict
        return (type(self), (self.pre, dict(self.input_map)))

    @property
    def input_variables(self) -> tuple[Variable, ...]:
        """``x̄^{Tc}_in`` — the domain of f_in."""
        return tuple(self.input_map.keys())


@dataclass(frozen=True)
class ClosingService:
    """σ^c_Tc = (π, f_out): guard over own variables, output mapping.

    ``output_map`` maps each parent variable receiving a result to the
    child variable providing it (``f_out : x̄^T_{Tc↑} → x̄^{Tc}``).
    """

    pre: Condition = FALSE
    output_map: Mapping[Variable, Variable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "output_map", _frozen_mapping(self.output_map))
        values = list(self.output_map.values())
        if len(set(values)) != len(values):
            raise SpecificationError("f_out must be 1-1")
        for parent_var, child_var in self.output_map.items():
            if parent_var.kind is not child_var.kind:
                raise SpecificationError(
                    f"f_out maps {parent_var!r} to {child_var!r} of different kind"
                )

    def __reduce__(self):
        # MappingProxyType does not pickle; rebuild from a plain dict
        return (type(self), (self.pre, dict(self.output_map)))

    @property
    def returned_parent_variables(self) -> tuple[Variable, ...]:
        """``x̄^T_{Tc↑}`` — parent variables overwritten on return."""
        return tuple(self.output_map.keys())

    @property
    def return_variables(self) -> tuple[Variable, ...]:
        """``x̄^{Tc}_ret`` — the child's to-be-returned variables."""
        return tuple(self.output_map.values())
