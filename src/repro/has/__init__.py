"""The Hierarchical Artifact System model (Section 2, Definitions 2–7).

A HAS is ``Γ = (A, Σ, Π)``: an artifact schema (a database schema plus a
rooted tree of task schemas), services (internal / opening / closing), and
a global pre-condition Π over the root task's input variables.
"""

from repro.has.services import ClosingService, InternalService, OpeningService, SetUpdate
from repro.has.task import Task
from repro.has.system import HAS
from repro.has.restrictions import validate_has

__all__ = [
    "ClosingService",
    "InternalService",
    "OpeningService",
    "SetUpdate",
    "Task",
    "HAS",
    "validate_has",
]
