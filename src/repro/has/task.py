"""Task schemas and the task hierarchy (Definitions 2 and 3).

A task owns a tuple of artifact variables ``x̄^T``, an artifact relation
``S^T`` holding tuples of the fixed ID-variable sequence ``s̄^T``, a set of
internal services, an opening and a closing service, and child tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SpecificationError
from repro.has.services import ClosingService, InternalService, OpeningService
from repro.logic.terms import Variable, VarKind


@dataclass(frozen=True)
class Task:
    """A task schema ``T = (x̄^T, S^T, s̄^T)`` with its services and children."""

    name: str
    variables: tuple[Variable, ...]
    set_variables: tuple[Variable, ...] = ()
    services: tuple[InternalService, ...] = ()
    opening: OpeningService = field(default_factory=OpeningService)
    closing: ClosingService = field(default_factory=ClosingService)
    children: tuple["Task", ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SpecificationError(f"invalid task name {self.name!r}")
        if len(set(self.variables)) != len(self.variables):
            raise SpecificationError(f"{self.name}: duplicate artifact variables")
        var_set = set(self.variables)
        for sv in self.set_variables:
            if sv not in var_set:
                raise SpecificationError(
                    f"{self.name}: set variable {sv!r} is not an artifact variable"
                )
            if sv.kind is not VarKind.ID:
                raise SpecificationError(
                    f"{self.name}: set variable {sv!r} must be an ID variable (Def. 2)"
                )
        if len(set(self.set_variables)) != len(self.set_variables):
            raise SpecificationError(f"{self.name}: duplicate set variables")
        names = {s.name for s in self.services}
        if len(names) != len(self.services):
            raise SpecificationError(f"{self.name}: duplicate service names")
        child_names = {c.name for c in self.children}
        if len(child_names) != len(self.children):
            raise SpecificationError(f"{self.name}: duplicate child task names")

    # ------------------------------------------------------------------
    # derived vocabulary
    # ------------------------------------------------------------------
    @property
    def set_relation_name(self) -> str:
        """The artifact relation symbol ``S^T``."""
        return f"S_{self.name}"

    @property
    def id_variables(self) -> tuple[Variable, ...]:
        return tuple(v for v in self.variables if v.kind is VarKind.ID)

    @property
    def numeric_variables(self) -> tuple[Variable, ...]:
        return tuple(v for v in self.variables if v.kind is VarKind.NUMERIC)

    @property
    def input_variables(self) -> tuple[Variable, ...]:
        """``x̄^T_in`` — the domain of this task's f_in."""
        return self.opening.input_variables

    @property
    def return_variables(self) -> tuple[Variable, ...]:
        """``x̄^T_ret`` — this task's variables returned to the parent."""
        return self.closing.return_variables

    @property
    def has_set(self) -> bool:
        return bool(self.set_variables)

    def child(self, name: str) -> "Task":
        for task in self.children:
            if task.name == name:
                return task
        raise SpecificationError(f"{self.name}: no child task {name!r}")

    def service(self, name: str) -> InternalService:
        for service in self.services:
            if service.name == name:
                return service
        raise SpecificationError(f"{self.name}: no internal service {name!r}")

    def walk(self) -> Iterator["Task"]:
        """This task and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def descendants(self) -> Iterator["Task"]:
        for child in self.children:
            yield from child.walk()

    @property
    def depth(self) -> int:
        """Height of the subtree rooted here (leaf = 1) — the ``h`` of
        Tables 1 and 2 when taken at the root."""
        if not self.children:
            return 1
        return 1 + max(child.depth for child in self.children)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name}, vars={len(self.variables)}, children={len(self.children)})"
