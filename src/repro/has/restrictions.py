"""Static validation of HAS specifications (Section 2 + Section 6).

The eight restrictions of Section 6 are enforced partly here (those that
are static properties of the specification) and partly by the operational
semantics in ``repro.runtime`` (those that constrain runs):

===  =============================================================  =========
 #   restriction                                                    enforced
===  =============================================================  =========
 1   internal transitions propagate only input parameters           runtime
 2   returns overwrite only null parent ID variables                runtime
 3   returned parent variables disjoint from parent's inputs        here
 4   internal transitions only when no subtask is active            runtime
 5   one artifact relation per task                                 by type
 6   artifact relation reset when the task closes                   runtime
 7   fixed tuple s̄^T inserted/retrieved                             by type
 8   each subtask called at most once per segment                   runtime
===  =============================================================  =========

``validate_has`` additionally checks variable disjointness across tasks,
scoping of every condition, well-sortedness of variable mappings, and
relation-atom typing, raising :class:`SpecificationError` (or the more
specific :class:`RestrictionViolation`) on failure.
"""

from __future__ import annotations

from repro.errors import RestrictionViolation, SpecificationError
from repro.has.system import HAS
from repro.has.task import Task
from repro.logic.conditions import Condition, Exists, RelationAtom
from repro.logic.terms import Variable, VarKind


def _check_scope(
    condition: Condition, allowed: set[Variable], where: str, permit_exists: bool = True
) -> None:
    free = condition.variables()
    stray = free - allowed
    if stray:
        names = ", ".join(sorted(v.name for v in stray))
        raise SpecificationError(f"{where}: out-of-scope variables {{{names}}}")
    if not permit_exists and _contains_exists(condition):
        raise SpecificationError(f"{where}: Exists must be desugared first")


def _contains_exists(condition: Condition) -> bool:
    if isinstance(condition, Exists):
        return True
    for attr in ("body", "parts", "antecedent", "consequent"):
        inner = getattr(condition, attr, None)
        if inner is None:
            continue
        if isinstance(inner, Condition):
            if _contains_exists(inner):
                return True
        elif isinstance(inner, tuple):
            if any(isinstance(p, Condition) and _contains_exists(p) for p in inner):
                return True
    return False


def _typecheck_atoms(condition: Condition, has: HAS, where: str) -> None:
    if isinstance(condition, Exists):
        _typecheck_atoms(condition.body, has, where)
        return
    try:
        atoms = condition.atoms()
    except Exception:
        return  # Exists inside boolean structure; handled recursively above
    for atom in atoms:
        if isinstance(atom, RelationAtom):
            atom.typecheck(has.database)


def validate_has(has: HAS, require_simplified: bool = False) -> None:
    """Validate a HAS specification; raise on the first problem found.

    With ``require_simplified`` the Lemma-31 normal form is also required:
    variables passed to and returned from subtasks are disjoint, and no
    numeric variable is returned.  The verifier handles the general form,
    so this is off by default.
    """
    _check_variable_disjointness(has)
    for task in has.tasks():
        _validate_task(has, task, require_simplified)
    _check_scope(
        has.precondition,
        set(has.root.input_variables),
        "precondition Π",
    )
    _typecheck_atoms(has.precondition, has, "precondition Π")
    if has.root.closing.pre is not None and has.root.closing.output_map:
        raise SpecificationError("root task cannot return variables")


def _check_variable_disjointness(has: HAS) -> None:
    owner: dict[Variable, str] = {}
    for task in has.tasks():
        for variable in task.variables:
            if variable in owner:
                raise SpecificationError(
                    f"variable {variable!r} belongs to both {owner[variable]!r} "
                    f"and {task.name!r}; task variable sets must be disjoint "
                    f"(Definition 3) — prefix names per task"
                )
            owner[variable] = task.name


def _validate_task(has: HAS, task: Task, require_simplified: bool) -> None:
    own = set(task.variables)
    parent = has.parent_of(task)

    # -- opening service ------------------------------------------------
    opening = task.opening
    if parent is None:
        for child_var, parent_var in opening.input_map.items():
            if child_var not in own:
                raise SpecificationError(
                    f"{task.name}: root input {child_var!r} is not a task variable"
                )
            if parent_var != child_var:
                raise SpecificationError(
                    f"{task.name}: root input map must be the identity on "
                    f"its input variables"
                )
        _check_scope(opening.pre, own, f"{task.name}: root opening guard")
    else:
        parent_vars = set(parent.variables)
        _check_scope(opening.pre, parent_vars, f"{task.name}: opening guard")
        for child_var, parent_var in opening.input_map.items():
            if child_var not in own:
                raise SpecificationError(
                    f"{task.name}: f_in domain {child_var!r} not in x̄^{task.name}"
                )
            if parent_var not in parent_vars:
                raise SpecificationError(
                    f"{task.name}: f_in range {parent_var!r} not in x̄^{parent.name}"
                )
    _typecheck_atoms(opening.pre, has, f"{task.name}: opening guard")

    # -- closing service ------------------------------------------------
    closing = task.closing
    _check_scope(closing.pre, own, f"{task.name}: closing guard")
    _typecheck_atoms(closing.pre, has, f"{task.name}: closing guard")
    if parent is not None:
        parent_vars = set(parent.variables)
        for parent_var, child_var in closing.output_map.items():
            if parent_var not in parent_vars:
                raise SpecificationError(
                    f"{task.name}: f_out domain {parent_var!r} not in x̄^{parent.name}"
                )
            if child_var not in own:
                raise SpecificationError(
                    f"{task.name}: f_out range {child_var!r} not in x̄^{task.name}"
                )
        # Restriction (3): x̄^T_{Tc↑} ∩ x̄^T_in = ∅
        returned = set(closing.output_map.keys())
        parent_inputs = set(parent.input_variables)
        overlap = returned & parent_inputs
        if overlap:
            names = ", ".join(sorted(v.name for v in overlap))
            raise RestrictionViolation(
                3,
                f"{task.name} returns into {parent.name}'s input variables "
                f"{{{names}}} (x̄^T_Tc↑ ∩ x̄^T_in must be empty)",
            )
        if require_simplified:
            passed = set(opening.input_map.values())
            if passed & returned:
                raise SpecificationError(
                    f"{task.name}: Lemma 31(i) normal form violated — "
                    f"passed and returned parent variables overlap"
                )
            numeric_returns = [
                v for v in closing.output_map if v.kind is VarKind.NUMERIC
            ]
            if numeric_returns:
                raise SpecificationError(
                    f"{task.name}: Lemma 31(ii) normal form violated — "
                    f"numeric variables returned"
                )

    # -- internal services ----------------------------------------------
    for service in task.services:
        _check_scope(service.pre, own, f"{task.name}.{service.name}: pre-condition")
        _check_scope(service.post, own, f"{task.name}.{service.name}: post-condition")
        _typecheck_atoms(service.pre, has, f"{task.name}.{service.name}: pre")
        _typecheck_atoms(service.post, has, f"{task.name}.{service.name}: post")
        if service.update.inserts or service.update.retrieves:
            if not task.has_set:
                raise SpecificationError(
                    f"{task.name}.{service.name}: set update on a task "
                    f"without an artifact relation"
                )
