"""The complete HAS specification ``Γ = (A, Σ, Π)`` (Definition 7)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.database.fkgraph import ForeignKeyGraph, SchemaClass, navigation_depth
from repro.database.schema import DatabaseSchema
from repro.errors import SpecificationError
from repro.has.task import Task
from repro.logic.conditions import Condition, TRUE
from repro.logic.terms import Variable


@dataclass
class HAS:
    """A hierarchical artifact system.

    ``precondition`` is the global Π, a condition over the root task's
    input variables constraining the initial valuation.
    """

    database: DatabaseSchema
    root: Task
    precondition: Condition = TRUE
    name: str = "has"

    _tasks: dict[str, Task] = field(init=False, repr=False, default_factory=dict)
    _parent: dict[str, str | None] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._tasks = {}
        self._parent = {}
        for task in self.root.walk():
            if task.name in self._tasks:
                raise SpecificationError(f"duplicate task name {task.name!r}")
            self._tasks[task.name] = task
        self._parent[self.root.name] = None
        for task in self.root.walk():
            for child in task.children:
                self._parent[child.name] = task.name
        self._fk_graph: ForeignKeyGraph | None = None

    # ------------------------------------------------------------------
    # navigation of the hierarchy
    # ------------------------------------------------------------------
    def tasks(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise SpecificationError(f"unknown task {name!r}") from None

    def parent_of(self, task: Task | str) -> Task | None:
        name = task if isinstance(task, str) else task.name
        parent_name = self._parent.get(name)
        return self._tasks[parent_name] if parent_name else None

    def bottom_up(self) -> Iterator[Task]:
        """Tasks in post-order (children before parents)."""

        def visit(task: Task) -> Iterator[Task]:
            for child in task.children:
                yield from visit(child)
            yield task

        return visit(self.root)

    # ------------------------------------------------------------------
    # derived facts
    # ------------------------------------------------------------------
    @property
    def fk_graph(self) -> ForeignKeyGraph:
        if self._fk_graph is None:
            self._fk_graph = ForeignKeyGraph(self.database)
        return self._fk_graph

    @property
    def schema_class(self) -> SchemaClass:
        return self.fk_graph.classify()

    @property
    def depth(self) -> int:
        """Depth h of the hierarchy (Tables 1 and 2)."""
        return self.root.depth

    @property
    def uses_artifact_relations(self) -> bool:
        return any(task.has_set for task in self.tasks())

    @property
    def size(self) -> int:
        """A rough size measure N: variables + services + condition atoms."""
        total = 0
        for task in self.tasks():
            total += len(task.variables)
            total += len(task.services)
            for service in task.services:
                total += len(service.pre.atoms()) + len(service.post.atoms())
        return total

    def navigation_depth(self, task: Task | str) -> int:
        """The paper's ``h(T)`` bound for a task (Section 4.1)."""
        if isinstance(task, str):
            task = self.task(task)
        child_depths = tuple(self.navigation_depth(c) for c in task.children)
        return navigation_depth(self.fk_graph, len(task.variables), child_depths)

    def variables_of(self, task_name: str) -> tuple[Variable, ...]:
        return self.task(task_name).variables

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HAS({self.name}, tasks={len(self._tasks)}, depth={self.depth}, "
            f"schema={self.schema_class.value})"
        )
