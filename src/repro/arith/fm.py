"""Fourier–Motzkin elimination over the rationals.

This realizes, for the linear fragment, the Tarski–Seidenberg projection
step that Section 5 of the paper obtains via quantifier elimination: the
projection of a (linear) cell onto a subset of unknowns is a union of cells
defined by derived constraints.

Disequality constraints (``!=``) are handled by case-splitting into ``<``
and ``>``, so satisfiability and projection both work on small disjunctions
of conjunctive systems — except in :func:`is_satisfiable`, which avoids
the exponential split by a convexity argument (see its docstring).

This module hosts two of the verifier's hot-path caches (documented in
docs/performance.md): satisfiability verdicts are memoized per connected
component, and whole projections are memoized on the constraint-system
fingerprint.  Both memoize pure functions of immutable constraints, so
cache hits are observationally identical to recomputation
(property-tested in tests/test_perf.py against the ``_uncached``
entry points kept public for exactly that purpose).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.arith.constraints import Constraint, Rel
from repro.arith.linexpr import LinExpr, Unknown
from repro.fuzz.coverage import COVERAGE
from repro.perf.counters import COUNTERS
from repro.perf.phases import PHASES


@dataclass(frozen=True)
class ConstraintSystem:
    """An immutable conjunction of linear constraints."""

    constraints: tuple[Constraint, ...] = ()

    @staticmethod
    def of(constraints: Iterable[Constraint]) -> "ConstraintSystem":
        return ConstraintSystem(tuple(constraints))

    def and_also(self, *constraints: Constraint) -> "ConstraintSystem":
        return ConstraintSystem(self.constraints + constraints)

    @property
    def unknowns(self) -> frozenset[Unknown]:
        result: set[Unknown] = set()
        for constraint in self.constraints:
            result.update(constraint.unknowns)
        return frozenset(result)

    def holds(self, valuation: Mapping[Unknown, Fraction]) -> bool:
        return all(c.holds(valuation) for c in self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)


def _normalize(constraints: Iterable[Constraint]) -> list[Constraint] | None:
    """Rewrite into {LT, LE, EQ, NE} forms; resolve constant constraints.

    Returns None when a constant constraint is already violated.
    """
    out: list[Constraint] = []
    for constraint in constraints:
        rel = constraint.rel
        expr = constraint.expr
        if rel is Rel.GE:
            rel, expr = Rel.LE, -expr
        elif rel is Rel.GT:
            rel, expr = Rel.LT, -expr
        if expr.is_constant:
            if not rel.evaluate(expr.constant):
                return None
            continue
        out.append(Constraint(expr, rel))
    return out


def _split_disequalities(constraints: Sequence[Constraint]) -> Iterable[list[Constraint]]:
    """Yield conjunctive systems covering the same solutions, NE-free."""
    disequalities = [c for c in constraints if c.rel is Rel.NE]
    rest = [c for c in constraints if c.rel is not Rel.NE]
    if not disequalities:
        yield list(rest)
        return
    for signs in itertools.product((Rel.LT, Rel.GT), repeat=len(disequalities)):
        branch = list(rest)
        for constraint, sign in zip(disequalities, signs):
            expr = constraint.expr if sign is Rel.LT else -constraint.expr
            branch.append(Constraint(expr, Rel.LT))
        yield branch


def _eliminate_equalities(
    constraints: list[Constraint], removable: set[Unknown]
) -> list[Constraint] | None:
    """Use equalities mentioning removable unknowns as substitutions."""
    current = constraints
    while True:
        pivot_idx = pivot_unknown = None
        for idx, constraint in enumerate(current):
            if constraint.rel is not Rel.EQ:
                continue
            candidates = constraint.unknowns & removable
            if candidates:
                pivot_idx = idx
                pivot_unknown = sorted(candidates, key=repr)[0]
                break
        if pivot_idx is None:
            return current
        pivot = current[pivot_idx]
        coeff = pivot.expr.coefficient(pivot_unknown)
        # x = -(expr - coeff*x) / coeff
        solution = -(pivot.expr - LinExpr({pivot_unknown: coeff})) / coeff
        substituted = []
        for idx, constraint in enumerate(current):
            if idx == pivot_idx:
                continue
            substituted.append(constraint.substitute({pivot_unknown: solution}))
        normalized = _normalize(substituted)
        if normalized is None:
            return None
        current = normalized


def _fm_eliminate_one(constraints: list[Constraint], unknown: Unknown) -> list[Constraint] | None:
    """Eliminate one unknown from an NE-free, GE/GT-free system."""
    lowers: list[tuple[LinExpr, bool]] = []  # bound <= / < x   (expr, strict)
    uppers: list[tuple[LinExpr, bool]] = []  # x <= / < bound
    rest: list[Constraint] = []
    for constraint in constraints:
        coeff = constraint.expr.coefficient(unknown)
        if coeff == 0:
            rest.append(constraint)
            continue
        if constraint.rel is Rel.EQ:
            # equalities were substituted away; if one slipped through,
            # treat it as two inequalities
            # a·x + r = 0  →  both  a·x + r ≤ 0  and  -(a·x + r) ≤ 0
            for expr in (constraint.expr, -constraint.expr):
                c2 = expr.coefficient(unknown)
                bound = -(expr - LinExpr({unknown: c2})) / c2
                if c2 > 0:
                    uppers.append((bound, False))
                else:
                    lowers.append((bound, False))
            continue
        strict = constraint.rel is Rel.LT
        bound = -(constraint.expr - LinExpr({unknown: coeff})) / coeff
        if coeff > 0:
            uppers.append((bound, strict))
        else:
            lowers.append((bound, strict))
    for (low, low_strict), (up, up_strict) in itertools.product(lowers, uppers):
        rel = Rel.LT if (low_strict or up_strict) else Rel.LE
        rest.append(Constraint(low - up, rel))
    return _normalize(rest)


def eliminate(
    constraints: Iterable[Constraint], unknowns: Iterable[Unknown]
) -> list[ConstraintSystem]:
    """Project out ``unknowns``; the result is a DNF (list of systems).

    Each returned system is NE-free and mentions none of the eliminated
    unknowns.  The union of their solution sets is exactly the projection of
    the input's solution set (Tarski–Seidenberg, linear case).
    """
    removable = set(unknowns)
    normalized = _normalize(constraints)
    if normalized is None:
        return []
    results: list[ConstraintSystem] = []
    for branch in _split_disequalities(normalized):
        reduced = _eliminate_equalities(branch, removable)
        if reduced is None:
            continue
        # canonical elimination order: set iteration follows the process
        # hash seed, and different elimination orders produce different
        # (equivalent but syntactically distinct) projected systems —
        # downstream canonical keys must be reproducible run-over-run
        remaining = sorted(
            (u for u in removable if any(u in c.unknowns for c in reduced)),
            key=repr,
        )
        failed = False
        for unknown in remaining:
            reduced = _fm_eliminate_one(reduced, unknown)
            if reduced is None:
                failed = True
                break
        if not failed:
            results.append(ConstraintSystem.of(reduced))
    return results


def project(
    constraints: Iterable[Constraint], keep: Iterable[Unknown]
) -> list[ConstraintSystem]:
    """Project onto ``keep``: eliminate every other unknown."""
    keep_set = set(keep)
    mentioned: set[Unknown] = set()
    material = list(constraints)
    for constraint in material:
        mentioned.update(constraint.unknowns)
    return eliminate(material, mentioned - keep_set)


_SAT_CACHE: dict[frozenset, bool] = {}
_SAT_CACHE_LIMIT = 400_000


def is_satisfiable(constraints: Iterable[Constraint]) -> bool:
    """Decide satisfiability over the rationals (equivalently the reals).

    Disequalities are handled by convexity instead of case-splitting: a
    convex set (the solutions of the hard constraints) avoids a finite
    union of hyperplanes iff it is contained in none of them, so
    ``H ∧ ⋀ eᵢ≠0`` is satisfiable iff H is satisfiable and, for every i,
    ``H ∧ eᵢ<0`` or ``H ∧ eᵢ>0`` is.  This keeps the number of FM calls
    linear in the number of disequalities.

    The decision is taken *per connected component* (constraints grouped
    by shared unknowns): a conjunction is satisfiable iff each component
    is, because solutions of disjoint components compose.  Component
    verdicts are memoized, so extending a system with constraints over
    fresh unknowns — the common store mutation — re-decides only the cell
    that actually changed and serves every untouched cell from the cache.
    """
    material = _normalize(list(constraints))
    if material is None:
        return False
    for component in _connected_components(material):
        if not _component_satisfiable(component):
            return False
    return True


def _component_satisfiable(component: list[Constraint]) -> bool:
    """Memoized satisfiability of one normalized connected component."""
    if any(c.rel is Rel.NE for c in component):
        # disequalities demand convexity splitting; recorded before the
        # memo lookup (it is a property of the component, not of what
        # the process-global cache has seen) so a scenario's feature
        # set stays deterministic
        COVERAGE.hit("fm:diseq_split")
    key = frozenset(component)
    cached = _SAT_CACHE.get(key)
    if cached is not None:
        COUNTERS.fm_sat_hits += 1
        # coverage is recorded on hits too: the outcome is known either
        # way, and a scenario's feature set must not depend on what the
        # process-global cache saw before it
        COVERAGE.hit("fm:sat" if cached else "fm:unsat")
        return cached
    COUNTERS.fm_sat_misses += 1
    # only misses do real work, so only misses are timed (sampled)
    token = PHASES.begin("fm")
    try:
        result = _is_satisfiable_uncached(component)
    finally:
        PHASES.end("fm", token)
    COVERAGE.hit("fm:sat" if result else "fm:unsat")
    if len(_SAT_CACHE) >= _SAT_CACHE_LIMIT:
        _SAT_CACHE.clear()
    _SAT_CACHE[key] = result
    return result


def _is_satisfiable_uncached(constraints: list[Constraint]) -> bool:
    material = _normalize(constraints)
    if material is None:
        return False
    hard = [c for c in material if c.rel is not Rel.NE]
    disequalities = [c for c in material if c.rel is Rel.NE]
    if not _conjunction_satisfiable(hard):
        return False
    for constraint in disequalities:
        below = hard + [Constraint(constraint.expr, Rel.LT)]
        above = hard + [Constraint(-constraint.expr, Rel.LT)]
        if not (_conjunction_satisfiable(below) or _conjunction_satisfiable(above)):
            return False
    return True


def _conjunction_satisfiable(constraints: list[Constraint]) -> bool:
    """Satisfiability of an NE-free conjunction via plain FM."""
    reduced = _normalize(constraints)
    if reduced is None:
        return False
    mentioned: set[Unknown] = set()
    for constraint in reduced:
        mentioned.update(constraint.unknowns)
    reduced = _eliminate_equalities(reduced, set(mentioned))
    if reduced is None:
        return False
    for unknown in list(mentioned):
        if any(unknown in c.unknowns for c in reduced):
            reduced = _fm_eliminate_one(reduced, unknown)
            if reduced is None:
                return False
    return True


_PROJ_CACHE: dict[tuple, tuple[tuple[Constraint, ...], bool]] = {}
_PROJ_CACHE_LIMIT = 100_000

#: The sentinel an unsatisfiable projection collapses to (``1 == 0``).
#: The memo wrapper recognizes it so the ``fm:proj:empty`` coverage
#: feature fires on cache hits too — deterministically per query.
_PROJ_EMPTY = (Constraint(LinExpr({}, 1), Rel.EQ),)


def project_components(
    constraints: Iterable[Constraint], keep: Iterable[Unknown]
) -> tuple[list[Constraint], bool]:
    """Project a conjunction onto ``keep``, component-wise; returns
    ``(constraints, exact)``.  Memoized wrapper around
    :func:`project_components_uncached`.

    Results are cached on the constraint-system fingerprint: the exact
    constraint tuple plus the kept unknowns that actually occur in it
    (unmentioned keeps cannot affect the projection).  The store calls
    this on every ``restrict`` — once per symbolic transition — and the
    same numeric system recurs across sibling branches and re-expansions,
    so the hit rate is high; see ``docs/performance.md``.
    """
    material = list(constraints)
    mentioned: set[Unknown] = set()
    for constraint in material:
        mentioned.update(constraint.unknowns)
    keep_effective = frozenset(keep) & mentioned
    key = (tuple(material), keep_effective)
    cached = _PROJ_CACHE.get(key)
    if cached is not None:
        COUNTERS.fm_proj_hits += 1
        kept, exact = cached
        COVERAGE.hit("fm:proj:exact" if exact else "fm:proj:approx")
        if kept == _PROJ_EMPTY:
            COVERAGE.hit("fm:proj:empty")
        return list(kept), exact
    COUNTERS.fm_proj_misses += 1
    token = PHASES.begin("fm")
    try:
        kept_list, exact = project_components_uncached(material, keep_effective)
    finally:
        PHASES.end("fm", token)
    COVERAGE.hit("fm:proj:exact" if exact else "fm:proj:approx")
    if tuple(kept_list) == _PROJ_EMPTY:
        COVERAGE.hit("fm:proj:empty")
    if len(_PROJ_CACHE) >= _PROJ_CACHE_LIMIT:
        _PROJ_CACHE.clear()
    _PROJ_CACHE[key] = (tuple(kept_list), exact)
    return kept_list, exact


def project_components_uncached(
    constraints: Iterable[Constraint], keep: Iterable[Unknown]
) -> tuple[list[Constraint], bool]:
    """Project a conjunction onto ``keep``, component-wise, no memo.

    Connected components (by shared unknowns) fully inside ``keep`` are
    retained verbatim; fully-dead satisfiable components are dropped
    (exact: they are existential side conditions).  Mixed components have
    their NE-free part projected exactly by FM; disequalities over dead
    unknowns are dropped, which over-approximates only on the
    lower-dimensional slice where the hard part forces the disequality's
    expression to zero — ``exact`` is False when that can happen.

    This is the Tarski–Seidenberg step of the paper's Section 5 for the
    linear fragment; exposed uncached so property tests can assert the
    cache never changes a projection.
    """
    material = _normalize(list(constraints))
    if material is None:
        return [Constraint(LinExpr({}, 1), Rel.EQ)], True  # unsatisfiable
    keep_set = set(keep)
    components = _connected_components(material)
    kept: list[Constraint] = []
    exact = True
    for component in components:
        unknowns: set[Unknown] = set()
        for constraint in component:
            unknowns.update(constraint.unknowns)
        if unknowns <= keep_set:
            kept.extend(component)
            continue
        hard = [c for c in component if c.rel is not Rel.NE]
        if not unknowns & keep_set:
            if is_satisfiable(component):
                continue  # independent and satisfiable: drop exactly
            return [Constraint(LinExpr({}, 1), Rel.EQ)], True
        for constraint in component:
            if constraint.rel is Rel.NE:
                if constraint.unknowns <= keep_set:
                    kept.append(constraint)
                else:
                    # dropping is exact iff the hard part already implies
                    # the disequality
                    forced = _normalize(
                        hard + [Constraint(constraint.expr, Rel.EQ)]
                    )
                    if forced is not None and _conjunction_satisfiable(forced):
                        exact = False
        dead = unknowns - keep_set
        projected = eliminate(hard, dead)
        if not projected:
            return [Constraint(LinExpr({}, 1), Rel.EQ)], True
        assert len(projected) == 1, "NE-free FM projection is conjunctive"
        kept.extend(projected[0].constraints)
    return kept, exact


def _connected_components(
    constraints: list[Constraint],
) -> list[list[Constraint]]:
    """Group constraints into components sharing unknowns; constraints
    with no unknowns form their own singleton components."""
    parent: dict[Unknown, Unknown] = {}

    def find(u: Unknown) -> Unknown:
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = parent[u]
        return u

    def union(a: Unknown, b: Unknown) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for constraint in constraints:
        unknown_list = list(constraint.unknowns)
        for unknown in unknown_list:
            parent.setdefault(unknown, unknown)
        for first, second in zip(unknown_list, unknown_list[1:]):
            union(first, second)
    groups: dict[Unknown | None, list[Constraint]] = {}
    for constraint in constraints:
        unknown_list = list(constraint.unknowns)
        key = find(unknown_list[0]) if unknown_list else None
        groups.setdefault(key, []).append(constraint)
    return list(groups.values())


def clear_caches() -> None:
    """Drop the satisfiability and projection memos (tests, benchmarks)."""
    _SAT_CACHE.clear()
    _PROJ_CACHE.clear()


def sample_solution(constraints: Iterable[Constraint]) -> dict[Unknown, Fraction] | None:
    """Produce one rational solution, or None when unsatisfiable.

    Back-substitution over the FM elimination order; used by tests and by
    witness concretization.
    """
    material = _normalize(list(constraints))
    if material is None:
        return None
    for branch in _split_disequalities(material):
        solution = _sample_branch(branch)
        if solution is not None:
            return solution
    return None


def _sample_branch(branch: list[Constraint]) -> dict[Unknown, Fraction] | None:
    unknowns = sorted({u for c in branch for u in c.unknowns}, key=repr)
    stack: list[tuple[Unknown, list[Constraint]]] = []
    current = branch
    for unknown in unknowns:
        stack.append((unknown, current))
        reduced = _eliminate_equalities(list(current), {unknown})
        if reduced is None:
            return None
        if any(unknown in c.unknowns for c in reduced):
            reduced = _fm_eliminate_one(reduced, unknown)
            if reduced is None:
                return None
        current = reduced
    if _normalize(current) is None:  # constant contradiction
        return None
    solution: dict[Unknown, Fraction] = {}
    for unknown, system in reversed(stack):
        value = _pick_value(system, unknown, solution)
        if value is None:
            return None
        solution[unknown] = value
    return solution


def _pick_value(
    system: list[Constraint], unknown: Unknown, partial: dict[Unknown, Fraction]
) -> Fraction | None:
    """Pick a value for ``unknown`` consistent with ``system`` given values
    for all later-eliminated unknowns."""
    lower: tuple[Fraction, bool] | None = None  # (bound, strict)
    upper: tuple[Fraction, bool] | None = None
    for constraint in system:
        coeff = constraint.expr.coefficient(unknown)
        if coeff == 0:
            continue
        residual = constraint.expr - LinExpr({unknown: coeff})
        known = {u: partial[u] for u in residual.unknowns}
        bound = -residual.evaluate(known) / coeff
        if constraint.rel is Rel.EQ:
            lower = _tighten_lower(lower, (bound, False))
            upper = _tighten_upper(upper, (bound, False))
            continue
        strict = constraint.rel is Rel.LT
        if coeff > 0:
            upper = _tighten_upper(upper, (bound, strict))
        else:
            lower = _tighten_lower(lower, (bound, strict))
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        assert upper is not None
        return upper[0] - 1
    if upper is None:
        return lower[0] + 1
    low, low_strict = lower
    up, up_strict = upper
    if low > up:
        return None
    if low == up:
        if low_strict or up_strict:
            return None
        return low
    return (low + up) / 2


def _tighten_lower(
    current: tuple[Fraction, bool] | None, candidate: tuple[Fraction, bool]
) -> tuple[Fraction, bool]:
    if current is None:
        return candidate
    if candidate[0] > current[0]:
        return candidate
    if candidate[0] == current[0] and candidate[1]:
        return candidate
    return current


def _tighten_upper(
    current: tuple[Fraction, bool] | None, candidate: tuple[Fraction, bool]
) -> tuple[Fraction, bool]:
    if current is None:
        return candidate
    if candidate[0] < current[0]:
        return candidate
    if candidate[0] == current[0] and candidate[1]:
        return candidate
    return current
