"""Linear constraints: a relational operator applied to a linear expression.

A :class:`Constraint` is ``expr REL 0`` with ``REL`` one of the six
comparison operators.  These are the atoms of the arithmetic fragment of
conditions (the relations in the paper's interpreted set ``C``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.arith.linexpr import Coefficient, LinExpr, to_linexpr, Unknown


class Rel(enum.Enum):
    """Comparison of a linear expression against zero."""

    LT = "<"
    LE = "<="
    EQ = "="
    NE = "!="
    GE = ">="
    GT = ">"

    def negate(self) -> "Rel":
        return _NEGATIONS[self]

    def flip(self) -> "Rel":
        """The relation satisfied by ``-expr`` when ``expr REL 0`` holds."""
        return _FLIPS[self]

    def evaluate(self, value: Fraction) -> bool:
        if self is Rel.LT:
            return value < 0
        if self is Rel.LE:
            return value <= 0
        if self is Rel.EQ:
            return value == 0
        if self is Rel.NE:
            return value != 0
        if self is Rel.GE:
            return value >= 0
        return value > 0


_NEGATIONS = {
    Rel.LT: Rel.GE,
    Rel.LE: Rel.GT,
    Rel.EQ: Rel.NE,
    Rel.NE: Rel.EQ,
    Rel.GE: Rel.LT,
    Rel.GT: Rel.LE,
}

_FLIPS = {
    Rel.LT: Rel.GT,
    Rel.LE: Rel.GE,
    Rel.EQ: Rel.EQ,
    Rel.NE: Rel.NE,
    Rel.GE: Rel.LE,
    Rel.GT: Rel.LT,
}


@dataclass(frozen=True)
class Constraint:
    """``expr rel 0`` over rational unknowns."""

    expr: LinExpr
    rel: Rel

    def negate(self) -> "Constraint":
        return Constraint(self.expr, self.rel.negate())

    def rename(self, mapping: Mapping[Unknown, Unknown]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.rel)

    def substitute(self, assignment: Mapping[Unknown, LinExpr | Coefficient]) -> "Constraint":
        return Constraint(self.expr.substitute(assignment), self.rel)

    def holds(self, valuation: Mapping[Unknown, Coefficient]) -> bool:
        return self.rel.evaluate(self.expr.evaluate(valuation))

    @property
    def unknowns(self) -> frozenset[Unknown]:
        return self.expr.unknowns

    def canonical(self) -> "Constraint":
        """Canonical form up to positive scaling (and sign flip for EQ/NE).

        Memoized per instance: constraints are immutable and the verifier
        re-canonicalizes the same objects constantly while building store
        canonical keys."""
        cached = getattr(self, "_canonical", None)
        if cached is not None:
            return cached
        expr = self.expr
        rel = self.rel
        if expr.unknowns:
            lead = sorted(expr.unknowns, key=repr)[0]
            coeff = expr.coefficient(lead)
            if coeff < 0:
                expr = -expr
                rel = rel.flip()
            expr = expr / abs(coeff)
        result = Constraint(expr, rel)
        # frozen dataclass: bypass the frozen __setattr__ for the memo slot
        # (not a field, so eq/hash are unaffected)
        object.__setattr__(result, "_canonical", result)
        object.__setattr__(self, "_canonical", result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.expr} {self.rel.value} 0)"


def compare(lhs: LinExpr | Coefficient, rel: Rel, rhs: LinExpr | Coefficient) -> Constraint:
    """Build the constraint ``lhs rel rhs`` as ``(lhs - rhs) rel 0``."""
    return Constraint(to_linexpr(lhs) - to_linexpr(rhs), rel)


def eq(lhs: LinExpr | Coefficient, rhs: LinExpr | Coefficient) -> Constraint:
    return compare(lhs, Rel.EQ, rhs)


def le(lhs: LinExpr | Coefficient, rhs: LinExpr | Coefficient) -> Constraint:
    return compare(lhs, Rel.LE, rhs)


def lt(lhs: LinExpr | Coefficient, rhs: LinExpr | Coefficient) -> Constraint:
    return compare(lhs, Rel.LT, rhs)


def ge(lhs: LinExpr | Coefficient, rhs: LinExpr | Coefficient) -> Constraint:
    return compare(lhs, Rel.GE, rhs)


def gt(lhs: LinExpr | Coefficient, rhs: LinExpr | Coefficient) -> Constraint:
    return compare(lhs, Rel.GT, rhs)


def ne(lhs: LinExpr | Coefficient, rhs: LinExpr | Coefficient) -> Constraint:
    return compare(lhs, Rel.NE, rhs)
