"""Arithmetic substrate: linear expressions, constraints, cells, and the
Hierarchical Cell Decomposition (Section 5 / Appendix D).

The paper allows polynomial inequalities but notes that linear inequalities
with integer coefficients suffice with the same complexity results; this
package implements exact linear arithmetic over the rationals, with
Fourier–Motzkin elimination realizing the Tarski–Seidenberg projection step.
"""

from repro.arith.linexpr import LinExpr, var, const
from repro.arith.constraints import Constraint, Rel
from repro.arith.fm import (
    ConstraintSystem,
    eliminate,
    is_satisfiable,
    project,
)
from repro.arith.cells import Cell, SignCondition, enumerate_cells

__all__ = [
    "LinExpr",
    "var",
    "const",
    "Constraint",
    "Rel",
    "ConstraintSystem",
    "eliminate",
    "is_satisfiable",
    "project",
    "Cell",
    "SignCondition",
    "enumerate_cells",
]
