"""Sign conditions and cells (Appendix D.2 / D.3).

Given a finite set of (linear) polynomials ``P``, a *sign condition* maps
each polynomial to -1, 0 or +1; its *cell* is the set of points realizing
those signs.  Appendix D.2 recalls that the number of *non-empty* cells is
``(s·d)^O(k)`` — far below the naive ``3^s``.  :func:`enumerate_cells`
computes exactly the non-empty cells by incremental satisfiability pruning,
which makes the enumeration output-sensitive rather than ``3^s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence

from repro.arith.constraints import Constraint, Rel
from repro.arith.fm import is_satisfiable, project, sample_solution
from repro.arith.linexpr import LinExpr, Unknown

Sign = int  # -1, 0, +1

_SIGN_RELS: dict[Sign, Rel] = {-1: Rel.LT, 0: Rel.EQ, 1: Rel.GT}


@dataclass(frozen=True)
class SignCondition:
    """A mapping from polynomials to signs, in a fixed polynomial order."""

    polynomials: tuple[LinExpr, ...]
    signs: tuple[Sign, ...]

    def __post_init__(self) -> None:
        if len(self.polynomials) != len(self.signs):
            raise ValueError("sign condition length mismatch")

    def constraints(self) -> list[Constraint]:
        return [
            Constraint(poly, _SIGN_RELS[sign])
            for poly, sign in zip(self.polynomials, self.signs)
        ]

    def sign_of(self, polynomial: LinExpr) -> Sign:
        return self.signs[self.polynomials.index(polynomial)]


@dataclass(frozen=True)
class Cell:
    """The non-empty solution set of a sign condition."""

    condition: SignCondition

    def constraints(self) -> list[Constraint]:
        return self.condition.constraints()

    @property
    def unknowns(self) -> frozenset[Unknown]:
        result: set[Unknown] = set()
        for poly in self.condition.polynomials:
            result.update(poly.unknowns)
        return frozenset(result)

    def contains(self, point: Mapping[Unknown, Fraction]) -> bool:
        return all(c.holds(point) for c in self.constraints())

    def sample(self) -> dict[Unknown, Fraction] | None:
        return sample_solution(self.constraints())

    def refines(self, other: "Cell") -> bool:
        """True when this cell's constraints entail the other's.

        Entailment check: this ∧ ¬c is unsatisfiable for every constraint c
        of the other cell (exact over linear constraints).
        """
        mine = self.constraints()
        for constraint in other.constraints():
            if is_satisfiable(mine + [constraint.negate()]):
                return False
        return True

    def project_polynomials(self, keep: Iterable[Unknown]) -> list[LinExpr]:
        """Polynomials defining the projection of this cell onto ``keep``.

        The Tarski–Seidenberg step of Appendix D.4: the projection of a cell
        is a union of cells of the derived polynomials.
        """
        systems = project(self.constraints(), keep)
        polys: list[LinExpr] = []
        seen: set[Constraint] = set()
        for system in systems:
            for constraint in system:
                canon = constraint.canonical()
                key = Constraint(canon.expr, Rel.EQ)  # identify by expression
                if key not in seen:
                    seen.add(key)
                    polys.append(canon.expr)
        return polys


def enumerate_cells(
    polynomials: Sequence[LinExpr],
    ambient: Iterable[Constraint] = (),
) -> Iterator[Cell]:
    """Yield every non-empty cell of ``polynomials`` (within ``ambient``).

    Incremental construction: assign signs one polynomial at a time and
    prune unsatisfiable prefixes, so only non-empty cells are expanded.
    """
    polys = tuple(polynomials)
    base = list(ambient)

    def extend(prefix: list[Sign], accumulated: list[Constraint]) -> Iterator[Cell]:
        if len(prefix) == len(polys):
            yield Cell(SignCondition(polys, tuple(prefix)))
            return
        poly = polys[len(prefix)]
        for sign in (-1, 0, 1):
            candidate = accumulated + [Constraint(poly, _SIGN_RELS[sign])]
            if is_satisfiable(base + candidate):
                yield from extend(prefix + [sign], candidate)

    yield from extend([], [])


def count_cells(polynomials: Sequence[LinExpr]) -> int:
    """Number of non-empty cells — compare against the (s·d)^O(k) bound."""
    return sum(1 for _ in enumerate_cells(polynomials))
