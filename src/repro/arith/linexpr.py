"""Exact linear expressions over named unknowns.

A :class:`LinExpr` is an immutable mapping ``unknown -> Fraction`` plus a
constant term.  Unknowns are arbitrary hashable objects — the verifier uses
numeric artifact variables and navigation expressions as unknowns.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Mapping

Unknown = Hashable
Coefficient = int | float | Fraction


def _coerce(value: Coefficient) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # guard against accidental booleans
        raise TypeError("boolean is not a coefficient")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    raise TypeError(f"cannot use {value!r} as a coefficient")


class LinExpr:
    """``c0 + Σ ci·ui`` with rational coefficients, immutable and hashable."""

    __slots__ = ("_coeffs", "_constant", "_hash", "_unknowns")

    def __init__(
        self,
        coeffs: Mapping[Unknown, Coefficient] | None = None,
        constant: Coefficient = 0,
    ):
        items = {}
        if coeffs:
            for unknown, coeff in coeffs.items():
                frac = _coerce(coeff)
                if frac != 0:
                    items[unknown] = frac
        self._coeffs: dict[Unknown, Fraction] = items
        self._constant = _coerce(constant)
        self._hash: int | None = None
        self._unknowns: frozenset[Unknown] | None = None

    @classmethod
    def _raw(cls, coeffs: dict[Unknown, Fraction], constant: Fraction) -> "LinExpr":
        """Trusted constructor for the hot algebraic paths: ``coeffs`` must
        already be a private dict of non-zero ``Fraction`` values and
        ``constant`` a ``Fraction``.  Skips coercion and zero-filtering —
        the arithmetic below guarantees both invariants."""
        expr = cls.__new__(cls)
        expr._coeffs = coeffs
        expr._constant = constant
        expr._hash = None
        expr._unknowns = None
        return expr

    # ------------------------------------------------------------------
    @property
    def constant(self) -> Fraction:
        return self._constant

    @property
    def coeffs(self) -> Mapping[Unknown, Fraction]:
        return dict(self._coeffs)

    def coefficient(self, unknown: Unknown) -> Fraction:
        return self._coeffs.get(unknown, Fraction(0))

    @property
    def unknowns(self) -> frozenset[Unknown]:
        if self._unknowns is None:
            self._unknowns = frozenset(self._coeffs)
        return self._unknowns

    @property
    def is_constant(self) -> bool:
        return not self._coeffs

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "LinExpr | Coefficient") -> "LinExpr":
        other = to_linexpr(other)
        coeffs = dict(self._coeffs)
        for unknown, coeff in other._coeffs.items():
            merged = coeffs.get(unknown)
            merged = coeff if merged is None else merged + coeff
            if merged == 0:
                coeffs.pop(unknown, None)
            else:
                coeffs[unknown] = merged
        return LinExpr._raw(coeffs, self._constant + other._constant)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr._raw(
            {u: -c for u, c in self._coeffs.items()}, -self._constant
        )

    def __sub__(self, other: "LinExpr | Coefficient") -> "LinExpr":
        return self + (-to_linexpr(other))

    def __rsub__(self, other: "LinExpr | Coefficient") -> "LinExpr":
        return to_linexpr(other) + (-self)

    def __mul__(self, scalar: Coefficient) -> "LinExpr":
        frac = _coerce(scalar)
        if frac == 0:
            return LinExpr._raw({}, Fraction(0))
        return LinExpr._raw(
            {u: c * frac for u, c in self._coeffs.items()}, self._constant * frac
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Coefficient) -> "LinExpr":
        frac = _coerce(scalar)
        return self * (Fraction(1) / frac)

    def substitute(self, assignment: Mapping[Unknown, "LinExpr | Coefficient"]) -> "LinExpr":
        """Replace unknowns by expressions (or constants)."""
        result = LinExpr({}, self._constant)
        for unknown, coeff in self._coeffs.items():
            if unknown in assignment:
                result = result + to_linexpr(assignment[unknown]) * coeff
            else:
                result = result + LinExpr({unknown: coeff})
        return result

    def rename(self, mapping: Mapping[Unknown, Unknown]) -> "LinExpr":
        """Rename unknowns; unknowns not in the mapping are kept."""
        coeffs: dict[Unknown, Fraction] = {}
        for unknown, coeff in self._coeffs.items():
            target = mapping.get(unknown, unknown)
            merged = coeffs.get(target)
            merged = coeff if merged is None else merged + coeff
            if merged == 0:
                coeffs.pop(target, None)
            else:
                coeffs[target] = merged
        return LinExpr._raw(coeffs, self._constant)

    def evaluate(self, valuation: Mapping[Unknown, Coefficient]) -> Fraction:
        total = self._constant
        for unknown, coeff in self._coeffs.items():
            total += coeff * _coerce(valuation[unknown])
        return total

    def normalized(self) -> "LinExpr":
        """Scale so the leading coefficient (in sorted unknown order) is 1;
        used for canonical hashing of constraints up to positive scaling."""
        if not self._coeffs:
            return self
        lead = sorted(self._coeffs, key=repr)[0]
        return self / self._coeffs[lead]

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._constant == other._constant and self._coeffs == other._coeffs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._constant, frozenset(self._coeffs.items()))
            )
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for unknown in sorted(self._coeffs, key=repr):
            coeff = self._coeffs[unknown]
            parts.append(f"{coeff}*{unknown}" if coeff != 1 else f"{unknown}")
        if self._constant != 0 or not parts:
            parts.append(str(self._constant))
        return " + ".join(str(p) for p in parts)


def to_linexpr(value: "LinExpr | Coefficient") -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr({}, value)


def var(unknown: Unknown) -> LinExpr:
    """The expression consisting of a single unknown."""
    return LinExpr({unknown: 1})


def const(value: Coefficient) -> LinExpr:
    return LinExpr({}, value)


def linear_combination(terms: Iterable[tuple[Coefficient, Unknown]], constant: Coefficient = 0) -> LinExpr:
    coeffs: dict[Unknown, Fraction] = {}
    for coeff, unknown in terms:
        coeffs[unknown] = coeffs.get(unknown, Fraction(0)) + _coerce(coeff)
    return LinExpr(coeffs, constant)
