"""Search-cost attribution: which scenario construct the time went to.

The phase timers (:mod:`repro.perf.phases`) say *where* the verifier's
wall clock went (fm / canon / expand); this module says *whose fault it
was*: every Karp–Miller node expansion, generated successor, and sampled
Fourier–Motzkin / canonicalization second is credited to the scenario
construct that originated it — the ``(task, service)`` pair of the
:class:`~repro.verifier.task_vass.StepTag` on the expanded node.  The
paper's complexity results (conf_pods_DeutschLV16) tie coverability
blow-up to task/service structure; this registry is the instrument that
makes the blow-up legible per construct (``repro report``'s hotspot
table: "service ``book_flight``: 61% of expansions, 54% of FM time").

Like :mod:`repro.perf.counters` and :mod:`repro.perf.phases` the
registry is process-global and **always on** under the same contract —
observationally invisible (verdicts, witnesses, node counts, and job
hashes are byte-identical; A/B-tested) and within the <3% overhead
budget ``benchmarks/trace_overhead.py`` gates in CI.  It imports
nothing above :mod:`repro.perf.phases` (whose sampled-timing hook feeds
the fm/canon seconds); the VASS and verifier layers call in, never the
other way around.

Three accounting channels:

* :meth:`AttributionRegistry.record_expansion` — one per Karp–Miller
  node expansion, keyed by the tag that *created* the expanded node
  (duck-typed: anything with ``task`` and ``service`` attributes; the
  verifier's ``StepTag``).  Root nodes and foreign tags fall into the
  ``(unattributed)`` bucket — the hotspot table reports the attributed
  share, and the acceptance bar is ≥95% on real scenarios.
* :meth:`AttributionRegistry.record_successor` — one per enabled
  successor the expansion generated, keyed by the generating edge's tag.
* :meth:`AttributionRegistry.set_context` — the successor-generation
  loops in ``task_vass`` mark which (task, service) branch is currently
  being explored; the :attr:`~repro.perf.phases.PhaseTimers.observer`
  hook then credits each *sampled* fm/canon activation to that context.
  Sampled seconds are shares, not totals: uniform sampling makes the
  ratio between constructs meaningful, and renderers print percentages.

Counts and depths are deterministic for a deterministic exploration
(expansion order never depends on timing); only the ``*_seconds`` /
``*_samples`` fields carry wall-clock noise, and
:func:`repro.obs.report.scrub_event` strips the seconds, so scrubbed
attribution tables are byte-stable across PYTHONHASHSEED values
(pinned by a subprocess test in ``tests/test_obs_analysis.py``).
"""

from __future__ import annotations

import threading
from typing import Hashable

from repro.perf.phases import PHASES

#: The bucket for expansions whose tag names no construct: Karp–Miller
#: root nodes (no parent tag) and non-verifier callers with opaque tags.
UNATTRIBUTED = ("", "(unattributed)")

class _Cell:
    __slots__ = (
        "task",
        "expansions",
        "successors",
        "depth_sum",
        "fm_seconds",
        "fm_samples",
        "canon_seconds",
        "canon_samples",
    )

    def __init__(self, task: str) -> None:
        self.task = task
        self.expansions = 0
        self.successors = 0
        self.depth_sum = 0
        self.fm_seconds = 0.0
        self.fm_samples = 0
        self.canon_seconds = 0.0
        self.canon_samples = 0


def _key_of(tag: object) -> tuple:
    """The attribution key of a successor tag: ``(task, service)`` for
    anything StepTag-shaped, :data:`UNATTRIBUTED` otherwise.

    The task half is normalized to the *service's owning* task when the
    service names one: a closing service σ^c_T appears both as the
    parent VASS's close-child edge (tag task = parent) and as T's own
    closing step (tag task = T), and they are one scenario construct —
    without the normalization the two cells would share a repr label
    and collide in :meth:`AttributionRegistry.snapshot`."""
    task = getattr(tag, "task", None)
    service = getattr(tag, "service", None)
    if task is None or service is None:
        return UNATTRIBUTED
    return (getattr(service, "task", None) or str(task), service)


class AttributionRegistry:
    """Per-(task, service) accumulators for search cost.

    Keys are kept as raw ``(task, service-ref)`` tuples on the hot path
    (hashing a frozen dataclass beats formatting its repr); they are
    stringified — deterministically, sorted — only in :meth:`snapshot`.

    **Thread-safety** (docs/performance.md's audit for the km_workers>1
    scout): the construct *context* is thread-local — the pre-audit
    process-global slot let a scout thread's ``set_context`` /
    ``clear_context`` retarget where the main thread's sampled seconds
    were credited, corrupting the report.  The *cells* stay shared:
    the phase observer only fires on the reporting (main) thread, scout
    threads' summary explorations are serialized behind the scout
    engine's summary lock, and the counts are observational —
    excluded from semantic bytes — so the residual scout-thread
    increments (extra expansion/successor counts on top of the replay's)
    are a documented approximation, not a soundness hazard.
    """

    __slots__ = ("_cells", "_local", "enabled")

    def __init__(self) -> None:
        self._cells: dict[tuple, _Cell] = {}
        self._local = threading.local()
        self.enabled = True

    @property
    def _context(self) -> tuple | None:
        return getattr(self._local, "context", None)

    @_context.setter
    def _context(self, value: tuple | None) -> None:
        self._local.context = value

    # ------------------------------------------------------------------
    # recording (hot path)
    # ------------------------------------------------------------------
    def _cell(self, key: tuple) -> _Cell:
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _Cell(str(key[0]))
        return cell

    def record_expansion(self, tag: object, depth: int) -> None:
        """Count one KM node expansion against the tag that created the
        node (``depth`` is the node's spanning-tree depth)."""
        if not self.enabled:
            return
        cell = self._cell(_key_of(tag))
        cell.expansions += 1
        cell.depth_sum += depth

    def record_successor(self, tag: object) -> None:
        """Count one enabled successor against the generating edge's tag."""
        if not self.enabled:
            return
        self._cell(_key_of(tag)).successors += 1

    def set_context(self, task: str, service: Hashable) -> None:
        """Mark the construct whose successor branch is being generated;
        subsequent sampled fm/canon activations are credited to it."""
        if self.enabled:
            self._context = (
                getattr(service, "task", None) or str(task),
                service,
            )

    def clear_context(self) -> None:
        """Leave construct scope: sampled time is no longer credited
        (post-exploration work — witness concretization, serialization —
        belongs to no single construct)."""
        self._context = None

    def _on_phase_sample(self, name: str, seconds: float) -> None:
        """:attr:`repro.perf.phases.PhaseTimers.observer` hook — fires
        once per *timed* (sampled) phase activation."""
        if self._context is None or not self.enabled:
            return
        if name == "fm":
            cell = self._cell(self._context)
            cell.fm_seconds += seconds
            cell.fm_samples += 1
        elif name == "canon":
            cell = self._cell(self._context)
            cell.canon_seconds += seconds
            cell.canon_samples += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """A plain-dict copy keyed by the service label (its repr — the
        verifier's labels are unique per scenario: internal services
        render as ``Task.service``, opening/closing as ``σ^o_T``/``σ^c_T``),
        with keys sorted for deterministic serialization."""
        table: dict[str, dict] = {}
        for key, cell in self._cells.items():
            label = key[1] if key is UNATTRIBUTED else repr(key[1])
            table[label] = {
                "task": cell.task,
                "expansions": cell.expansions,
                "successors": cell.successors,
                "depth_sum": cell.depth_sum,
                "fm_sampled_seconds": cell.fm_seconds,
                "fm_samples": cell.fm_samples,
                "canon_sampled_seconds": cell.canon_seconds,
                "canon_samples": cell.canon_samples,
            }
        return {label: table[label] for label in sorted(table)}

    def since(self, baseline: dict[str, dict]) -> dict[str, dict]:
        """Per-construct deltas relative to an earlier :meth:`snapshot`;
        rows that saw no activity in the window are dropped."""
        deltas: dict[str, dict] = {}
        for label, entry in self.snapshot().items():
            base = baseline.get(label, {})
            delta = {
                key: (
                    entry[key]
                    if key == "task"
                    else entry[key] - base.get(key, 0)
                )
                for key in entry
            }
            if (
                delta["expansions"]
                or delta["successors"]
                or delta["fm_samples"]
                or delta["canon_samples"]
            ):
                deltas[label] = delta
        return deltas

    def reset(self) -> None:
        self._cells.clear()
        self._context = None


def merge_attribution(into: dict[str, dict], delta: dict) -> None:
    """Accumulate one attribution table into another (suite aggregation,
    trace summarization).  Numeric fields add; ``task`` passes through."""
    if not isinstance(delta, dict):
        return
    for label, entry in delta.items():
        if not isinstance(entry, dict):
            continue
        bucket = into.get(label)
        if bucket is None:
            bucket = into[label] = {
                "task": entry.get("task", ""),
                "expansions": 0,
                "successors": 0,
                "depth_sum": 0,
                "fm_sampled_seconds": 0.0,
                "fm_samples": 0,
                "canon_sampled_seconds": 0.0,
                "canon_samples": 0,
            }
        for key, value in entry.items():
            if key == "task" or not isinstance(value, (int, float)):
                continue
            bucket[key] = bucket.get(key, 0) + value


#: The process-global attribution registry the VASS/verifier layers feed.
ATTRIBUTION = AttributionRegistry()

# Wire the sampled-phase hook: every timed fm/canon activation reports
# its seconds here, to be credited to the construct context the
# successor-generation loops set.  Importing this module is what arms
# the hook; the engine and KM layers import it, so any verification run
# has it armed.
PHASES.observer = ATTRIBUTION._on_phase_sample
