"""Observability for the verification stack (``repro.obs``).

Three pieces, all observationally invisible to the verifier (verdicts,
witnesses, KM node counts, and job hashes are byte-identical with
tracing on or off — A/B-tested in ``tests/test_obs.py``):

* :mod:`repro.obs.trace` — a dependency-free span/event tracer with
  process-global enablement, monotonic-clock timestamps, and a JSONL
  sink, instrumented at the natural seams of the stack (``verify``,
  ``_explore``, per-summary spans, Karp–Miller progress events, witness
  phases, per-job service events);
* :mod:`repro.obs.progress` — a heartbeat renderer subscribed to the
  live event stream (the ``--progress`` flag);
* :mod:`repro.obs.report` — the offline analyzer behind
  ``python -m repro report <trace.jsonl>``: per-phase time breakdown and
  cache-rate tables.

The always-on aggregate metrics the tracer snapshots — cache hit/miss
counters and sampled per-phase timers — live one layer down, in
:mod:`repro.perf.counters` and :mod:`repro.perf.phases`, so the arith
and symbolic layers can feed them without importing this package.

See ``docs/observability.md`` for the event schema, the heartbeat
format, and the overhead contract.
"""

from repro.obs import trace

__all__ = ["trace"]
