"""Offline trace analysis: ``python -m repro report <trace.jsonl>``.

Reads a trace written by :mod:`repro.obs.trace` and renders

* a **per-phase time breakdown** — the sampled phase timers
  (:mod:`repro.perf.phases`) attached to each ``job_finish`` event (or,
  for bare-engine traces, to each ``verify`` span), with KM expansion
  reported *exclusive* of the Fourier–Motzkin and canonicalization time
  nested inside it, and an ``other`` row absorbing unattributed wall
  time so the rows sum to the recorded wall clock;
* a **cache-rate table** — hit/miss totals and rates per hot-path cache,
  rendering caches that were never consulted as ``n/a`` (distinct from a
  true 0% hit rate);
* a **hotspot table** — the per-(task, service) search attribution from
  :mod:`repro.obs.attribution`: which scenario construct the KM
  expansions, generated successors, and sampled FM/canonicalization
  time belong to ("service ``book_flight``: 61% of expansions, 54% of
  FM time") — the direct answer to *which part of my scenario is slow*;
* the slowest jobs, for picking what to dig into next.

:func:`scrub_event` strips the timing fields from a record; what remains
must be deterministic for a deterministic run (the property the
hash-seed subprocess test in ``tests/test_obs.py`` pins).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.obs.attribution import UNATTRIBUTED, merge_attribution
from repro.perf.counters import PerfCounters
from repro.perf.phases import PHASE_NAMES, PhaseTimers

#: Exact record keys that carry timing (stripped by :func:`scrub_event`).
_TIMING_KEYS = frozenset({"t", "dur", "phases", "rates"})


def scrub_event(record: dict) -> dict:
    """The record minus its timing fields: drops ``t``/``dur``, sampled
    phase/rate blocks, and any key mentioning seconds, recursively."""
    scrubbed = {}
    for key, value in record.items():
        if key in _TIMING_KEYS or "seconds" in key:
            continue
        scrubbed[key] = scrub_event(value) if isinstance(value, dict) else value
    return scrubbed


def load_events(path: str | Path) -> list[dict]:
    """Parse a trace JSONL file; raises ValueError naming the bad line."""
    events: list[dict] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
            if not isinstance(record, dict) or "ev" not in record:
                raise ValueError(f"{path}:{lineno}: not a trace record")
            events.append(record)
    return events


@dataclass
class TraceSummary:
    """Aggregates of one trace file (see :func:`summarize`)."""

    jobs: list[dict] = field(default_factory=list)
    wall_seconds: float = 0.0
    phases: dict[str, dict] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    attribution: dict[str, dict] = field(default_factory=dict)
    events: int = 0

    def phase_breakdown(self) -> list[tuple[str, float, int]]:
        """Rows of ``(label, seconds, calls)`` summing to wall_seconds.

        ``expand`` is reported exclusive of the fm/canon time nested in
        it; ``other`` absorbs the unattributed remainder (clamped at 0).
        """
        estimate = PhaseTimers.estimate(self.phases)
        calls = {name: entry.get("calls", 0) for name, entry in self.phases.items()}
        fm = estimate.get("fm", 0.0)
        canon = estimate.get("canon", 0.0)
        expand = estimate.get("expand", 0.0)
        rows: list[tuple[str, float, int]] = [
            ("fm", fm, calls.get("fm", 0)),
            ("canon", canon, calls.get("canon", 0)),
            (
                "expand (excl. fm/canon)",
                max(0.0, expand - fm - canon),
                calls.get("expand", 0),
            ),
        ]
        for name in PHASE_NAMES:
            if name in ("fm", "canon", "expand"):
                continue
            rows.append((name, estimate.get(name, 0.0), calls.get(name, 0)))
        accounted = sum(seconds for _name, seconds, _calls in rows)
        rows.append(("other (unattributed)", max(0.0, self.wall_seconds - accounted), 0))
        return rows


def _merge_phases(into: dict[str, dict], delta: dict) -> None:
    for name, entry in delta.items():
        if not isinstance(entry, dict):
            continue
        bucket = into.setdefault(
            name, {"calls": 0, "timed": 0, "seconds": 0.0}
        )
        bucket["calls"] += entry.get("calls", 0)
        bucket["timed"] += entry.get("timed", 0)
        bucket["seconds"] += entry.get("seconds", 0.0)


def _merge_counters(into: dict[str, int], delta: dict) -> None:
    for name, value in delta.items():
        if isinstance(value, int):
            into[name] = into.get(name, 0) + value


def summarize(events: Iterable[dict]) -> TraceSummary:
    """Aggregate a trace: per-job records from ``job_finish`` events, or —
    for bare-engine traces without the service layer — ``verify`` spans."""
    summary = TraceSummary()
    verify_spans: list[dict] = []
    for record in events:
        summary.events += 1
        kind = record.get("ev")
        if kind == "job_finish":
            summary.jobs.append(record)
        elif kind == "span" and record.get("name") == "verify":
            verify_spans.append(record)
    sources = summary.jobs if summary.jobs else verify_spans
    for record in sources:
        if summary.jobs:
            summary.wall_seconds += record.get(
                "total_seconds", record.get("wall_seconds", 0.0)
            )
        else:
            summary.wall_seconds += record.get("dur", 0.0)
        _merge_phases(summary.phases, record.get("phases") or {})
        _merge_counters(summary.counters, record.get("counters") or {})
        merge_attribution(summary.attribution, record.get("attribution") or {})
    return summary


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _format_rate(rate: float | None) -> str:
    return "n/a" if rate is None else f"{rate:6.1%}"


#: Hotspot rows rendered before the rest collapses into ``(+N more)``.
_HOTSPOT_ROWS = 12


def render_attribution(attribution: dict[str, dict], rows: int = _HOTSPOT_ROWS) -> list[str]:
    """The search-hotspot table: one row per (task, service) construct,
    sorted by expansion count, with each construct's share of the total
    expansions and of the *sampled* fm/canon seconds (shares, not
    absolute times — the samples are uniform across constructs, so the
    ratios are meaningful while the raw sums are not)."""
    total_exp = sum(e.get("expansions", 0) for e in attribution.values())
    total_fm = sum(e.get("fm_sampled_seconds", 0.0) for e in attribution.values())
    total_canon = sum(
        e.get("canon_sampled_seconds", 0.0) for e in attribution.values()
    )
    unattributed = attribution.get(UNATTRIBUTED[1], {}).get("expansions", 0)
    attributed = total_exp - unattributed
    lines = ["search hotspots (by construct):"]
    lines.append(
        f"  {'task':<14s} {'service':<22s} {'expand':>8s} {'share':>7s} "
        f"{'succ':>8s} {'fm':>7s} {'canon':>7s} {'depth':>7s}"
    )
    ordered = sorted(
        attribution.items(),
        key=lambda kv: (-kv[1].get("expansions", 0), kv[0]),
    )
    for label, entry in ordered[:rows]:
        expansions = entry.get("expansions", 0)
        share = expansions / total_exp if total_exp else 0.0
        fm_share = (
            entry.get("fm_sampled_seconds", 0.0) / total_fm if total_fm else 0.0
        )
        canon_share = (
            entry.get("canon_sampled_seconds", 0.0) / total_canon
            if total_canon
            else 0.0
        )
        depth = entry.get("depth_sum", 0) / expansions if expansions else 0.0
        task = entry.get("task", "") or "—"
        service = label
        if label.startswith(f"{task}."):
            service = label[len(task) + 1 :]
        lines.append(
            f"  {task:<14s} {service:<22s} {expansions:>8d} {share:>7.1%} "
            f"{entry.get('successors', 0):>8d} {fm_share:>7.1%} "
            f"{canon_share:>7.1%} {depth:>7.1f}"
        )
    if len(ordered) > rows:
        lines.append(f"  (+{len(ordered) - rows} more constructs)")
    if total_exp:
        lines.append(
            f"  attributed {attributed / total_exp:.1%} of {total_exp} "
            f"expansions to {sum(1 for k in attribution if k != UNATTRIBUTED[1])} "
            f"(task, service) pairs"
        )
    return lines


def render(summary: TraceSummary, top: int = 5) -> str:
    """The human-readable report for one :class:`TraceSummary`."""
    lines: list[str] = []
    lines.append(
        f"{summary.events} trace events, {len(summary.jobs)} jobs, "
        f"wall {summary.wall_seconds:.3f}s"
    )
    lines.append("")
    lines.append("per-phase time breakdown:")
    lines.append(f"  {'phase':<26s} {'seconds':>9s} {'share':>7s} {'calls':>9s}")
    wall = summary.wall_seconds
    for label, seconds, calls in summary.phase_breakdown():
        share = seconds / wall if wall > 0 else 0.0
        calls_text = str(calls) if calls else "—"
        lines.append(
            f"  {label:<26s} {seconds:9.3f} {share:7.1%} {calls_text:>9s}"
        )
    lines.append(f"  {'total (wall)':<26s} {wall:9.3f} {1:7.1%}")
    if summary.counters:
        lines.append("")
        lines.append("cache rates:")
        lines.append(f"  {'cache':<18s} {'hits':>10s} {'misses':>10s} {'rate':>7s}")
        rates = PerfCounters.rates(summary.counters)
        for cache in sorted(rates):
            hits = summary.counters.get(f"{cache}_hits", 0)
            misses = summary.counters.get(f"{cache}_misses", 0)
            lines.append(
                f"  {cache:<18s} {hits:>10d} {misses:>10d} "
                f"{_format_rate(rates[cache]):>7s}"
            )
    if summary.attribution:
        lines.append("")
        lines.extend(render_attribution(summary.attribution))
    slow = sorted(
        summary.jobs,
        key=lambda r: r.get("total_seconds", r.get("wall_seconds", 0.0)),
        reverse=True,
    )[:top]
    if slow:
        lines.append("")
        lines.append(f"slowest jobs (top {len(slow)}):")
        for record in slow:
            wall_job = record.get("total_seconds", record.get("wall_seconds", 0.0))
            lines.append(
                f"  {wall_job:8.3f}s  {record.get('status', '?'):<16s} "
                f"km={record.get('km_nodes', 0):<8d} {record.get('name', '?')}"
            )
    return "\n".join(lines)
