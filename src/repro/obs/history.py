"""The cross-run metrics ledger: append-only NDJSON of trace summaries.

``BENCH_*.json`` baselines answer "is this commit slower than the pinned
point?"; the history ledger answers the longitudinal question — *is this
suite getting slower over time, and did its search change shape?*  Each
``repro report FILE --append-history DIR`` appends one record to
``DIR/history.ndjson``; ``repro report --history DIR`` renders per-job
trend lines and flags drift against the ledger median.  The record is
also the per-job metrics schema a future persistent verification server
would serve (ROADMAP: "persistent server" frontier).

Record schema (``schema_version`` 1) — one JSON object per line:

* ``suite`` — hex fingerprint of the *sorted job content keys*: two
  records compare run-over-run exactly when they verified the same
  (system, property, config) set, regardless of job order or names;
* ``jobs`` — per-job ``{name, key, status, km_nodes, wall_seconds,
  total_seconds}``, sorted by name;
* ``counters`` / ``phases`` / ``attribution`` — the suite-level merged
  metrics of :class:`repro.obs.report.TraceSummary`;
* ``wall_seconds``, ``events``, ``label`` (caller-supplied, e.g. a
  commit id), ``recorded_unix``.

Drift rules (:func:`trends`), per job name, latest record vs the
*median of the prior* records:

* **wall** — relative change beyond ±25% (wall clock is noisy; the
  median across the ledger absorbs one-off spikes);
* **km** — *any* change in ``km_nodes`` between records whose job key is
  unchanged is flagged: the search is deterministic, so same inputs must
  explore the same graph — km drift means nondeterminism crept in;
* a changed job key is reported as ``content changed`` and exempts the
  job from drift flags (different inputs legitimately cost differently);
* **hit-rate** — per cache, a drop of more than 0.1 in the suite-level
  hit rate (a cache that stopped hitting is how perf regressions start).
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from statistics import median
from typing import Iterable

from repro.obs.report import TraceSummary, summarize
from repro.perf.counters import PerfCounters

#: Bump on incompatible record changes; readers skip newer majors.
HISTORY_SCHEMA_VERSION = 1

#: The ledger file inside the ``--append-history`` / ``--history`` DIR.
LEDGER_NAME = "history.ndjson"

#: Relative wall-clock change (vs the ledger median) that flags drift.
WALL_DRIFT = 0.25

#: Absolute hit-rate drop (vs the ledger median) that flags drift.
RATE_DRIFT = 0.10


def suite_fingerprint(job_keys: Iterable[str]) -> str:
    """Content fingerprint of a suite: order- and name-independent."""
    canonical = json.dumps(sorted(str(k) for k in job_keys))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:16]


def build_record(summary: TraceSummary, label: str = "") -> dict:
    """One ledger record from a trace summary (pure, except the clock)."""
    jobs = sorted(
        (
            {
                "name": str(job.get("name", "?")),
                "key": str(job.get("key", "")),
                "status": str(job.get("status", "?")),
                "km_nodes": int(job.get("km_nodes", 0) or 0),
                "wall_seconds": float(job.get("wall_seconds", 0.0) or 0.0),
                "total_seconds": float(
                    job.get("total_seconds", job.get("wall_seconds", 0.0)) or 0.0
                ),
            }
            for job in summary.jobs
        ),
        key=lambda entry: (entry["name"], entry["key"]),
    )
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "suite": suite_fingerprint(job["key"] for job in jobs),
        "label": label,
        "jobs": jobs,
        "wall_seconds": summary.wall_seconds,
        "events": summary.events,
        "counters": summary.counters,
        "phases": summary.phases,
        "attribution": summary.attribution,
        "recorded_unix": int(time.time()),
    }


def append_history(
    events: list[dict], directory: str | Path, label: str = ""
) -> dict:
    """Summarize ``events`` and append one record to the ledger in
    ``directory`` (created if missing); returns the appended record."""
    record = build_record(summarize(events), label=label)
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with (path / LEDGER_NAME).open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(directory: str | Path) -> list[dict]:
    """All ledger records, oldest first; raises ValueError on a corrupt
    line (append-only files fail loudly, not silently) and skips records
    from a newer schema instead of misreading them."""
    ledger = Path(directory) / LEDGER_NAME
    if not ledger.exists():
        return []
    records: list[dict] = []
    with ledger.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{ledger}:{lineno}: not JSON ({exc})") from None
            if not isinstance(record, dict) or "schema_version" not in record:
                raise ValueError(f"{ledger}:{lineno}: not a ledger record")
            if record["schema_version"] > HISTORY_SCHEMA_VERSION:
                continue
            records.append(record)
    return records


# ----------------------------------------------------------------------
# trends
# ----------------------------------------------------------------------
def trends(records: list[dict]) -> dict:
    """Structured trend analysis of a ledger: the latest record compared,
    per job name and per cache, against the median of the prior records.
    Returns ``{runs, suite, jobs: [...], rates: [...], flags: [...]}``;
    see the module docstring for the drift rules."""
    result: dict = {"runs": len(records), "jobs": [], "rates": [], "flags": []}
    if not records:
        return result
    latest = records[-1]
    prior = records[:-1]
    result["suite"] = latest.get("suite", "")
    result["label"] = latest.get("label", "")

    prior_jobs: dict[str, list[dict]] = {}
    for record in prior:
        for job in record.get("jobs", ()):
            prior_jobs.setdefault(str(job.get("name")), []).append(job)

    for job in latest.get("jobs", ()):
        name = str(job.get("name"))
        history = prior_jobs.get(name, [])
        entry: dict = {
            "name": name,
            "runs": len(history) + 1,
            "wall_seconds": job.get("wall_seconds", 0.0),
            "km_nodes": job.get("km_nodes", 0),
            "status": job.get("status"),
        }
        same_key = [h for h in history if h.get("key") == job.get("key")]
        if history and not same_key:
            entry["content_changed"] = True
        elif same_key:
            med_wall = median(h.get("wall_seconds", 0.0) for h in same_key)
            entry["median_wall_seconds"] = med_wall
            if med_wall > 0:
                change = (job.get("wall_seconds", 0.0) - med_wall) / med_wall
                entry["wall_change"] = change
                if abs(change) > WALL_DRIFT:
                    entry["wall_drift"] = True
                    result["flags"].append(
                        f"{name}: wall {change:+.0%} vs ledger median"
                    )
            km_values = {h.get("km_nodes", 0) for h in same_key}
            if km_values != {job.get("km_nodes", 0)}:
                entry["km_drift"] = True
                result["flags"].append(
                    f"{name}: km_nodes changed on identical inputs "
                    f"({sorted(km_values)} -> {job.get('km_nodes', 0)}) — "
                    "the search is deterministic; this should be impossible"
                )
        result["jobs"].append(entry)

    latest_rates = PerfCounters.rates(latest.get("counters") or {})
    prior_rates: dict[str, list[float]] = {}
    for record in prior:
        for cache, rate in PerfCounters.rates(record.get("counters") or {}).items():
            if rate is not None:
                prior_rates.setdefault(cache, []).append(rate)
    for cache in sorted(latest_rates):
        rate = latest_rates[cache]
        if rate is None or cache not in prior_rates:
            continue
        med_rate = median(prior_rates[cache])
        entry = {"cache": cache, "rate": rate, "median_rate": med_rate}
        if med_rate - rate > RATE_DRIFT:
            entry["rate_drift"] = True
            result["flags"].append(
                f"{cache}: hit rate {rate:.1%} vs ledger median {med_rate:.1%}"
            )
        result["rates"].append(entry)
    return result


def render_trends(records: list[dict]) -> str:
    """The human-readable trend report for a ledger."""
    analysis = trends(records)
    if not analysis["runs"]:
        return "history: no runs recorded"
    lines = [
        f"history: {analysis['runs']} runs recorded "
        f"(suite {analysis.get('suite', '?')}"
        + (f", latest label {analysis['label']}" if analysis.get("label") else "")
        + ")"
    ]
    lines.append(
        f"  {'job':<44s} {'wall':>9s} {'vs median':>10s} {'km':>9s} {'runs':>5s}"
    )
    for entry in analysis["jobs"]:
        if entry.get("content_changed"):
            versus = "(content changed)"
        elif "wall_change" in entry:
            versus = f"{entry['wall_change']:+.0%}"
        else:
            versus = "—"
        flags = []
        if entry.get("wall_drift"):
            flags.append("WALL DRIFT")
        if entry.get("km_drift"):
            flags.append("KM DRIFT")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {entry['name']:<44s} {entry['wall_seconds']:8.3f}s "
            f"{versus:>10s} {entry['km_nodes']:>9d} {entry['runs']:>5d}{suffix}"
        )
    drifting = [e for e in analysis["rates"] if e.get("rate_drift")]
    if drifting:
        lines.append("  cache hit-rate drift:")
        for entry in drifting:
            lines.append(
                f"    {entry['cache']:<18s} {entry['rate']:6.1%} "
                f"(ledger median {entry['median_rate']:6.1%})"
            )
    if analysis["flags"]:
        lines.append("DRIFT: " + "; ".join(analysis["flags"]))
    else:
        lines.append("no drift against the ledger median")
    return "\n".join(lines)
