"""Live heartbeat rendering for the ``--progress`` flag.

A :class:`Heartbeat` is a tracer listener (:func:`repro.obs.trace.add_listener`)
that turns the event stream into terse, throttled status lines on a
stream (stderr by default, so stdout stays parseable):

* ``→ <job>`` when a job starts, and a one-line verdict when it ends;
* during long explorations, at most one line per ``interval`` seconds::

      [  42.3s] travel::discount-policy · summary of Flight: km nodes=18230 frontier=511

  carrying the elapsed trace time, the current job, the exploration the
  verifier is inside (root search or a named child summary), and the
  Karp–Miller node/frontier counts from the latest ``km_progress``
  event.

The heartbeat only *reads* the event stream; it never influences the
traced computation, and throttling applies to printing only (the trace
file always receives every event).
"""

from __future__ import annotations

import sys
from typing import IO


class Heartbeat:
    """Render trace events as throttled progress lines."""

    def __init__(self, stream: IO[str] | None = None, interval: float = 1.0):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._last_beat: float | None = None
        self._job: str = ""

    def _write(self, line: str) -> None:
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover — closed stream
            pass

    def __call__(self, record: dict) -> None:
        kind = record.get("ev")
        if kind == "job_start":
            self._job = str(record.get("name", ""))
            self._last_beat = record.get("t")
            self._write(f"→ {self._job}")
        elif kind == "job_finish":
            name = record.get("name", self._job)
            status = record.get("status", "?")
            km = record.get("km_nodes", 0)
            wall = record.get("wall_seconds", 0.0)
            self._write(f"  {name}: {status} km={km} {wall:.1f}s")
            self._job = ""
        elif kind == "km_progress":
            now = record.get("t", 0.0)
            if (
                self._last_beat is not None
                and now - self._last_beat < self.interval
            ):
                return
            self._last_beat = now
            context = " · ".join(
                part
                for part in (self._job, str(record.get("label", "")))
                if part
            )
            self._write(
                f"[{now:7.1f}s] {context}: "
                f"km nodes={record.get('nodes', 0)} "
                f"frontier={record.get('frontier', 0)}"
            )
