"""Live heartbeat rendering for the ``--progress`` flag.

A :class:`Heartbeat` is a tracer listener (:func:`repro.obs.trace.add_listener`)
that turns the event stream into terse, throttled status lines on a
stream (stderr by default, so stdout stays parseable):

* ``→ <job>`` when a job starts, and a one-line verdict when it ends —
  with a ``[k/N]`` suite progress counter once a ``suite_start`` event
  announced the batch size;
* during long explorations, at most one line per ``interval`` seconds::

      [  42.3s] travel::discount-policy · summary of Flight: km nodes=18230 frontier=511

  carrying the elapsed trace time, the current job, the exploration the
  verifier is inside (root search or a named child summary), and the
  Karp–Miller node/frontier counts from the latest ``km_progress``
  event;
* a final one-line suite summary from ``suite_done`` (the only reliable
  completion signal: cache-hit jobs never emit per-job events, so
  counting ``job_finish`` lines under-reports).

In-flight jobs are keyed by their content key, never by "the" current
job: under ``--workers N`` the parent re-emits ``job_submit`` /
``job_finish`` events for many jobs at once, and a single current-job
slot would label finish lines with whichever job started last.

The heartbeat only *reads* the event stream; it never influences the
traced computation, and throttling applies to printing only (the trace
file always receives every event).
"""

from __future__ import annotations

import sys
from typing import IO


class Heartbeat:
    """Render trace events as throttled progress lines."""

    def __init__(self, stream: IO[str] | None = None, interval: float = 1.0):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._last_beat: float | None = None
        # in-flight jobs by content key; _started keeps start order so
        # km_progress lines (serial: one running job, the newest) label
        # correctly even while earlier jobs are still in flight
        self._jobs: dict[str, str] = {}
        self._started: list[str] = []
        self._total = 0
        self._done = 0

    def _write(self, line: str) -> None:
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover — closed stream
            pass

    def _suffix(self) -> str:
        """The ``[k/N]`` progress counter, once the batch size is known."""
        return f"  [{self._done}/{self._total}]" if self._total else ""

    def _finish_job(self, record: dict) -> None:
        key = str(record.get("key", ""))
        name = str(record.get("name", "") or self._jobs.get(key, ""))
        self._jobs.pop(key, None)
        if key in self._started:
            self._started.remove(key)
        self._done += 1
        status = record.get("status", "?")
        km = record.get("km_nodes", 0)
        wall = record.get("wall_seconds", 0.0)
        self._write(f"  {name}: {status} km={km} {wall:.1f}s{self._suffix()}")

    def __call__(self, record: dict) -> None:
        kind = record.get("ev")
        if kind == "suite_start":
            self._total = int(record.get("total", 0) or 0)
            self._done = 0
        elif kind == "job_submit":
            # parallel runs announce every job upfront; track silently —
            # a submit is queued, not running, so no ``→`` line
            self._jobs[str(record.get("key", ""))] = str(record.get("name", ""))
        elif kind == "job_start":
            key = str(record.get("key", ""))
            name = str(record.get("name", ""))
            self._jobs[key] = name
            self._started.append(key)
            self._last_beat = record.get("t")
            self._write(f"→ {name}")
        elif kind == "job_finish":
            self._finish_job(record)
        elif kind == "suite_done":
            total = record.get("total", 0)
            self._write(
                f"suite done: {total} jobs"
                f" · {record.get('cache_hits', 0)} cached"
                f" · {record.get('violations', 0)} violated"
                f" · {record.get('budget_exceeded', 0)} over budget"
                f" · {record.get('errors', 0)} errors"
                f" · {record.get('wall_seconds', 0.0):.1f}s"
            )
            self._jobs.clear()
            self._started.clear()
        elif kind == "km_progress":
            now = record.get("t", 0.0)
            if (
                self._last_beat is not None
                and now - self._last_beat < self.interval
            ):
                return
            self._last_beat = now
            current = self._jobs.get(self._started[-1], "") if self._started else ""
            context = " · ".join(
                part
                for part in (current, str(record.get("label", "")))
                if part
            )
            self._write(
                f"[{now:7.1f}s] {context}: "
                f"km nodes={record.get('nodes', 0)} "
                f"frontier={record.get('frontier', 0)}"
            )
